#!/usr/bin/env python
"""Toy-size benchmark smoke run for CI.

Runs the F1 (sort scaling) and F12 (parallel disks) experiments at small
sizes — seconds, not minutes — and writes a JSON summary so CI uploads a
machine-readable record of the runtime's scheduling quality per commit:

    python tools/bench_smoke.py [--output BENCH_pr10.json]

The JSON reports, per disk count, the parallel steps, total transfers,
and the steps/optimal ratio (optimal = ceil(transfers / D)); the sort
must stay within 1.5x of its step-optimal schedule, the same bound the
full F12 benchmark enforces.

A raw-speed record compares the key-pointer sort (typed payloads,
blockwise permutation) against the seed's record-object path — same
machine, same data, same simulated I/O schedule (asserted counter by
counter) — on both the in-memory and the real-file disk backends at
the F1 sizes, recording wall-clock for each and gating the in-memory
speedup at 2x (the file backend's shared syscall floor gets a 1.4x
sanity floor instead).

Two fault-layer records ride along: the transfer overhead of a
seeded-fault checkpointed sort over the clean sort (retries re-transfer
failed blocks, verification re-reads each pass), and the bench_f19
sequence-heap configuration (B=64, m=16, one caller-resident frame,
~32k queue operations) that used to overflow the memory budget — it
must now complete with peak memory <= M.

Two buffer-pool records cover the cached path: the pool hit rate of a
skewed B+-tree query workload (with the pool's frames charged to the
shared memory budget), and the transfer overhead of the same query
workload under a seeded fault plan vs clean — retried cache misses and
scrubbed write-backs must stay within the same 2.0x bound as the sort.

One analyzer record times each EM-lint tier (per-line EM0xx, flow
EM1xx, cost EM2xx, typestate EM3xx) over ``src/repro`` so regressions
in analysis wall-time show up per commit; every tier must also report
a triaged tree (zero unwaived findings).

A multi-tenant service record runs the F24 chaos mix (OLTP point reads
interleaved with an OLAP sort) at smoke scale, asserting the
interleaved schedule beats the serial baseline on wall steps, each
tenant's memory peak stays within its fair share, and a fault plan
targeting OLAP blocks charges zero faults/stalls to the OLTP tenant.

A pipelining record runs the F25 fused-vs-materialized comparison at
smoke scale for all three refactored consumers (sort-merge join,
time-forward processing, list ranking), recording the fused/
materialized I/O ratio per consumer — fused must never lose — and
gates on the EM103 fusion baseline: zero unwaived sort-then-scan
boundaries anywhere in ``src/repro``.
"""

import argparse
import json
import sys
import time
from math import ceil
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import random  # noqa: E402

import numpy as np  # noqa: E402

from repro.core import (  # noqa: E402
    FileDiskArray,
    FileStream,
    Machine,
    StripedStream,
    sort_io,
)
from repro.faults import (  # noqa: E402
    FaultPlan,
    SortManifest,
    checkpointed_merge_sort,
)
from repro.pq import ExternalPriorityQueue  # noqa: E402
from repro.search import BPlusTree  # noqa: E402
from repro.sort import LoserTree, external_merge_sort  # noqa: E402
from repro.sort.merge import plan_merge_arity  # noqa: E402
from repro.workloads import uniform_ints  # noqa: E402

# Toy sizes: ~10x smaller than benchmarks/bench_f1_* and bench_f12_*.
F1_B, F1_M_BLOCKS, F1_SIZES = 64, 8, (2_000, 8_000)
F12_B, F12_M_BLOCKS, F12_N = 32, 24, 4_608
RATIO_BOUND = 1.5
FAULT_B, FAULT_M_BLOCKS, FAULT_N = 32, 8, 6_000
FAULT_OVERHEAD_BOUND = 2.0
F19_B, F19_M_BLOCKS, F19_OPS = 64, 16, 32_000
POOL_B, POOL_M_BLOCKS, POOL_N, POOL_QUERIES = 16, 8, 2_000, 1_500
POOL_FAULT_OVERHEAD_BOUND = 2.0
# Raw-speed gate: the key-pointer sort must beat the seed's
# record-object path by 2x wall-clock on the in-memory backend at every
# F1 size, with bit-identical simulated I/O.  The real-file backend adds
# the same syscall floor to both paths, compressing the ratio, so it
# carries a sanity floor rather than the full gate.
RAW_REPS = 5
RAW_SPEEDUP_BOUND = 2.0
RAW_FILE_SPEEDUP_BOUND = 1.4


def f1_smoke():
    """Single-disk sort I/O vs the closed form, at two toy sizes."""
    points = []
    for n in F1_SIZES:
        machine = Machine(block_size=F1_B, memory_blocks=F1_M_BLOCKS)
        stream = FileStream.from_records(machine, uniform_ints(n, seed=2))
        machine.reset_stats()
        external_merge_sort(machine, stream)
        stats = machine.stats()
        theory = sort_io(n, machine.M, machine.B)
        assert 0.9 * theory <= stats.total <= theory
        points.append({
            "n": n,
            "transfers": stats.total,
            "steps": stats.total_steps,
            "theory": theory,
        })
    return {"name": "f1_sort_scaling", "B": F1_B,
            "M": F1_B * F1_M_BLOCKS, "points": points}


def _seed_record_sort(machine, stream):
    """The seed's record-object sort path, reconstructed verbatim.

    Memoryloads are sorted as Python lists of records, runs are written
    one ``append`` at a time, and merging feeds a loser tree record by
    record — every per-record cost the key-pointer refactor removed.
    Kept here as the wall-clock baseline; its simulated I/O schedule is
    identical to ``external_merge_sort``'s, which the caller asserts.
    """
    key = lambda r: r  # noqa: E731
    runs = []
    num_blocks = stream.num_blocks
    for start in range(0, num_blocks, machine.m):
        end = min(start + machine.m, num_blocks)
        chunk = list(stream.read_block_range(start, end))
        chunk.sort(key=key)  # em: ok(EM004) one m-block memoryload
        run = FileStream(machine, name=f"seedrun/{len(runs)}")
        for record in chunk:
            run.append(record)
        runs.append(run.finalize())
    while len(runs) > 1:
        arity = plan_merge_arity(machine, len(runs))
        next_runs = []
        for g in range(0, len(runs), arity):
            group = runs[g:g + arity]
            out = FileStream(machine, name=f"seedmerge/{len(next_runs)}")
            tree = LoserTree([iter(r) for r in group], key=key)
            for record in tree:
                out.append(record)
            next_runs.append(out.finalize())
            for run in group:
                run.delete()
        runs = next_runs
    return runs[0]


def raw_speed_smoke():
    """Key-pointer sort vs the seed record-object path, both backends.

    Times the full pipeline — ingest plus sort — because the typed path
    earns its speed everywhere the record path pays per-record Python:
    ``from_payload`` block-copies what ``from_records`` appends one
    record at a time.  Every point asserts the two paths produce the
    same sorted output through the exact same simulated I/O schedule
    (whole-counter equality), so the wall-clock ratio measures constant
    factors only, never a different algorithm.
    """
    points = []
    for n in F1_SIZES:
        data = uniform_ints(n, seed=2)
        payload = np.asarray(data, dtype=np.int64)
        reference = sorted(data)
        for backend in ("memory", "file"):
            seed_wall = kp_wall = float("inf")
            seed_stats = kp_stats = None
            for _ in range(RAW_REPS):
                machine = _raw_machine(backend)
                start = time.perf_counter()
                stream = FileStream.from_records(machine, data)
                out = _seed_record_sort(machine, stream)
                elapsed = time.perf_counter() - start
                assert list(out) == reference
                seed_stats = machine.stats()
                _raw_close(machine, backend)
                seed_wall = min(seed_wall, elapsed)

                machine = _raw_machine(backend)
                start = time.perf_counter()
                stream = FileStream.from_payload(machine, payload)
                out = external_merge_sort(machine, stream)
                elapsed = time.perf_counter() - start
                assert list(out) == reference
                kp_stats = machine.stats()
                _raw_close(machine, backend)
                kp_wall = min(kp_wall, elapsed)
            assert seed_stats == kp_stats, (
                f"n={n} {backend}: simulated I/O diverged — "
                f"seed {seed_stats} vs key-pointer {kp_stats}"
            )
            ratio = seed_wall / kp_wall
            bound = (RAW_SPEEDUP_BOUND if backend == "memory"
                     else RAW_FILE_SPEEDUP_BOUND)
            assert ratio >= bound, (
                f"n={n} {backend}: key-pointer sort only "
                f"{ratio:.2f}x faster than the record path "
                f"({kp_wall * 1e3:.1f}ms vs {seed_wall * 1e3:.1f}ms), "
                f"bound {bound}x"
            )
            points.append({
                "n": n,
                "backend": backend,
                "seed_ms": round(seed_wall * 1e3, 2),
                "key_pointer_ms": round(kp_wall * 1e3, 2),
                "speedup": round(ratio, 2),
                "transfers": kp_stats.total,
                "steps": kp_stats.total_steps,
            })
    return {"name": "raw_speed_sort", "B": F1_B,
            "M": F1_B * F1_M_BLOCKS, "reps": RAW_REPS,
            "memory_bound": RAW_SPEEDUP_BOUND,
            "file_bound": RAW_FILE_SPEEDUP_BOUND, "points": points}


def _raw_machine(backend):
    if backend == "memory":
        return Machine(block_size=F1_B, memory_blocks=F1_M_BLOCKS)
    return Machine(block_size=F1_B, memory_blocks=F1_M_BLOCKS,
                   disk=FileDiskArray(F1_B))


def _raw_close(machine, backend):
    if backend == "file":
        machine.disk.close()


def f12_smoke():
    """Scheduled striped sort steps vs ceil(transfers/D) per disk count."""
    points = []
    for num_disks in (1, 2, 4, 8):
        machine = Machine(block_size=F12_B, memory_blocks=F12_M_BLOCKS,
                          num_disks=num_disks)
        data = uniform_ints(F12_N, seed=13)
        stream = StripedStream.from_records(machine, data)
        machine.reset_stats()
        result = external_merge_sort(machine, stream,
                                     stream_cls=StripedStream)
        stats = machine.stats()
        assert len(result) == F12_N
        optimal = ceil(stats.total / num_disks)
        ratio = stats.total_steps / optimal
        assert ratio <= RATIO_BOUND, (
            f"D={num_disks}: {stats.total_steps} steps vs "
            f"{optimal} optimal (ratio {ratio:.3f})"
        )
        points.append({
            "num_disks": num_disks,
            "transfers": stats.total,
            "steps": stats.total_steps,
            "steps_optimal": optimal,
            "steps_over_optimal": round(ratio, 4),
        })
    return {"name": "f12_parallel_disks", "B": F12_B,
            "M": F12_B * F12_M_BLOCKS, "n": F12_N,
            "ratio_bound": RATIO_BOUND, "points": points}


def faulted_sort_smoke():
    """Transfer overhead of a seeded-fault checkpointed sort vs clean."""
    data = uniform_ints(FAULT_N, seed=5)

    clean = Machine(block_size=FAULT_B, memory_blocks=FAULT_M_BLOCKS)
    stream = FileStream.from_records(clean, data)
    clean.reset_stats()
    reference = list(external_merge_sort(clean, stream))
    clean_stats = clean.stats()

    faulty = Machine(block_size=FAULT_B, memory_blocks=FAULT_M_BLOCKS)
    stream = FileStream.from_records(faulty, data)
    faulty.reset_stats()
    plan = FaultPlan(seed=7, read_error_rate=0.01, write_error_rate=0.005,
                     torn_writes={40})
    with faulty.inject_faults(plan):
        result = list(checkpointed_merge_sort(
            faulty, stream, SortManifest(), verify_outputs=True
        ))
    assert result == reference
    stats = faulty.stats()
    overhead = stats.total / clean_stats.total
    assert overhead <= FAULT_OVERHEAD_BOUND, (
        f"faulted sort {stats.total} transfers vs clean "
        f"{clean_stats.total} (overhead {overhead:.3f})"
    )
    return {"name": "faulted_sort_overhead", "B": FAULT_B,
            "M": FAULT_B * FAULT_M_BLOCKS, "n": FAULT_N,
            "overhead_bound": FAULT_OVERHEAD_BOUND,
            "points": [{
                "clean_transfers": clean_stats.total,
                "faulted_transfers": stats.total,
                "faults": stats.faults,
                "retries": stats.retries,
                "stall_steps": stats.stall_steps,
                "overhead": round(overhead, 4),
            }]}


def f19_pq_budget_smoke():
    """The bench_f19 sequence-heap configuration that used to overflow:
    run proliferation now triggers early merges and peak stays <= M."""
    machine = Machine(block_size=F19_B, memory_blocks=F19_M_BLOCKS)
    machine.budget.acquire(F19_B)  # caller-resident frame (sssp table)
    rng = random.Random(20)
    machine.reset_stats()
    with ExternalPriorityQueue(machine) as queue:
        pending = 0
        for op in range(F19_OPS):
            queue.insert(rng.randrange(10**6), op)
            pending += 1
            if op % 5 == 4:
                queue.delete_min()
                pending -= 1
        drained = [queue.delete_min()[0] for _ in range(pending)]
    assert drained == sorted(drained)
    stats = machine.stats()
    peak = machine.budget.peak
    assert peak <= machine.M, f"peak {peak} exceeds M={machine.M}"
    machine.budget.release(F19_B)
    return {"name": "f19_pq_frame_budget", "B": F19_B,
            "M": F19_B * F19_M_BLOCKS, "ops": F19_OPS,
            "points": [{
                "transfers": stats.total,
                "peak_memory": peak,
                "memory_capacity": machine.M,
            }]}


def _btree_query_workload(machine, tree, seed=3):
    """A skewed point-query mix: 80% of queries land in one hot
    contiguous run of 100 keys (a few leaves), the rest uniform."""
    rng = random.Random(seed)
    base = rng.randrange(POOL_N - 100)
    hot = list(range(base, base + 100))
    for _ in range(POOL_QUERIES):
        key = rng.choice(hot) if rng.random() < 0.8 \
            else rng.randrange(POOL_N)
        value = tree.get(key)
        assert value == key * 3


def _build_query_tree(machine):
    tree = BPlusTree(machine)
    for key in range(POOL_N):
        tree.insert(key, key * 3)
    machine.pool.flush_all()
    machine.pool.drop_all()
    return tree


def pool_hit_rate_smoke():
    """Pool hit rate of the skewed query mix, with the pool's frames
    charged to the shared memory budget."""
    machine = Machine(block_size=POOL_B, memory_blocks=POOL_M_BLOCKS)
    tree = _build_query_tree(machine)
    machine.reset_stats()
    hits0, misses0 = machine.pool.hits, machine.pool.misses
    _btree_query_workload(machine, tree)
    stats = machine.stats()
    hits = machine.pool.hits - hits0
    misses = machine.pool.misses - misses0
    hit_rate = hits / max(1, hits + misses)
    assert hit_rate > 0.5, f"hit rate {hit_rate:.3f} too low for skew"
    assert machine.budget.reclaimable == \
        machine.pool.resident_count * machine.B
    assert machine.budget.occupancy <= machine.M
    return {"name": "pool_hit_rate", "B": POOL_B,
            "M": POOL_B * POOL_M_BLOCKS, "n": POOL_N,
            "queries": POOL_QUERIES,
            "points": [{
                "hits": hits,
                "misses": misses,
                "hit_rate": round(hit_rate, 4),
                "reads": stats.reads,
                "budget_reclaimable": machine.budget.reclaimable,
                "budget_occupancy": machine.budget.occupancy,
            }]}


def faulted_query_smoke():
    """Transfer overhead of the cached query workload under a seeded
    fault plan (retried misses + scrubbed write-backs) vs clean."""
    clean = Machine(block_size=POOL_B, memory_blocks=POOL_M_BLOCKS)
    tree = _build_query_tree(clean)
    clean.reset_stats()
    _btree_query_workload(clean, tree)
    clean_stats = clean.stats()

    faulty = Machine(block_size=POOL_B, memory_blocks=POOL_M_BLOCKS)
    tree = _build_query_tree(faulty)
    faulty.reset_stats()
    plan = FaultPlan(seed=17, read_error_rate=0.05, torn_write_rate=0.02)
    with faulty.inject_faults(plan):
        _btree_query_workload(faulty, tree)
        faulty.pool.flush_all()
    stats = faulty.stats()
    assert stats.retries > 0
    overhead = stats.total / max(1, clean_stats.total)
    assert overhead <= POOL_FAULT_OVERHEAD_BOUND, (
        f"faulted queries {stats.total} transfers vs clean "
        f"{clean_stats.total} (overhead {overhead:.3f})"
    )
    return {"name": "faulted_query_overhead", "B": POOL_B,
            "M": POOL_B * POOL_M_BLOCKS, "n": POOL_N,
            "queries": POOL_QUERIES,
            "overhead_bound": POOL_FAULT_OVERHEAD_BOUND,
            "points": [{
                "clean_transfers": clean_stats.total,
                "faulted_transfers": stats.total,
                "faults": stats.faults,
                "retries": stats.retries,
                "stall_steps": stats.stall_steps,
                "scrubs": faulty.pool.scrubs,
                "overhead": round(overhead, 4),
            }]}


def analyzer_smoke():
    """Wall-time of each EM-lint tier over ``src/repro``, plus the
    finding counts — the tree must stay triaged (zero unwaived)."""
    from repro.analysis.cost.engine import lint_paths_cost
    from repro.analysis.emlint import lint_paths
    from repro.analysis.flow.engine import lint_paths_flow
    from repro.analysis.state.engine import lint_paths_state

    target = str(Path(__file__).resolve().parent.parent
                 / "src" / "repro")
    points = []
    for tier, run in (
        ("per_line", lambda: lint_paths([target])),
        ("flow", lambda: lint_paths_flow([target])),
        ("cost", lambda: lint_paths_cost([target], with_flow=True)),
        ("state", lambda: lint_paths_state([target], with_flow=True,
                                           with_cost=True)),
    ):
        start = time.perf_counter()
        findings = run()
        elapsed = time.perf_counter() - start
        unwaived = sum(1 for f in findings if not f.waived)
        waived = len(findings) - unwaived
        assert unwaived == 0, (
            f"{tier}: {unwaived} unwaived finding(s) in {target}"
        )
        points.append({
            "tier": tier,
            "wall_time_s": round(elapsed, 4),
            "unwaived": unwaived,
            "waived": waived,
        })
    return {"name": "analyzer_tiers", "target": "src/repro",
            "points": points}


PIPE_B, PIPE_M_BLOCKS = 64, 48  # final merge width covers the runs
PIPE_JOIN_N, PIPE_TFP_N, PIPE_LISTRANK_N = 8_000, 4_000, 8_000


def pipeline_smoke():
    """F25 at smoke scale: fused vs materialized I/O per consumer, and
    the EM103 fusion baseline (zero unwaived sort-then-scan
    boundaries)."""
    from repro.analysis.flow.engine import lint_paths_flow
    from repro.graph import (
        list_ranking,
        list_ranking_materialized,
        time_forward_process,
        time_forward_process_materialized,
    )
    from repro.relational import (
        Table,
        sort_merge_join,
        sort_merge_join_materialized,
    )
    from repro.workloads import foreign_key_relations, random_linked_list

    def pipe_machine():
        return Machine(block_size=PIPE_B, memory_blocks=PIPE_M_BLOCKS)

    def join_io(fused):
        build, probe = foreign_key_relations(
            PIPE_JOIN_N // 20, PIPE_JOIN_N, seed=41
        )
        machine = pipe_machine()
        left = Table.from_rows(machine, ("k", "b"), build, name="build")
        right = Table.from_rows(machine, ("k", "p"), probe, name="probe")
        join = sort_merge_join if fused else sort_merge_join_materialized
        with machine.measure() as io:
            join(left, right, "k", "k", name="out").delete()
        return io.total

    def tfp_io(fused):
        rng = random.Random(42)
        edges = sorted(
            {(u, rng.randrange(u + 1, PIPE_TFP_N))
             for u in (rng.randrange(PIPE_TFP_N - 1)
                       for _ in range(4 * PIPE_TFP_N))}
        )
        machine = pipe_machine()
        run = time_forward_process if fused \
            else time_forward_process_materialized
        with machine.measure() as io:
            run(machine, PIPE_TFP_N, iter(edges),
                lambda v, incoming: len(incoming))
        return io.total

    def listrank_io(fused):
        pairs = random_linked_list(PIPE_LISTRANK_N, seed=43)
        machine = pipe_machine()
        run = list_ranking if fused else list_ranking_materialized
        with machine.measure() as io:
            run(machine, pairs, seed=44)
        return io.total

    points = []
    for consumer, runner in (("join", join_io),
                             ("time_forward", tfp_io),
                             ("list_ranking", listrank_io)):
        fused, materialized = runner(True), runner(False)
        ratio = fused / materialized
        assert fused < materialized, (
            f"{consumer}: fused {fused} I/Os vs materialized "
            f"{materialized} — fusion must win on this geometry"
        )
        points.append({
            "consumer": consumer,
            "fused_io": fused,
            "materialized_io": materialized,
            "fused_over_materialized": round(ratio, 4),
        })

    target = str(Path(__file__).resolve().parent.parent
                 / "src" / "repro")
    em103 = [f for f in lint_paths_flow([target]) if f.rule == "EM103"]
    unwaived = sum(1 for f in em103 if not f.waived)
    assert unwaived == 0, (
        f"{unwaived} unwaived EM103 sort-then-scan boundary(ies) in "
        f"{target}"
    )
    points.append({
        "consumer": "(em103_gate)",
        "unwaived": unwaived,
        "waived": len(em103) - unwaived,
    })
    return {"name": "f25_pipelining", "B": PIPE_B,
            "M": PIPE_B * PIPE_M_BLOCKS,
            "join_n": PIPE_JOIN_N, "tfp_n": PIPE_TFP_N,
            "listrank_n": PIPE_LISTRANK_N, "points": points}


SVC_B, SVC_M_BLOCKS, SVC_DISKS = 16, 16, 4
SVC_TREE_N, SVC_SORT_N, SVC_LOOKUPS = 1_200, 900, 24


def _service_run(max_running=None, faulted=False):
    from repro.service import QueryService, btree_lookup_job, sort_job

    machine = Machine(block_size=SVC_B, memory_blocks=SVC_M_BLOCKS,
                      num_disks=SVC_DISKS)
    tree = BPlusTree.bulk_load(
        machine, ((i, i) for i in range(SVC_TREE_N))
    )
    rng = random.Random(3)
    sort_in = FileStream.from_records(
        machine,
        [rng.randrange(10 * SVC_SORT_N) for _ in range(SVC_SORT_N)],
        name="olap/in",
    )
    machine.pool.flush_all()
    machine.runtime.flush()
    machine.reset_stats()
    service = QueryService(machine, max_running=max_running)
    oltp = service.add_tenant("oltp", weight=1, max_running=8)
    olap = service.add_tenant("olap", weight=2, max_running=1)
    picker = random.Random(5)
    for _ in range(SVC_LOOKUPS):
        service.submit("oltp", btree_lookup_job(
            tree, picker.randrange(SVC_TREE_N)
        ))
    service.submit("olap", sort_job(machine, sort_in, name="bigsort"))
    if faulted:
        victim = list(sort_in.block_ids)[0]
        plan = FaultPlan(seed=11, fail_block_reads={victim: 2})
        with machine.inject_faults(plan):
            summary = service.run()
    else:
        summary = service.run()
    for tenant in (oltp, olap):
        assert tenant.share.peak <= tenant.share.capacity, (
            f"{tenant.name}: peak {tenant.share.peak} exceeds "
            f"share {tenant.share.capacity}"
        )
        assert not any(job.error for job in tenant.done)
    return summary


def service_smoke():
    """F24 at smoke scale: interleaved vs serial wall steps, fair-share
    peaks, and per-tenant fault isolation."""
    interleaved = _service_run()
    serial = _service_run(max_running=1)
    faulted = _service_run(faulted=True)
    assert (interleaved["total_wall_steps"]
            < serial["total_wall_steps"]), (
        f"interleaved {interleaved['total_wall_steps']} wall steps vs "
        f"serial {serial['total_wall_steps']}"
    )
    oltp = faulted["tenants"]["oltp"]
    olap = faulted["tenants"]["olap"]
    assert oltp["faults"] == 0 and oltp["stall_steps"] == 0
    assert olap["faults"] > 0 and olap["stall_steps"] > 0
    points = []
    for label, run in (("interleaved", interleaved),
                       ("serial", serial), ("faulted", faulted)):
        for name, row in sorted(run["tenants"].items()):
            points.append({
                "schedule": label,
                "tenant": name,
                "completed": row["completed"],
                "io_steps": row["io_steps"],
                "stall_steps": row["stall_steps"],
                "p50_io": row["p50_io"],
                "p99_io": row["p99_io"],
                "p50_wall": row["p50_wall"],
                "p99_wall": row["p99_wall"],
            })
        points.append({
            "schedule": label,
            "tenant": "(total)",
            "io_steps": run["total_io_steps"],
            "stall_steps": run["total_stall_steps"],
            "wall_steps": run["total_wall_steps"],
        })
    return {"name": "f24_service", "B": SVC_B,
            "M": SVC_B * SVC_M_BLOCKS, "D": SVC_DISKS,
            "lookups": SVC_LOOKUPS, "sort_n": SVC_SORT_N,
            "points": points}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_pr10.json",
                        help="path of the JSON summary (default: %(default)s)")
    args = parser.parse_args(argv)
    summary = {"benchmarks": [f1_smoke(), raw_speed_smoke(), f12_smoke(),
                              faulted_sort_smoke(), f19_pq_budget_smoke(),
                              pool_hit_rate_smoke(),
                              faulted_query_smoke(),
                              analyzer_smoke(), service_smoke(),
                              pipeline_smoke()]}
    with open(args.output, "w") as fh:
        fh.write(json.dumps(summary, indent=2) + "\n")
    for bench in summary["benchmarks"]:
        print(f"{bench['name']}:")
        for point in bench["points"]:
            print("  " + ", ".join(f"{k}={v}" for k, v in point.items()))
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

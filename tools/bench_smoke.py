#!/usr/bin/env python
"""Toy-size benchmark smoke run for CI.

Runs the F1 (sort scaling) and F12 (parallel disks) experiments at small
sizes — seconds, not minutes — and writes a JSON summary so CI uploads a
machine-readable record of the runtime's scheduling quality per commit:

    python tools/bench_smoke.py [--output BENCH_pr3.json]

The JSON reports, per disk count, the parallel steps, total transfers,
and the steps/optimal ratio (optimal = ceil(transfers / D)); the sort
must stay within 1.5x of its step-optimal schedule, the same bound the
full F12 benchmark enforces.
"""

import argparse
import json
import sys
from math import ceil
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import FileStream, Machine, StripedStream, sort_io  # noqa: E402
from repro.sort import external_merge_sort  # noqa: E402
from repro.workloads import uniform_ints  # noqa: E402

# Toy sizes: ~10x smaller than benchmarks/bench_f1_* and bench_f12_*.
F1_B, F1_M_BLOCKS, F1_SIZES = 64, 8, (2_000, 8_000)
F12_B, F12_M_BLOCKS, F12_N = 32, 24, 4_608
RATIO_BOUND = 1.5


def f1_smoke():
    """Single-disk sort I/O vs the closed form, at two toy sizes."""
    points = []
    for n in F1_SIZES:
        machine = Machine(block_size=F1_B, memory_blocks=F1_M_BLOCKS)
        stream = FileStream.from_records(machine, uniform_ints(n, seed=2))
        machine.reset_stats()
        external_merge_sort(machine, stream)
        stats = machine.stats()
        theory = sort_io(n, machine.M, machine.B)
        assert 0.9 * theory <= stats.total <= theory
        points.append({
            "n": n,
            "transfers": stats.total,
            "steps": stats.total_steps,
            "theory": theory,
        })
    return {"name": "f1_sort_scaling", "B": F1_B,
            "M": F1_B * F1_M_BLOCKS, "points": points}


def f12_smoke():
    """Scheduled striped sort steps vs ceil(transfers/D) per disk count."""
    points = []
    for num_disks in (1, 2, 4, 8):
        machine = Machine(block_size=F12_B, memory_blocks=F12_M_BLOCKS,
                          num_disks=num_disks)
        data = uniform_ints(F12_N, seed=13)
        stream = StripedStream.from_records(machine, data)
        machine.reset_stats()
        result = external_merge_sort(machine, stream,
                                     stream_cls=StripedStream)
        stats = machine.stats()
        assert len(result) == F12_N
        optimal = ceil(stats.total / num_disks)
        ratio = stats.total_steps / optimal
        assert ratio <= RATIO_BOUND, (
            f"D={num_disks}: {stats.total_steps} steps vs "
            f"{optimal} optimal (ratio {ratio:.3f})"
        )
        points.append({
            "num_disks": num_disks,
            "transfers": stats.total,
            "steps": stats.total_steps,
            "steps_optimal": optimal,
            "steps_over_optimal": round(ratio, 4),
        })
    return {"name": "f12_parallel_disks", "B": F12_B,
            "M": F12_B * F12_M_BLOCKS, "n": F12_N,
            "ratio_bound": RATIO_BOUND, "points": points}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_pr3.json",
                        help="path of the JSON summary (default: %(default)s)")
    args = parser.parse_args(argv)
    summary = {"benchmarks": [f1_smoke(), f12_smoke()]}
    with open(args.output, "w") as fh:
        fh.write(json.dumps(summary, indent=2) + "\n")
    for bench in summary["benchmarks"]:
        print(f"{bench['name']}:")
        for point in bench["points"]:
            print("  " + ", ".join(f"{k}={v}" for k, v in point.items()))
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Assemble EXPERIMENTS.md from the benchmark result tables.

Run the benchmarks first (they write ``benchmarks/results/*.txt``), then:

    python tools/build_experiments.py

Each experiment entry pairs the survey's claim with the measured series
and a short verdict on whether the claimed *shape* reproduced.
"""

import os
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS = os.path.join(ROOT, "benchmarks", "results")

CLAIMS = [
    ("T1", "Fundamental bounds table",
     "Scan = Θ(N/B); Sort = Θ((N/B)·log_{M/B}(N/B)); Search = Θ(log_B N) "
     "per query; Output = Θ(log_B N + Z/B).",
     "All four measured costs track the closed forms: scans are exact, "
     "sorting is exact or slightly below (straggler-run optimization), "
     "searches equal the B-tree height, and range reporting adds ~Z/B."),
    ("F1", "Sorting scales as (N/B)·passes",
     "External merge sort performs 2·(N/B)·(1 + ceil(log_{m-1}(N/M))) "
     "I/Os: piecewise linear in N, one extra pass at each fan-in power.",
     "Measured/theory ratio is 0.995–1.000 across a 64x size sweep; the "
     "pass column shows the log_{M/B} staircase."),
    ("F2", "Merge fan-in ablation (log_2 vs log_{M/B})",
     "The base of the logarithm is the external-memory win: 2-way "
     "merging needs log_2(N/M) passes, full fan-in log_{m-1}(N/M).",
     "Implied pass counts match the formula exactly for every fan-in "
     "(7.95 / 5.00 / 4.00 / 3.00); 2-way costs 2.6x the I/O of 15-way "
     "on the same input."),
    ("F3", "Merge vs distribution sort",
     "Both optimal sorting paradigms meet the same bound; they differ "
     "in constants and in distribution's sensitivity to pivot quality.",
     "Both are within small constants of the bound on uniform and "
     "Zipf-skewed keys; merge sits exactly on the bound and "
     "distribution within 1.2–1.5x of it (its fan-out spends memory on "
     "pivot and equality buckets)."),
    ("F4", "Replacement selection doubles run length",
     "Expected run length 2M on random input (Knuth); one run on sorted "
     "input; M on reverse-sorted input.",
     "Mean run length / heap size = 1.94 on random input, exactly one "
     "run when sorted, 0.99 when reversed — the classic table, plus a "
     "nearly-sorted row collapsing 40 runs to 2."),
    ("F5", "Permuting = Θ(min(N, Sort(N)))",
     "Moving records one-by-one costs ~2N I/Os; routing them by sorting "
     "costs Sort(N).  The winner flips as B grows: permuting is as hard "
     "as sorting except for tiny blocks.",
     "Naive wins at B=1–2; sort-based wins from B=8 up — by 13x at "
     "B=64 and 50x at B=256.  The dispatcher picks the winner on both "
     "sides."),
    ("F6", "Matrix transpose",
     "With a B×B tile resident, transpose is one read + one write pass "
     "(2N/B); the RAM column loop degenerates toward one I/O per "
     "element once columns exceed the pool.",
     "Blocked transpose measures exactly 2N/B at every size; the naive "
     "loop ties while the matrix still fits the pool (32x32) and is "
     "8.5x worse beyond."),
    ("F7", "B-tree search and range queries",
     "Point queries cost the height ~log_B N; bigger B flattens the "
     "tree; range queries cost log_B N + Z/B.",
     "Cold lookups equal the height at every N; the height falls from "
     "6 to 2 as B grows 8→512; range cost is linear in Z (100x output "
     "costs 26x the I/O, the log_B N term amortizing away)."),
    ("F8", "Buffer tree amortization",
     "Attaching M-sized buffers gives amortized O((1/B)·log_{M/B}(N/B)) "
     "per update — ~B times cheaper than a B-tree insert — and routing "
     "N records through it sorts at O(Sort(N)).",
     "Buffer-tree inserts cost 0.17–0.21 I/Os per op vs 1.6–2.3 for "
     "the B-tree: a 9–11x speedup; buffer-tree sorting lands within "
     "2.8x of the merge-sort bound."),
    ("F9", "External priority queue",
     "N inserts + N delete-mins cost O(Sort(N)) total — the engine of "
     "time-forward processing — versus Θ(log_B N) per op for a "
     "tree-based queue.",
     "The sequence heap lands just under the Sort(N) estimate; the "
     "B-tree queue pays 21–23x more I/O on the same workload."),
    ("F10", "List ranking",
     "Pointer chasing through a randomly stored list costs ~1 I/O per "
     "hop; independent-set contraction ranks in O(Sort(N)) expected.",
     "Chasing climbs to ~0.95 I/O per hop once lists outgrow the pool; "
     "contraction costs ~0.45 I/O per record and wins from 20k records "
     "on (2.1x at 80k, B=256) — the asymptotic crossover with honest "
     "constants (~6 sorts per level)."),
    ("F11", "External BFS (Munagala–Ranade)",
     "Naive BFS pays ~1 random I/O per edge against its on-disk visited "
     "structure; MR-BFS costs O(V + Sort(E)).  Meshes' locality narrows "
     "the gap, random layouts show it in full.",
     "MR-BFS beats the fully external naive BFS 4.8x on the random "
     "graph and 2.1x on the grid, whose locality softens the naive "
     "baseline — both halves as predicted."),
    ("F12", "Parallel disks (PDM)",
     "One I/O step moves D blocks, so striped scans speed up ~D; "
     "striped sorting gains less because each striped run costs D "
     "frames, shrinking the fan-in (striping loses part of the log "
     "factor).",
     "Scan steps speed up 2.0/4.0/7.9x at D=2/4/8; sort steps only "
     "1.3/2.7/4.0x while the pass column grows 2→4 — both halves of "
     "the claim."),
    ("F13", "Paging-policy ablation",
     "The model assumes favorable paging; LRU is the online stand-in, "
     "MIN (Belady) the offline optimum.  The cyclic-scan trace is LRU's "
     "classic worst case.",
     "On the loop trace LRU misses 100% while MRU/MIN retain the loop "
     "(52 misses); on the hot/cold trace LRU ≤ Clock ≤ FIFO; on the "
     "uniform trace the online policies tie; MIN dominates everything "
     "everywhere."),
    ("F14", "Extendible hashing",
     "Exact-match lookups cost O(1) I/Os at any size — the tradeoff "
     "being no ordered access — versus the B-tree's log_B N.",
     "Hash lookups measure exactly 1.0 I/O from 2k to 128k keys; "
     "B-tree lookups grow 3→4 with the height."),
    ("F15", "Database joins",
     "Sort-merge = Sort(R)+Sort(S); Grace hash ≈ 3(scan R + scan S); "
     "block nested loop = scan R + ceil(|R|/M)·scan S — best only while "
     "the build side fits in memory.",
     "BNL wins while the build side is within a few memoryloads (300 "
     "and 2000 rows); at 8000 rows BNL is worst and sort-merge takes "
     "over (Grace hash pays recursive re-partitioning at this small M) "
     "— the textbook crossover, with the sort/hash order set by "
     "constants."),
    ("F16", "Distribution sweeping: segment intersection",
     "Batched orthogonal segment intersection runs in O(Sort(N) + Z/B) "
     "versus the quadratic all-pairs baseline.",
     "The sweep grows near-linearly while the baseline grows "
     "quadratically; the crossover lands between 8k and 32k segments "
     "and the sweep wins 1.6x at the largest size."),
    ("F17", "Connected components",
     "Hook-and-contract solves connectivity in O(Sort(E)·log V) versus "
     "~1 random I/O per vertex for DFS; the semi-external union-find "
     "scan is cheapest but needs V in memory.",
     "Contraction beats DFS at both sizes (1.4–1.7x); the semi-external "
     "scan is two orders of magnitude cheaper than either, quantifying "
     "exactly what holding V in RAM buys."),
    ("F18", "Time-forward processing",
     "Evaluating a local DAG function costs O(Sort(E)) by sending "
     "values forward through an external PQ, versus ~1 I/O per edge of "
     "value-table pointer chasing.",
     "Time-forward wins 1.6x at 4k vertices growing to 3.8x at 16k — "
     "the batched PQ amortization at work."),
    ("F19", "External Dijkstra",
     "Shortest paths inherit the PQ separation: a batched sequence-heap "
     "queue versus a per-operation tree queue.",
     "The sequence-heap Dijkstra beats the B-tree-PQ variant ~1.9x on "
     "identical graphs; the shared per-edge settled-table traffic "
     "dilutes the pure PQ gap of F9, as the cost model predicts."),
    ("F20", "Batched dominance counting",
     "The distribution-sweeping template generalizes: 2-D dominance "
     "counts in O(Sort(N)) versus the all-pairs baseline.",
     "Near-linear sweep growth against quadratic baseline growth, with "
     "the crossover before 16k points where the sweep wins 1.9x — the "
     "same shape as F16 on a second problem."),
    ("F21", "Minimum spanning trees",
     "Semi-external Kruskal is Sort(E) + a scan when V fits in memory; "
     "fully external Borůvka pays O(log V) contraction rounds.",
     "Both compute identical forest weights (validated against "
     "networkx); Kruskal stays within Sort(2E) while Borůvka costs "
     "16–21x more — the O(log V) contraction rounds, the price of not "
     "holding V in memory."),
    ("F22", "Selection vs sorting",
     "Order statistics need only O(scan(N)) I/Os; sorting pays the full "
     "log_{M/B} factor.",
     "Median extraction stays flat at 4.1–4.4 scans worth of I/O "
     "across a 16x size sweep while sorting grows with its pass count, "
     "stretching sorting's cost to 2.0x selection's."),
    ("F23", "External suffix-array construction",
     "Text indexes over corpora larger than memory are built with "
     "batched primitives: prefix doubling costs O(Sort(N)) per round "
     "and O(log N) rounds, with no random access to the text.",
     "I/O per suffix is 1.4–2.1 (≈17–22 Sort(N)-equivalents total, the "
     "log-round factor on a binary alphabet), versus the ~log2(N) ≈ 15 "
     "I/Os per suffix a random-access comparison build would pay; "
     "growth across a 16x sweep is logarithmic."),
]

HEADER = """# EXPERIMENTS — paper claims vs measured results

Every experiment from DESIGN.md's per-experiment index, regenerated by
`pytest benchmarks/ --benchmark-only`.  All numbers are **simulated-disk
I/O counts** (deterministic; see the substitution note in DESIGN.md).
Absolute constants are ours; the *shapes* — who wins, slopes, pass
counts, crossovers — are the survey's claims, and each benchmark asserts
them programmatically.

Machine configurations are stated in each table header (`B` records per
block, `m` frames, `M = m·B` records of memory, `D` disks).

"""


def main() -> int:
    sections = [HEADER]
    missing = []
    for name, title, claim, verdict in CLAIMS:
        path = os.path.join(RESULTS, f"{name}.txt")
        if os.path.exists(path):
            with open(path) as fh:
                table = fh.read().strip()
            table_block = "```\n" + table + "\n```"
        else:
            table_block = "*(results file missing — run the benchmarks)*"
            missing.append(name)
        sections.append(
            f"## {name} — {title}\n\n"
            f"**Paper claim.** {claim}\n\n"
            f"**Measured.**\n\n{table_block}\n\n"
            f"**Verdict.** {verdict}\n"
        )
    with open(os.path.join(ROOT, "EXPERIMENTS.md"), "w") as fh:
        fh.write("\n".join(sections))
    print(f"wrote EXPERIMENTS.md ({len(CLAIMS)} experiments, "
          f"{len(missing)} missing: {missing})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""EM-lint launcher: ``python tools/emlint.py [paths...]``.

Thin wrapper around :mod:`repro.analysis.cli` that works from a source
checkout without installation (it prepends ``src/`` to ``sys.path``).
"""

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.analysis.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())

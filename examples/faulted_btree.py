"""A B+-tree workload on a faulty disk, traced end to end.

Run:  python examples/faulted_btree.py

A B+-tree is bulk-built, then queried and updated while a seeded
`FaultPlan` injects transient read errors and torn block writes.  All
of the tree's I/O is *cached* — it goes through the machine's buffer
pool — and the pool routes it through the runtime, so:

* missed reads that fail transiently are retried with exponential
  backoff, charged as stall steps (no raw `TransientReadError`
  escapes to the caller);
* dirty frames written back under the plan are checksum-verified while
  the good copy is still in memory, and torn flushes are rewritten
  (scrubbed) on the spot;
* every resident frame is charged to the machine's single `M`-record
  memory budget;
* the tracer attributes pool hits/misses/evictions — and any scrubs —
  per phase, next to the reads/writes/retries they caused.

The printed summary table and the exported Chrome trace
(`faulted_btree_trace.json`, load in chrome://tracing or Perfetto)
show the degradation without a single exception reaching the workload.
"""

import os
import random

from repro import Machine
from repro.faults import FaultPlan
from repro.search import BPlusTree

B, M_BLOCKS, N = 16, 8, 2_000
TRACE_PATH = os.path.join("out", "faulted_btree_trace.json")


def main() -> None:
    rng = random.Random(7)
    machine = Machine(block_size=B, memory_blocks=M_BLOCKS)
    tree = BPlusTree(machine)

    keys = list(range(N))
    rng.shuffle(keys)

    tracer = machine.runtime.start_trace()
    plan = FaultPlan(seed=29, read_error_rate=0.05, torn_write_rate=0.02)
    with machine.inject_faults(plan):
        with machine.trace("build"):
            for key in keys:
                tree.insert(key, key * key)
            machine.pool.flush_all()

        with machine.trace("point-queries"):
            machine.pool.drop_all()  # cold cache: every level faults in
            for key in rng.sample(range(N), 200):
                assert tree.get(key) == key * key

        with machine.trace("range-queries"):
            for low in range(0, N, N // 8):
                span = list(tree.range_query(low, low + 99))
                assert len(span) == min(100, N - low)

        with machine.trace("deletes"):
            for key in rng.sample(range(N), 200):
                tree.delete(key)
            machine.pool.flush_all()
    tracer.stop()

    stats = machine.stats()
    pool = machine.pool
    print("workload complete — no fault reached the B+-tree caller\n")
    print(tracer.summary_table())
    print()
    print(f"faults injected : {stats.faults}")
    print(f"retries         : {stats.retries}")
    print(f"backoff stalls  : {stats.stall_steps} steps")
    print(f"torn-flush scrubs: {pool.scrubs}")
    hit_rate = pool.hits / max(1, pool.hits + pool.misses)
    print(f"pool hit rate   : {hit_rate:.1%} "
          f"({pool.hits} hits / {pool.misses} misses)")
    print(f"budget occupancy: {machine.budget.occupancy} of "
          f"{machine.M} records "
          f"({machine.budget.reclaimable} reclaimable cache)")

    os.makedirs(os.path.dirname(TRACE_PATH), exist_ok=True)
    tracer.save(TRACE_PATH)
    print(f"\nChrome trace written to {TRACE_PATH}")


if __name__ == "__main__":
    main()

"""External BFS over a disk-resident graph.

Run:  python examples/web_graph_bfs.py

A random graph (a toy stand-in for a web/social graph: no storage
locality whatsoever) is traversed by the textbook queue BFS and by
Munagala–Ranade external BFS.  The naive version pays roughly one random
I/O per vertex; MR-BFS turns the frontier expansion into sorts.
"""

from repro import Machine
from repro.core import format_table
from repro.graph import AdjacencyStore, mr_bfs, naive_bfs, semi_external_bfs
from repro.workloads import connected_random_graph, grid_graph


def run(label, num_vertices, edges) -> list:
    machine = Machine(block_size=64, memory_blocks=4)
    adjacency = AdjacencyStore.from_edges(machine, num_vertices, edges)
    machine.reset_stats()
    with machine.measure() as io_naive:
        naive = naive_bfs(machine, adjacency, 0)
    machine.pool.drop_all()
    with machine.measure() as io_mr:
        mr = mr_bfs(machine, adjacency, 0)
    machine.pool.drop_all()
    with machine.measure() as io_semi:
        semi = semi_external_bfs(machine, adjacency, 0)
    assert naive == mr == semi
    return [
        label, num_vertices, len(edges),
        io_naive.total, io_mr.total, io_semi.total,
        f"{io_naive.total / max(1, io_mr.total):.2f}x",
    ]


def main() -> None:
    print("BFS on disk-resident graphs (tiny pool: 4 frames)\n")
    rows = []
    n, edges = connected_random_graph(20_000, avg_degree=8, seed=3)
    rows.append(run("random graph", n, edges))
    n, edges = grid_graph(100, 100)
    rows.append(run("grid graph", n, edges))
    print(format_table(
        ["graph", "V", "E", "naive (ext.)", "MR-BFS", "semi-ext.",
         "MR speedup"],
        rows,
    ))
    print("\nThe fully external naive BFS pays ~1 I/O per *edge* checking "
          "its on-disk visited table; MR-BFS replaces that with sorting. "
          "The semi-external variant (visited set in RAM) shows what "
          "becomes possible when V fits in memory.")


if __name__ == "__main__":
    main()

"""Indexing a log file: B+-tree vs extendible hashing.

Run:  python examples/log_indexing.py

A stream of log records (sequence number -> message) is indexed two ways:

* a bulk-loaded B+-tree — ``Θ(log_B N)`` point lookups plus cheap range
  scans over the leaf chain;
* an extendible hash table — O(1)-I/O point lookups, no range queries.

The example measures cold-cache costs for both, the survey's search
bounds table in action.
"""

from repro import Machine
from repro.core import format_table, search_io
from repro.search import BPlusTree, ExtendibleHashTable


def main() -> None:
    machine = Machine(block_size=64, memory_blocks=8)
    n = 50_000
    records = [(seq, f"event-{seq % 17}") for seq in range(n)]
    print(f"indexing {n} log records, B={machine.B}\n")

    with machine.measure() as io:
        tree = BPlusTree.bulk_load(machine, iter(records))
    print(f"B+-tree bulk load: {io.total} I/Os, height {tree.height} "
          f"(theory: ~{search_io(n, tree.order)})")

    table = ExtendibleHashTable(machine)
    with machine.measure() as io:
        for seq, message in records:
            table.insert(seq, message)
    print(f"hash build (per-record inserts): {io.total} I/Os, "
          f"{table.num_buckets} buckets, depth {table.global_depth}\n")

    probes = list(range(0, n, n // 500))
    rows = []
    for label, index in [("B+-tree", tree), ("hash table", table)]:
        machine.pool.drop_all()
        machine.reset_stats()
        for probe in probes:
            index.get(probe)
            machine.pool.drop_all()  # keep every probe cold
        total = machine.stats().reads
        rows.append([label, len(probes), total,
                     f"{total / len(probes):.2f}"])
    print(format_table(
        ["index", "cold point lookups", "read I/Os", "I/Os per lookup"],
        rows,
    ))

    # Range query: only the tree can do this without a full scan.
    machine.pool.drop_all()
    machine.reset_stats()
    window = list(tree.range_query(10_000, 10_000 + 640))
    print(f"\nB+-tree range of {len(window)} records: "
          f"{machine.stats().reads} I/Os "
          f"(log_B N + Z/B = {search_io(n, tree.order)} + "
          f"{len(window) // machine.B})")


if __name__ == "__main__":
    main()

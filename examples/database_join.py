"""A miniature analytics pipeline: joins, selection, and aggregation.

Run:  python examples/database_join.py

Models the survey's motivating application — a database engine whose
operators are built on external sorting and hashing.  An orders table is
joined against a customers table with each of the three classical join
algorithms, then aggregated per customer, all with exact I/O accounting.
"""

from repro import Machine
from repro.core import format_table
from repro.relational import (
    Table,
    block_nested_loop_join,
    grace_hash_join,
    group_by,
    select,
    sort_merge_join,
)
from repro.workloads import foreign_key_relations


def main() -> None:
    machine = Machine(block_size=64, memory_blocks=16)
    num_customers, num_orders = 2_000, 20_000
    customer_rows, order_rows = foreign_key_relations(
        num_customers, num_orders, seed=7
    )
    # Give orders an amount column derived from their id.
    order_rows = [
        (key, 10 + (i * 37) % 500) for i, (key, _) in enumerate(order_rows)
    ]

    customers = Table.from_rows(
        machine, ("cust_id", "segment"), customer_rows, name="customers"
    )
    orders = Table.from_rows(
        machine, ("cust_id", "amount"), order_rows, name="orders"
    )
    print(f"customers: {len(customers)} rows, orders: {len(orders)} rows, "
          f"M = {machine.M} records\n")

    rows = []
    for label, join in [
        ("sort-merge join", sort_merge_join),
        ("grace hash join", grace_hash_join),
        ("block nested loop", block_nested_loop_join),
    ]:
        with machine.measure() as io:
            joined = join(customers, orders, "cust_id", "cust_id")
        rows.append([label, len(joined), io.reads, io.writes, io.total])
        joined.delete()
    print(format_table(
        ["join algorithm", "result rows", "reads", "writes", "total I/O"],
        rows,
    ))

    # Aggregation: revenue per customer for big orders, via sort-based
    # GROUP BY (ORDER BY + one scan).
    with machine.measure() as io:
        big = select(orders, lambda r: r[1] >= 400, name="big_orders")
        revenue = group_by(big, "cust_id",
                           [("sum", "amount"), ("count", "amount")])
    top = max(revenue.rows(), key=lambda r: r[1])
    print(f"\nGROUP BY on {len(big)} filtered rows: {io.total} I/Os")
    print(f"top customer: id={top[0]} revenue={top[1]} orders={top[2]}")


if __name__ == "__main__":
    main()

"""A multi-tenant query service sharing one machine, traced per tenant.

Run:  python examples/service_mix.py

Two tenants share one 4-disk machine through ``repro.service``:

* **oltp** — a burst of B+-tree point lookups (weight 1, up to 8
  concurrent jobs);
* **olap** — one external merge sort over a larger stream (weight 2).

The service partitions the memory budget into weighted fair shares,
admits jobs against them, and advances every running job one I/O intent
per round — batching each tenant's block requests into shared
parallel-disk waves.  The same mix is then run through a serial
baseline (one job at a time): the interleaved schedule finishes in
fewer wall steps because concurrent lookups ride the same waves.

The run is traced: the per-tenant roll-up (``namespace_table``) splits
the shared machine's I/O by who asked, and the Chrome trace export
gains one lane per tenant (``namespace_lanes=2``) — load
``out/service_mix_trace.json`` in Perfetto to see the OLTP burst
interleaving with the sort's merge passes.
"""

import json
import os
import random

from repro import FileStream, Machine
from repro.search import BPlusTree
from repro.service import QueryService, btree_lookup_job, sort_job

B, M_BLOCKS, DISKS = 16, 16, 4
TREE_N, SORT_N, LOOKUPS = 1_500, 1_000, 32
TRACE_PATH = os.path.join("out", "service_mix_trace.json")


def build(machine):
    tree = BPlusTree.bulk_load(
        machine, ((i, i * i) for i in range(TREE_N))
    )
    rng = random.Random(42)
    stream = FileStream.from_records(
        machine,
        [rng.randrange(1_000_000) for _ in range(SORT_N)],
        name="olap/in",
    )
    machine.pool.flush_all()
    machine.runtime.flush()
    machine.reset_stats()
    return tree, stream


def submit_mix(service, machine, tree, stream):
    rng = random.Random(7)
    for _ in range(LOOKUPS):
        service.submit(
            "oltp", btree_lookup_job(tree, rng.randrange(TREE_N))
        )
    service.submit("olap", sort_job(machine, stream, name="bigsort"))


def run(max_running=None, tracer=None):
    machine = Machine(block_size=B, memory_blocks=M_BLOCKS,
                      num_disks=DISKS)
    tree, stream = build(machine)
    if tracer is not None:
        tracer = machine.runtime.start_trace()
    service = QueryService(machine, max_running=max_running)
    service.add_tenant("oltp", weight=1, max_running=8)
    service.add_tenant("olap", weight=2, max_running=1)
    submit_mix(service, machine, tree, stream)
    report = service.run()
    if tracer is not None:
        tracer.stop()
    return machine, service, report, tracer


def main() -> None:
    print(f"two tenants, B={B}, M={B * M_BLOCKS} records, D={DISKS}\n")

    machine, service, report, tracer = run(tracer=True)
    _, _, serial_report, _ = run(max_running=1)

    for name, row in sorted(report["tenants"].items()):
        tenant = service.tenant(name)
        print(
            f"{name}: {row['completed']} jobs, "
            f"{row['io_steps']} I/O steps, "
            f"p50/p99 latency {row['p50_wall']}/{row['p99_wall']} "
            f"wall steps, memory peak {tenant.share.peak}"
            f"/{tenant.share.capacity} records"
        )
    print(
        f"\ninterleaved: {report['total_wall_steps']} wall steps "
        f"vs serial baseline: {serial_report['total_wall_steps']}"
    )
    assert (report["total_wall_steps"]
            < serial_report["total_wall_steps"])

    print("\nper-tenant I/O roll-up (namespace_table, depth 2):")
    print(tracer.namespace_table(2))

    os.makedirs(os.path.dirname(TRACE_PATH), exist_ok=True)
    with open(TRACE_PATH, "w") as fh:
        fh.write(json.dumps(tracer.to_chrome(namespace_lanes=2)))
    print(f"\nChrome trace with per-tenant lanes: {TRACE_PATH}")


if __name__ == "__main__":
    main()

"""Sorting through injected disk faults, with checkpointed recovery.

Run:  python examples/chaos_sort.py

The same dataset is sorted three times:

1. on a healthy machine (the reference);
2. under a seeded fault plan — transient read/write errors, one torn
   block write, and a stuck-slow disk — relying on the runtime's retry
   policy and per-block checksums;
3. under a plan that *crashes* the machine mid-sort, then resumes from
   the checkpoint manifest's last committed pass.

All three produce identical output.  The faulted run is traced: the
summary table grows fault/retry/stall columns, and a Chrome trace-event
file shows fault instants and backoff stalls on the per-disk lanes.
"""

import os
import random

from repro import FileStream, Machine
from repro.core.exceptions import SimulatedCrash
from repro.faults import FaultPlan, SortManifest, checkpointed_merge_sort
from repro.sort import external_merge_sort

B, M_BLOCKS, N = 32, 8, 6_000
TRACE_PATH = os.path.join("out", "chaos_sort_trace.json")


def dataset():
    rng = random.Random(42)
    return [rng.randrange(1_000_000) for _ in range(N)]


def main() -> None:
    data = dataset()
    print(f"sorting {N} records, B={B}, M={B * M_BLOCKS} records\n")

    # 1. Healthy reference run.
    clean = Machine(block_size=B, memory_blocks=M_BLOCKS)
    with clean.measure() as clean_io:
        reference = list(
            external_merge_sort(clean, FileStream.from_records(clean, data))
        )
    print(f"clean sort:      {clean_io.total} transfers")

    # 2. Degraded run: transient errors are retried (backoff charged as
    # stall steps), the torn write is caught by verify_outputs before
    # the poisoned pass can commit.
    faulty = Machine(block_size=B, memory_blocks=M_BLOCKS)
    stream = FileStream.from_records(faulty, data)
    tracer = faulty.runtime.start_trace()
    plan = FaultPlan(
        seed=7,
        read_error_rate=0.01,
        write_error_rate=0.005,
        torn_writes={40},
        slow_disks={0: 2},
    )
    with faulty.inject_faults(plan) as injector:
        with faulty.trace("chaos-sort"):
            degraded = list(
                checkpointed_merge_sort(
                    faulty, stream, SortManifest(), verify_outputs=True
                )
            )
    tracer.stop()
    os.makedirs(os.path.dirname(TRACE_PATH), exist_ok=True)
    tracer.save(TRACE_PATH)
    stats = faulty.stats()
    print(f"faulted sort:    {stats.total} transfers, "
          f"{stats.faults} faults, {stats.retries} retries, "
          f"{stats.stall_steps} stall steps "
          f"(wall: {stats.wall_steps} steps)")
    print(f"injected:        {injector.summary()}")
    assert degraded == reference
    print("degraded output matches the clean sort\n")

    # 3. Crash mid-sort, resume from the manifest.
    crashy = Machine(block_size=B, memory_blocks=M_BLOCKS)
    stream = FileStream.from_records(crashy, data)
    manifest = SortManifest()
    try:
        with crashy.inject_faults(FaultPlan(crash_after_writes=300)):
            checkpointed_merge_sort(crashy, stream, manifest)
        raise AssertionError("the crash plan should have fired")
    except SimulatedCrash as crash:
        print(f"crashed:         {crash}")
        print(f"manifest:        {manifest.committed_passes} committed "
              f"pass(es), {len(manifest.partial_runs)} partial run(s)")
    # The manifest round-trips through JSON, as a durable one would.
    manifest = SortManifest.from_json(manifest.to_json())
    resumed = list(checkpointed_merge_sort(crashy, stream, manifest))
    assert resumed == reference
    print("resumed:         output matches the clean sort")

    print("\nper-phase trace of the faulted run:")
    print(tracer.summary_table())
    print(f"\nChrome trace written to {TRACE_PATH}")


if __name__ == "__main__":
    main()

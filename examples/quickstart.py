"""Quickstart: configure a machine, sort a dataset, compare with theory.

Run:  python examples/quickstart.py

This is the survey's headline story in 30 lines: external merge sort
performs exactly ``2 · (N/B) · (1 + ceil(log_{m-1}(N/M)))`` block
transfers, and a naive binary merge sort pays ``log_2`` passes instead of
``log_{m-1}``.
"""

from repro import FileStream, Machine
from repro.core import format_table, merge_passes, sort_io
from repro.sort import external_merge_sort, is_sorted_stream, two_way_merge_sort
from repro.workloads import uniform_ints


def main() -> None:
    # An I/O-model machine: blocks of 64 records, 16 frames of memory
    # (M = 1024 records), one disk.
    machine = Machine(block_size=64, memory_blocks=16)
    n = 100_000
    print(f"machine: B={machine.B} records/block, M={machine.M} records, "
          f"fan-in={machine.fan_in}")
    print(f"dataset: {n} uniform random integers\n")

    data = FileStream.from_records(machine, uniform_ints(n, seed=42))
    machine.reset_stats()

    with machine.measure() as io:
        result = external_merge_sort(machine, data)
    assert is_sorted_stream(result)

    predicted = sort_io(n, machine.M, machine.B)
    passes = merge_passes(n, machine.M, machine.B)
    print(format_table(
        ["quantity", "value"],
        [
            ["passes over the data", passes],
            ["predicted I/Os  2*(N/B)*passes", predicted],
            ["measured I/Os", io.total],
            ["measured / predicted", f"{io.total / predicted:.3f}"],
        ],
    ))

    # The baseline: merging only two runs at a time (the RAM-model
    # algorithm run blindly on disk).
    machine2 = Machine(block_size=64, memory_blocks=16)
    data2 = FileStream.from_records(machine2, uniform_ints(n, seed=42))
    machine2.reset_stats()
    with machine2.measure() as io2:
        two_way_merge_sort(machine2, data2)
    print(f"\n2-way merge sort: {io2.total} I/Os "
          f"({io2.total / io.total:.2f}x the {machine.fan_in}-way sort)")
    print("That gap — log_2 vs log_{M/B} passes — is the survey's "
          "sorting story.")


if __name__ == "__main__":
    main()

"""Scheduled I/O on the Parallel Disk Model.

Run:  python examples/parallel_disks.py

The same dataset is scanned and sorted on machines with 1, 2, 4, and 8
disks.  Scans parallelize perfectly (one step moves D blocks).  Plain
striping historically made sorting parallelize *sublinearly* — either a
striped run reader holds D frames and the fan-in shrinks to ~m/D (extra
passes), or reads arrive one block per step.  The I/O runtime
(``repro.runtime``) closes that gap with forecasting prefetch and
write-behind: the sort keeps its full merge arity and its parallel steps
track the optimal ``ceil(transfers / D)``.

The run is traced: per-phase step counts come from the runtime tracer
(``machine.runtime.start_trace()`` + ``with machine.trace(...)``), and a
Chrome trace-event file is written for the D=8 sort — open it in
``chrome://tracing`` or Perfetto to see the per-disk lanes.
"""

import os
from math import ceil

from repro import Machine, StripedStream
from repro.core import format_table
from repro.sort import external_merge_sort, is_sorted_stream
from repro.workloads import uniform_ints

# 40k records = 625 blocks = 20 full-memory runs: a single merge pass
# even on the 8-disk machine (whose striped output writer holds D of the
# m frames during the merge), with spare frames left for prefetch
# staging and the write-behind window.
B, M_BLOCKS, N = 64, 32, 40_000
TRACE_PATH = os.path.join("out", "parallel_sort_trace.json")


def main() -> None:
    print(f"sorting {N} records, B={B}, M={B * M_BLOCKS} records\n")
    rows = []
    base_scan = base_sort = tracer = None
    for num_disks in (1, 2, 4, 8):
        machine = Machine(block_size=B, memory_blocks=M_BLOCKS,
                          num_disks=num_disks)
        stream = StripedStream.from_records(
            machine, uniform_ints(N, seed=1)
        )
        machine.reset_stats()
        for _ in stream:
            pass
        scan_steps = machine.stats().total_steps

        machine.reset_stats()
        tracer = machine.runtime.start_trace()
        result = external_merge_sort(
            machine, stream, stream_cls=StripedStream
        )
        tracer.stop()
        stats = machine.stats()
        assert is_sorted_stream(result)
        optimal = ceil(stats.total / num_disks)

        if num_disks == 1:
            base_scan, base_sort = scan_steps, stats.total_steps
        rows.append([
            num_disks, scan_steps, f"{base_scan / scan_steps:.2f}x",
            stats.total, stats.total_steps, optimal,
            f"{stats.total_steps / optimal:.3f}",
            f"{base_sort / stats.total_steps:.2f}x",
        ])
    print(format_table(
        ["D", "scan steps", "speedup", "sort xfers", "sort steps",
         "optimal", "steps/opt", "speedup"],
        rows,
    ))

    print("\nPer-phase steps of the D=8 sort (runtime tracer):\n")
    print(tracer.summary_table())
    os.makedirs(os.path.dirname(TRACE_PATH), exist_ok=True)
    tracer.save(TRACE_PATH)
    print(f"\nChrome trace written to {TRACE_PATH} "
          "(load in chrome://tracing or Perfetto).")
    print("Scans scale ~linearly with D, and the scheduled sort tracks "
          "its step-optimal schedule (within ~30% even at D=8) — no "
          "shrunken fan-in, no extra passes.")


if __name__ == "__main__":
    main()

"""Disk striping on the Parallel Disk Model.

Run:  python examples/parallel_disks.py

The same dataset is scanned and sorted on machines with 1, 2, 4, and 8
disks.  Scans parallelize perfectly (one step moves D blocks); sorting
parallelizes sublinearly because every striped run reader costs D memory
frames, shrinking the merge fan-in — the survey's observation that plain
striping forfeits part of the log_{M/B} factor.
"""

from repro import Machine, StripedStream
from repro.core import format_table, merge_passes
from repro.sort import external_merge_sort, is_sorted_stream
from repro.workloads import uniform_ints

B, M_BLOCKS, N = 64, 32, 60_000


def main() -> None:
    print(f"sorting {N} records, B={B}, M={B * M_BLOCKS} records\n")
    rows = []
    base_scan = base_sort = None
    for num_disks in (1, 2, 4, 8):
        machine = Machine(block_size=B, memory_blocks=M_BLOCKS,
                          num_disks=num_disks)
        stream = StripedStream.from_records(
            machine, uniform_ints(N, seed=1)
        )
        machine.reset_stats()
        for _ in stream:
            pass
        scan_steps = machine.stats().total_steps

        fan_in = max(2, M_BLOCKS // num_disks - 1)
        machine.reset_stats()
        result = external_merge_sort(
            machine, stream, stream_cls=StripedStream, fan_in=fan_in
        )
        assert is_sorted_stream(result)
        sort_steps = machine.stats().total_steps

        if num_disks == 1:
            base_scan, base_sort = scan_steps, sort_steps
        rows.append([
            num_disks, scan_steps, f"{base_scan / scan_steps:.2f}x",
            fan_in, merge_passes(N, machine.M, B, fan_in=fan_in),
            sort_steps, f"{base_sort / sort_steps:.2f}x",
        ])
    print(format_table(
        ["D", "scan steps", "speedup", "fan-in", "passes", "sort steps",
         "speedup"],
        rows,
    ))
    print("\nScans scale ~linearly with D; sorting pays extra passes as "
          "the fan-in shrinks — plain striping is not an optimal "
          "parallel-disk sort, exactly as the survey notes.")


if __name__ == "__main__":
    main()

"""External word count, two ways: a fused pipeline vs materialized
stages.

Run:  python examples/pipeline_wordcount.py

The classic first MapReduce program at external-memory scale: a corpus
of log lines lives on disk, and the word counts must be computed with
`M` records of memory.  Both versions are the same algorithm — split
into words, sort by word, fold each run of equal words — but they cross
the sort boundary differently:

* **materialized** — write the words to a stream, sort stream-to-stream,
  scan the sorted copy: every boundary is a full write + read of the
  data (~2·(N/DB) I/Os each);
* **fused** — `Pipeline.scan(...).flat_map(split).group_reduce(...)`
  pushes words straight into run formation and folds groups straight
  out of the final merge: the word stream and the sorted stream never
  exist on disk.

A phase trace shows where the fused version's I/Os went (runs and merge
only — no scan/materialize phases).
"""

import random

from repro import Machine
from repro.core import FileStream, format_table
from repro.pipeline import Pipeline
from repro.sort import external_merge_sort

WORDS = ("the quick brown fox jumps over lazy dog external memory "
         "algorithm block disk sort scan merge pipeline stream").split()


def make_corpus(machine, num_lines, seed=9):
    rng = random.Random(seed)
    lines = FileStream(machine, name="corpus")
    for _ in range(num_lines):
        lines.append(" ".join(rng.choice(WORDS)
                              for _ in range(rng.randrange(4, 12))))
    return lines.finalize()


def wordcount_materialized(machine, lines):
    """Stream-to-stream: words stream -> sorted stream -> fold scan."""
    words = FileStream(machine, name="wc/words")
    for line in lines:
        for word in line.split():
            words.append(word)
    words.finalize()
    ordered = external_merge_sort(machine, words, keep_input=False)
    counts = {}  # em: ok(EM006) distinct-word result, bounded vocabulary
    current, tally = None, 0
    for word in ordered:
        if word != current:
            if current is not None:
                counts[current] = tally
            current, tally = word, 0
        tally += 1
    if current is not None:
        counts[current] = tally
    ordered.delete()
    return counts


def wordcount_fused(machine, lines):
    """One fused pipeline: no word stream, no sorted stream."""
    pipeline = (
        Pipeline.scan(machine, lines, name="wc")
        .flat_map(str.split)
        .group_reduce(key=lambda w: w, fn=lambda v, _: v + 1,
                      initial=lambda: 0)
    )
    # em: ok(EM006) distinct-word result, bounded vocabulary
    return dict(pipeline.iterate())


def main() -> None:
    machine = Machine(block_size=64, memory_blocks=16)
    lines = make_corpus(machine, num_lines=20_000)
    print(f"corpus: {len(lines)} lines in {len(lines.block_ids)} blocks,"
          f" B={machine.B}, M={machine.M}\n")

    machine.reset_stats()
    materialized = wordcount_materialized(machine, lines)
    materialized_io = machine.stats().total

    tracer = machine.runtime.start_trace()
    machine.reset_stats()
    fused = wordcount_fused(machine, lines)
    fused_io = machine.stats().total

    assert fused == materialized  # same counts either way
    top = sorted(fused.items(), key=lambda kv: -kv[1])[:5]
    print(format_table(["word", "count"], [[w, c] for w, c in top]))

    print(f"\nmaterialized word count: {materialized_io} I/Os")
    print(f"fused pipeline:          {fused_io} I/Os "
          f"({1 - fused_io / materialized_io:.1%} saved — the word and "
          f"sorted streams never hit disk)")

    print("\nwhere the fused I/Os went (phase trace):")
    print(tracer.summary_table())


if __name__ == "__main__":
    main()

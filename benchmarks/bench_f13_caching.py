"""F13 — paging-policy ablation: the model's "optimal paging" assumption.

Paper claim: the I/O model lets the algorithm (or an optimal pager)
choose evictions; LRU is the standard 2-competitive stand-in.  The
classic traces show the spread: on a loop one block larger than memory,
LRU degrades to 100% misses while MRU keeps most of the loop resident;
Belady's offline MIN lower-bounds everything.

Reproduction: replay scan-loop, hot/cold, and uniform-random traces
through the buffer pool under each policy and count misses.
"""

import random

from conftest import report

from repro.core import (
    POLICIES,
    BufferPool,
    Machine,
    MinPolicy,
    SimulatedDisk,
)

CAPACITY = 8
NUM_BLOCKS = 64


def make_traces():
    rng = random.Random(14)
    loop = list(range(CAPACITY + 1)) * 40
    hot_cold = [
        rng.randrange(4) if rng.random() < 0.7
        else 4 + rng.randrange(NUM_BLOCKS - 4)
        for _ in range(600)
    ]
    uniform = [rng.randrange(NUM_BLOCKS) for _ in range(600)]
    return {"cyclic loop": loop, "hot/cold 70/30": hot_cold,
            "uniform random": uniform}


def run_trace(policy, trace):
    disk = SimulatedDisk(block_capacity=4)
    ids = [disk.allocate() for _ in range(NUM_BLOCKS)]
    for block_id in ids:
        disk.write(block_id, [block_id])
    pool = BufferPool(disk, capacity=CAPACITY, policy=policy)
    for index in trace:
        pool.get(ids[index])
    return pool.misses


def run_experiment():
    rows = []
    for name, trace in make_traces().items():
        misses = {}
        for policy_name, policy_cls in POLICIES.items():
            misses[policy_name] = run_trace(policy_cls(), trace)
        misses["min"] = run_trace(MinPolicy(trace), trace)
        rows.append([name, len(trace)] + [
            misses[p] for p in ("lru", "fifo", "clock", "mru", "min")
        ])
        # MIN is offline-optimal: never beaten.
        assert all(misses["min"] <= misses[p] for p in misses)
    loop_row = rows[0]
    lru_loop, mru_loop = loop_row[2], loop_row[5]
    assert lru_loop == len(make_traces()["cyclic loop"])  # LRU: all miss
    assert mru_loop < lru_loop / 3                        # MRU: mostly hits
    return rows


def test_f13_caching(once):
    rows = once(run_experiment)
    report(
        "F13", f"buffer-pool misses, {CAPACITY} frames over "
               f"{NUM_BLOCKS} blocks",
        ["trace", "accesses", "LRU", "FIFO", "Clock", "MRU", "MIN"],
        rows,
    )

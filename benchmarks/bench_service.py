"""F24 — multi-tenant service: interleaving, fair shares, tail latency.

Paper link: Vitter's survey treats the machine as dedicated to one
algorithm; a query service multiplexes it.  This experiment runs a
chaos mix — an OLTP tenant issuing B+-tree and hash point reads against
an OLAP tenant running external sorts and a sort-merge join — through
``repro.service`` and measures what the multi-tenant layer claims:

* the *interleaved* schedule beats the *serial* baseline on total wall
  steps (cross-job waves share parallel-disk steps);
* each tenant's hard-memory peak stays within its fair share;
* under a fault plan targeting OLAP blocks, the OLAP tenant degrades
  alone — OLTP's ledger shows zero faults, retries, and stalls, and its
  tail latency is unchanged while OLAP's wall-clock tail widens.

Per tenant the series reports completed jobs, I/O steps, and p50/p99
latency on both clocks (transfer steps and wall steps).
"""

import random

from conftest import report

from repro.core import FileStream, Machine
from repro.faults import FaultPlan
from repro.relational import Table
from repro.search import BPlusTree
from repro.search.hashing import ExtendibleHashTable
from repro.service import (
    DONE,
    QueryService,
    btree_lookup_job,
    hash_lookup_job,
    join_job,
    sort_job,
)

B, M_BLOCKS, DISKS = 16, 16, 4
TREE_N, HASH_N, SORT_N, JOIN_N = 2_000, 600, 1_500, 400
OLTP_LOOKUPS = 48


def build_machine():
    machine = Machine(block_size=B, memory_blocks=M_BLOCKS,
                      num_disks=DISKS)
    tree = BPlusTree.bulk_load(
        machine, ((i, 2 * i) for i in range(TREE_N))
    )
    table = ExtendibleHashTable(machine)
    for i in range(HASH_N):
        table.insert(i, -i)
    rng = random.Random(3)
    sort_in = FileStream.from_records(
        machine, [rng.randrange(10 * SORT_N) for _ in range(SORT_N)],
        name="olap/sort-in",
    )
    left = Table.from_rows(
        machine, ["k", "a"],
        [(rng.randrange(80), i) for i in range(JOIN_N)], name="L",
    )
    right = Table.from_rows(
        machine, ["k", "b"],
        [(rng.randrange(80), -i) for i in range(JOIN_N // 2)], name="R",
    )
    machine.pool.flush_all()
    machine.runtime.flush()
    machine.reset_stats()
    return machine, tree, table, sort_in, left, right


def submit_chaos_mix(service, machine, tree, table, sort_in, left, right):
    rng = random.Random(5)
    for _ in range(OLTP_LOOKUPS // 2):
        service.submit("oltp", btree_lookup_job(
            tree, rng.randrange(TREE_N)
        ))
        service.submit("oltp", hash_lookup_job(
            table, rng.randrange(HASH_N)
        ))
    service.submit("olap", sort_job(machine, sort_in, name="bigsort"))
    service.submit("olap", join_job(left, right, "k", "k"))


def run_service(max_running=None, fault_plan=None):
    machine, tree, table, sort_in, left, right = build_machine()
    service = QueryService(machine, max_running=max_running)
    oltp = service.add_tenant("oltp", weight=1, max_running=8)
    # OLAP runs one job at a time: two concurrent sorts inside one
    # share halve each other's memoryloads and add merge passes,
    # costing more than the interleaving saves.  The win measured
    # here is cross-tenant wave sharing, not intra-tenant overlap.
    olap = service.add_tenant("olap", weight=2, max_running=1)
    submit_chaos_mix(service, machine, tree, table, sort_in, left, right)
    if fault_plan is None:
        service_report = service.run()
    else:
        victim_blocks = dict.fromkeys(list(sort_in.block_ids)[:1], 2)
        plan = FaultPlan(seed=fault_plan,
                         fail_block_reads=victim_blocks)
        with machine.inject_faults(plan):
            service_report = service.run()
    for tenant in (oltp, olap):
        assert all(job.status == DONE for job in tenant.done), [
            (job.name, job.error) for job in tenant.done
            if job.status != DONE
        ]
        assert tenant.share.peak <= tenant.share.capacity, (
            f"{tenant.name}: peak {tenant.share.peak} exceeds share "
            f"{tenant.share.capacity}"
        )
    assert machine.budget.in_use == 0
    return service_report


def run_experiment():
    interleaved = run_service()
    serial = run_service(max_running=1)
    faulted = run_service(fault_plan=11)

    # The headline claim: sharing waves across concurrent jobs beats
    # running the same mix one job at a time.
    assert (interleaved["total_wall_steps"]
            < serial["total_wall_steps"]), (
        f"interleaved {interleaved['total_wall_steps']} wall steps vs "
        f"serial {serial['total_wall_steps']}"
    )

    # Fault isolation: only the OLAP tenant pays for its bad blocks.
    clean_oltp = interleaved["tenants"]["oltp"]
    faulted_oltp = faulted["tenants"]["oltp"]
    faulted_olap = faulted["tenants"]["olap"]
    for tenant_row in (faulted_oltp,):
        assert tenant_row["faults"] == 0
        assert tenant_row["retries"] == 0
        assert tenant_row["stall_steps"] == 0
    assert faulted_olap["faults"] > 0
    assert faulted_olap["stall_steps"] > 0
    assert faulted_olap["p99_wall"] > faulted_olap["p99_io"]
    assert clean_oltp["completed"] == faulted_oltp["completed"]

    rows = []
    for label, service_report in (("interleaved", interleaved),
                                  ("serial", serial),
                                  ("faulted", faulted)):
        for name, tenant_row in sorted(
                service_report["tenants"].items()):
            rows.append([
                label, name,
                tenant_row["completed"],
                tenant_row["io_steps"],
                tenant_row["stall_steps"],
                tenant_row["p50_io"], tenant_row["p99_io"],
                tenant_row["p50_wall"], tenant_row["p99_wall"],
            ])
        rows.append([
            label, "(total)", "",
            service_report["total_io_steps"],
            service_report["total_stall_steps"],
            "", "", "",
            service_report["total_wall_steps"],
        ])
    return rows


def test_f24_service(once):
    rows = once(run_experiment)
    report(
        "F24",
        "multi-tenant service: per-tenant steps and p50/p99 latency "
        f"(B={B}, m={M_BLOCKS}, D={DISKS})",
        ["schedule", "tenant", "done", "io_steps", "stalls",
         "p50_io", "p99_io", "p50_wall", "p99_wall"],
        rows,
    )

"""F14 — extendible hashing: O(1)-I/O lookups, independent of N.

Paper claim: exact-match dictionaries don't need ``log_B N`` I/Os; an
extendible hash directory reaches the right bucket in a single I/O, at
any size — the trade being no ordered/range access.

Reproduction: cold point lookups in hash tables and B+-trees across a
size sweep; hash cost must stay flat at 1 while the tree's grows with
``log_B N``.
"""

from conftest import report

from repro.core import Machine, search_io
from repro.search import BPlusTree, ExtendibleHashTable
from repro.workloads import distinct_ints

B, M_BLOCKS = 32, 8


def cold_cost(machine, index, probes):
    total = 0
    for probe in probes:
        machine.pool.drop_all()
        machine.reset_stats()
        index.get(probe)
        total += machine.stats().reads
    return total / len(probes)


def run_experiment():
    rows = []
    hash_costs = []
    tree_costs = []
    for n in (2_000, 16_000, 128_000):
        keys = distinct_ints(n, seed=15)
        m1 = Machine(block_size=B, memory_blocks=M_BLOCKS)
        table = ExtendibleHashTable(m1)
        for k in keys:
            table.insert(k, k)
        m2 = Machine(block_size=B, memory_blocks=M_BLOCKS)
        tree = BPlusTree.bulk_load(
            m2, iter((k, k) for k in sorted(keys))
        )
        probes = keys[:: max(1, n // 100)]
        hash_cost = cold_cost(m1, table, probes)
        tree_cost = cold_cost(m2, tree, probes)
        hash_costs.append(hash_cost)
        tree_costs.append(tree_cost)
        rows.append([
            n, f"{hash_cost:.2f}", f"{tree_cost:.2f}",
            search_io(n, tree.order), table.global_depth,
        ])
    assert max(hash_costs) <= 1.2          # flat at ~1 I/O
    assert tree_costs[-1] > tree_costs[0]  # tree height grows
    assert tree_costs[-1] > hash_costs[-1]
    return rows


def test_f14_hashing(once):
    rows = once(run_experiment)
    report(
        "F14", f"cold point-lookup I/Os (B={B})",
        ["N", "hash I/O per lookup", "B-tree I/O per lookup",
         "log_B N", "directory depth"],
        rows,
    )

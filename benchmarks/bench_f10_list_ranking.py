"""F10 — list ranking: contraction ``O(Sort(N))`` vs pointer chasing ``Θ(N)``.

Paper claim: following pointers through a randomly stored list costs one
I/O per hop; randomized independent-set contraction replaces the walk
with a geometric series of sorts.  Pointer chasing's per-record cost is
flat at ~1; contraction's falls like ``log(N)/B``, so a crossover appears
once N/B outweighs the contraction's constant factor.

Reproduction: sweep N at a realistic block size and report both costs
per record.
"""

from conftest import report

from repro.core import Machine
from repro.graph import list_ranking, pointer_chase_ranking
from repro.workloads import random_linked_list

B, M_BLOCKS = 256, 16


def run_experiment():
    rows = []
    ratios = []
    for n in (5_000, 20_000, 80_000):
        pairs = random_linked_list(n, seed=11)
        m1 = Machine(block_size=B, memory_blocks=M_BLOCKS)
        with m1.measure() as io_chase:
            chased = pointer_chase_ranking(m1, pairs, n)
        m2 = Machine(block_size=B, memory_blocks=M_BLOCKS)
        with m2.measure() as io_contract:
            contracted = list_ranking(m2, pairs)
        assert chased == contracted
        ratio = io_contract.total / io_chase.total
        ratios.append(ratio)
        rows.append([
            n, io_chase.total, f"{io_chase.total / n:.2f}",
            io_contract.total, f"{io_contract.total / n:.2f}",
            f"{ratio:.2f}",
        ])
    # Pointer chasing stays ~1 I/O per record; contraction's relative
    # cost must fall as N grows (the sort bound's 1/B advantage).
    assert ratios[-1] < ratios[0]
    assert float(rows[-1][2]) > 0.8  # chase ~ 1 I/O per hop
    assert int(rows[-1][3]) < int(rows[-1][1])  # contraction wins at 80k
    return rows


def test_f10_list_ranking(once):
    rows = once(run_experiment)
    report(
        "F10", f"list ranking (B={B}, M={B * M_BLOCKS})",
        ["N", "chase I/O", "per rec", "contract I/O", "per rec",
         "contract/chase"],
        rows,
    )

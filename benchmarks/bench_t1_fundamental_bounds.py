"""T1 — the survey's fundamental-bounds table.

Paper claim: the four basic operations cost
``Scan = Θ(N/B)``, ``Sort = Θ((N/B) log_{M/B}(N/B))``,
``Search = Θ(log_B N)`` per query, ``Output = Θ(log_B N + Z/B)``.

Reproduction: measure each operation's I/Os on the simulated machine and
print measured vs closed-form theory; the ratios must be Θ(1).
"""

from conftest import report

from repro.core import FileStream, Machine, output_io, scan_io, search_io, sort_io
from repro.search import BPlusTree
from repro.sort import external_merge_sort
from repro.workloads import distinct_ints

B, M_BLOCKS = 64, 16


def run_experiment():
    rows = []
    for n in (16_384, 65_536, 262_144):
        machine = Machine(block_size=B, memory_blocks=M_BLOCKS)
        data = distinct_ints(n, seed=1)
        stream = FileStream.from_records(machine, data)

        with machine.measure() as io:
            for _ in stream:
                pass
        scan_measured, scan_theory = io.total, scan_io(n, B)

        with machine.measure() as io:
            external_merge_sort(machine, stream)
        sort_measured, sort_theory = io.total, sort_io(n, machine.M, B)

        tree = BPlusTree.bulk_load(
            machine, iter((k, k) for k in range(n))
        )
        machine.pool.drop_all()
        with machine.measure() as io:
            tree.get(n // 3)
        search_measured, search_theory = io.total, search_io(n, tree.order)

        z = 4 * B
        machine.pool.drop_all()
        with machine.measure() as io:
            list(tree.range_query(100, 100 + z - 1))
        output_measured = io.total
        output_theory = output_io(n, tree.order, z)

        rows.append([
            n,
            f"{scan_measured}/{scan_theory}",
            f"{sort_measured}/{sort_theory}",
            f"{search_measured}/{search_theory}",
            f"{output_measured}/{output_theory}",
        ])

        # Shape assertions: measured within small constants of theory.
        assert scan_measured == scan_theory
        assert sort_measured <= 1.5 * sort_theory
        assert search_measured <= search_theory + 1
        assert output_measured <= 2 * output_theory
    return rows


def test_t1_fundamental_bounds(once):
    rows = once(run_experiment)
    report(
        "T1", "fundamental bounds, measured/theory I/Os (B=64, m=16)",
        ["N", "scan", "sort", "search", "output(Z=4B)"],
        rows,
    )

"""F2 — the merge fan-in ablation: log_2 vs log_{M/B} passes.

Paper claim: the whole point of the external-memory sorting bound is the
``log_{M/B}`` base.  An algorithm that merges 2 runs at a time (the RAM
algorithm) pays ``1 + ceil(log_2(N/M))`` passes; fan-in ``m-1`` pays
``1 + ceil(log_{m-1}(N/M))``.

Reproduction: sort the same data with fan-in 2, 4, 8, and the machine
maximum; measured passes (I/O / 2·scan) must match the formula and
decrease with fan-in.
"""

from conftest import report

from repro.core import FileStream, Machine, merge_passes, scan_io
from repro.sort import external_merge_sort
from repro.workloads import uniform_ints

B, M_BLOCKS, N = 64, 16, 120_000  # fan-in up to 15


def run_experiment():
    rows = []
    previous_io = None
    for fan_in in (2, 4, 8, 15):
        machine = Machine(block_size=B, memory_blocks=M_BLOCKS)
        stream = FileStream.from_records(machine, uniform_ints(N, seed=3))
        with machine.measure() as io:
            external_merge_sort(machine, stream, fan_in=fan_in)
        implied_passes = io.total / (2 * scan_io(N, B))
        predicted = merge_passes(N, machine.M, B, fan_in=fan_in)
        rows.append([fan_in, predicted, io.total,
                     f"{implied_passes:.2f}"])
        assert implied_passes <= predicted + 0.01
        if previous_io is not None:
            assert io.total <= previous_io  # more fan-in never hurts
        previous_io = io.total
    assert int(rows[0][2]) > int(rows[-1][2])  # 2-way strictly worse
    return rows


def test_f2_fanout(once):
    rows = once(run_experiment)
    report(
        "F2", f"fan-in ablation, N={N}, B={B}, M={B * M_BLOCKS}",
        ["fan-in", "predicted passes", "measured I/O", "implied passes"],
        rows,
    )

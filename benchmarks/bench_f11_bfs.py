"""F11 — external BFS: Munagala–Ranade vs the fully external naive BFS.

Paper claim: textbook BFS pays ~1 I/O per *edge* consulting its on-disk
visited structure; MR-BFS costs ``O(V + Sort(E))`` by turning frontier
expansion into sorts.  Random graph layouts show the full gap; meshes
(grids) have locality that softens it.

Reproduction: both BFS variants on a random graph and a grid, plus the
semi-external reference (visited set in RAM).
"""

from conftest import report

from repro.core import Machine
from repro.graph import AdjacencyStore, mr_bfs, naive_bfs, semi_external_bfs
from repro.workloads import connected_random_graph, grid_graph

B, M_BLOCKS = 64, 4


def run_one(label, num_vertices, edges):
    machine = Machine(block_size=B, memory_blocks=M_BLOCKS)
    adjacency = AdjacencyStore.from_edges(machine, num_vertices, edges)
    machine.reset_stats()
    with machine.measure() as io_naive:
        naive = naive_bfs(machine, adjacency, 0)
    machine.pool.drop_all()
    with machine.measure() as io_mr:
        mr = mr_bfs(machine, adjacency, 0)
    machine.pool.drop_all()
    with machine.measure() as io_semi:
        semi = semi_external_bfs(machine, adjacency, 0)
    assert naive == mr == semi
    return [
        label, num_vertices, len(edges), io_naive.total, io_mr.total,
        io_semi.total, f"{io_naive.total / io_mr.total:.1f}x",
    ], io_naive.total, io_mr.total


def run_experiment():
    rows = []
    n, edges = connected_random_graph(8_000, avg_degree=8, seed=12)
    random_row, naive_io, mr_io = run_one("random", n, edges)
    rows.append(random_row)
    assert mr_io < naive_io  # MR must win on the random graph

    n, edges = grid_graph(90, 90)
    grid_row, naive_grid, mr_grid = run_one("grid", n, edges)
    rows.append(grid_row)
    # Grid locality shrinks the naive/MR gap relative to the random graph.
    assert naive_grid / mr_grid < naive_io / mr_io
    return rows


def test_f11_bfs(once):
    rows = once(run_experiment)
    report(
        "F11", f"BFS I/Os (B={B}, pool={M_BLOCKS} frames)",
        ["graph", "V", "E", "naive (external)", "MR-BFS", "semi-external",
         "MR speedup"],
        rows,
    )

"""F6 — matrix transpose: blocked tiles vs the RAM loop.

Paper claim: when a ``B × B`` tile fits in memory, transpose costs one
read + one write pass (``2N/B``); the column-by-column RAM loop costs up
to one I/O per element once a column's blocks exceed the pool.

Reproduction: square matrices of growing size; blocked transpose must
stay at exactly ``2N/B`` while the naive loop approaches ``N`` reads.
"""

from conftest import report

from repro.core import Machine
from repro.matrix import ExternalMatrix, transpose_blocked, transpose_naive

B, M_BLOCKS = 16, 32  # B^2 = 256 <= M - B = 496


def run_experiment():
    rows = []
    for side in (32, 64, 128):
        n = side * side
        m1 = Machine(block_size=B, memory_blocks=M_BLOCKS)
        mat1 = ExternalMatrix.from_function(
            m1, side, side, lambda i, j: i * side + j
        )
        m1.reset_stats()
        transpose_blocked(m1, mat1)
        blocked = m1.stats().total

        m2 = Machine(block_size=B, memory_blocks=M_BLOCKS)
        mat2 = ExternalMatrix.from_function(
            m2, side, side, lambda i, j: i * side + j
        )
        m2.reset_stats()
        transpose_naive(m2, mat2)
        naive = m2.stats().total

        rows.append([
            f"{side}x{side}", 2 * n // B, blocked, naive,
            f"{naive / blocked:.1f}x",
        ])
        assert blocked == 2 * n // B  # exactly two passes
    # The gap must widen as the matrix outgrows the pool.
    assert float(rows[-1][4][:-1]) > float(rows[0][4][:-1])
    return rows


def test_f6_transpose(once):
    rows = once(run_experiment)
    report(
        "F6", f"transpose I/Os, B={B}, m={M_BLOCKS}",
        ["matrix", "2N/B", "blocked I/O", "naive I/O", "naive/blocked"],
        rows,
    )

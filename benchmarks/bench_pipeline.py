"""F25 (extension) — pipelined (fused) vs materialized sort boundaries.

Paper claim: TPIE/STXXL-style pipelining feeds a producer's records
straight into run formation and pulls the consumer straight out of the
final merge, so neither the unsorted input nor the sorted output ever
exists as a stream on disk — each fused boundary skips ~2·(N/DB) I/Os
(one write + one read of the data), a constant-factor saving that
compounds across multi-sort algorithms.

Reproduction: the three refactored consumers — sort-merge join,
time-forward processing, and recursive list ranking — each run fused
(`repro.pipeline.Sorter` boundaries) and materialized (stream-to-stream
external sorts), same inputs, same machine; I/O counts are compared.
The machine is sized so the final-merge fan-in covers the run counts
(m = 48): on smaller machines the fused plan degrades toward the
materialized pass structure and the gap narrows to zero, never negative.
"""

import random

from conftest import report

from repro.core import Machine
from repro.graph import (
    list_ranking,
    list_ranking_materialized,
    time_forward_process,
    time_forward_process_materialized,
)
from repro.relational import (
    Table,
    sort_merge_join,
    sort_merge_join_materialized,
)
from repro.workloads import foreign_key_relations, random_linked_list

B, M_BLOCKS = 64, 48  # final merge width must cover the run count


def machine():
    return Machine(block_size=B, memory_blocks=M_BLOCKS)


def random_dag(n, avg_out, seed):
    rng = random.Random(seed)
    edges = set()
    target = min(int(n * avg_out), n * (n - 1) // 2)
    while len(edges) < target:
        u = rng.randrange(n - 1)
        edges.add((u, rng.randrange(u + 1, n)))
    return sorted(edges)


def join_pair(n, fused):
    build, probe = foreign_key_relations(n // 20, n, seed=41)
    m = machine()
    left = Table.from_rows(m, ("k", "b"), build, name="build")
    right = Table.from_rows(m, ("k", "p"), probe, name="probe")
    join = sort_merge_join if fused else sort_merge_join_materialized
    with m.measure() as io:
        result = join(left, right, "k", "k", name="out")
    size = len(result)
    result.delete()
    return io.total, io.total_steps, size


def tfp_pair(n, fused):
    edges = random_dag(n, avg_out=4, seed=42)

    def compute(vertex, incoming):
        return 1 + max(incoming) if incoming else 0

    m = machine()
    run = time_forward_process if fused \
        else time_forward_process_materialized
    with m.measure() as io:
        result = run(m, n, iter(edges), compute)
    return io.total, io.total_steps, len(result)


def listrank_pair(n, fused):
    pairs = random_linked_list(n, seed=43)
    m = machine()
    run = list_ranking if fused else list_ranking_materialized
    with m.measure() as io:
        result = run(m, pairs, seed=44)
    return io.total, io.total_steps, len(result)


def run_experiment():
    rows = []
    for label, pair, n in (
        ("join", join_pair, 12_000),
        ("join", join_pair, 24_000),
        ("time-forward", tfp_pair, 6_000),
        ("time-forward", tfp_pair, 12_000),
        ("list-ranking", listrank_pair, 12_000),
        ("list-ranking", listrank_pair, 24_000),
    ):
        fused_io, fused_steps, fused_out = pair(n, fused=True)
        mat_io, mat_steps, mat_out = pair(n, fused=False)
        assert fused_out == mat_out  # same answer both ways
        assert fused_io < mat_io  # fusion must win on this geometry
        assert fused_steps < mat_steps  # and on wall steps
        saved = 1 - fused_io / mat_io
        rows.append([label, n, fused_io, mat_io,
                     fused_steps, mat_steps, f"{saved:.1%}"])
    return rows


def test_f25_pipelining(once):
    rows = once(run_experiment)
    report(
        "F25", "fused vs materialized sort boundaries (per run)",
        ["consumer", "N", "fused I/O", "mat. I/O",
         "fused steps", "mat. steps", "I/O saved"],
        rows,
    )

"""F1 — external sort I/O scaling in N.

Paper claim: merge sort performs ``2·(N/B)·(1 + ceil(log_{m-1}(N/M)))``
I/Os — piecewise linear in N, stepping up one pass each time the run
count crosses a power of the fan-in.

Reproduction: sweep N at fixed B and M; measured I/Os must equal the
closed form exactly (the simulator is deterministic).
"""

from conftest import report

from repro.core import FileStream, Machine, merge_passes, sort_io
from repro.sort import external_merge_sort
from repro.workloads import uniform_ints

B, M_BLOCKS = 64, 8  # M = 512, fan-in 7


def run_experiment():
    rows = []
    for n in (2_000, 8_000, 32_000, 128_000):
        machine = Machine(block_size=B, memory_blocks=M_BLOCKS)
        stream = FileStream.from_records(machine, uniform_ints(n, seed=2))
        with machine.measure() as io:
            external_merge_sort(machine, stream)
        theory = sort_io(n, machine.M, B)
        rows.append([
            n, merge_passes(n, machine.M, B), io.total, theory,
            f"{io.total / theory:.3f}",
        ])
        # Straggler runs skip their copy pass, so measured can dip just
        # under the closed form but never above it.
        assert 0.9 * theory <= io.total <= theory
    # I/O per record must grow only logarithmically: 64x the data may
    # cost at most ~2x the per-record I/O here.
    per_record_small = int(rows[0][2]) / 2_000
    per_record_large = int(rows[-1][2]) / 128_000
    assert per_record_large <= 2.5 * per_record_small
    return rows


def test_f1_sort_scaling(once):
    rows = once(run_experiment)
    report(
        "F1", "merge sort I/Os vs N (B=64, M=512, fan-in 7)",
        ["N", "passes", "measured I/O", "theory", "ratio"],
        rows,
    )

"""F23 (extension) — external suffix-array construction.

Paper claim: text indexes (suffix trees/arrays) over corpora larger than
memory are built with batched primitives; prefix doubling costs
``O(Sort(N))`` per round and ``O(log N)`` rounds, i.e. I/O grows as
``(N/B)·log N`` — no random access to the text at any point.

Reproduction: texts of growing size on small and large alphabets; I/O
per round stays proportional to Sort(N), and the per-record total cost
grows only logarithmically.
"""

import random

from conftest import report

from repro.core import Machine, sort_io
from repro.text import suffix_array, suffix_array_naive

B, M_BLOCKS = 64, 8


def run_experiment():
    rows = []
    per_record = []
    rng = random.Random(24)
    for n in (2_000, 8_000, 32_000):
        text = "".join(rng.choice("ab") for _ in range(n))
        machine = Machine(block_size=B, memory_blocks=M_BLOCKS)
        with machine.measure() as io:
            result = suffix_array(machine, text)
        if n <= 8_000:
            assert result == suffix_array_naive(text)
        per_record.append(io.total / n)
        rows.append([
            n, io.total, f"{io.total / n:.3f}",
            sort_io(n, machine.M, B),
            f"{io.total / sort_io(n, machine.M, B):.1f}",
        ])
    # Per-suffix cost is a few I/Os (the log-round factor over 2/B per
    # sort pass), far below the ~log2(N) ≈ 15 I/Os per suffix that a
    # random-access comparison build would pay; and it grows only
    # logarithmically across a 16x size sweep.
    assert per_record[-1] < 4.0
    assert per_record[-1] / per_record[0] < 2.0
    return rows


def test_f23_suffix_array(once):
    rows = once(run_experiment)
    report(
        "F23", f"suffix array by prefix doubling (B={B}, M={B * M_BLOCKS})",
        ["N", "total I/O", "per suffix", "Sort(N)", "I/O / Sort(N)"],
        rows,
    )

"""F9 — external priority queue ≍ Sort(N) vs B-tree PQ ``Θ(log_B N)``/op.

Paper claim: N inserts + N delete-mins through a batched external PQ
cost ``O(Sort(N))`` I/Os total — the engine behind time-forward
processing and external Dijkstra — while a search-tree PQ pays a
root-to-leaf walk per operation.

Reproduction: heapsort N random keys through both queues and compare
measured I/Os against the sorting bound.
"""

import random

from conftest import report

from repro.core import Machine, sort_io
from repro.pq import BTreePriorityQueue, ExternalPriorityQueue

B, M_BLOCKS = 64, 16


def run_experiment():
    rows = []
    rng = random.Random(10)
    for n in (5_000, 20_000):
        values = [rng.randrange(10**9) for _ in range(n)]
        m1 = Machine(block_size=B, memory_blocks=M_BLOCKS)
        with ExternalPriorityQueue(m1) as pq:
            with m1.measure() as io_seq:
                for v in values:
                    pq.insert(v)
                drained = [pq.delete_min()[0] for _ in values]
        assert drained == sorted(values)

        m2 = Machine(block_size=B, memory_blocks=M_BLOCKS)
        bpq = BTreePriorityQueue(m2)
        with m2.measure() as io_btree:
            for v in values:
                bpq.insert(v)
            drained = [bpq.delete_min()[0] for _ in values]
        assert drained == sorted(values)

        bound = sort_io(n, m1.M, B)
        rows.append([
            n, bound, io_seq.total, io_btree.total,
            f"{io_btree.total / max(1, io_seq.total):.0f}x",
        ])
        assert io_seq.total <= 3 * bound
        assert io_seq.total * 3 < io_btree.total
    return rows


def test_f9_priority_queue(once):
    rows = once(run_experiment)
    report(
        "F9", f"N inserts + N delete-mins (B={B}, M={B * M_BLOCKS})",
        ["N", "Sort(N) bound", "sequence heap I/O", "B-tree PQ I/O",
         "speedup"],
        rows,
    )

"""F3 — merge sort vs distribution sort.

Paper claim: the two optimal sorting paradigms share the
``Θ((N/B) log_{M/B}(N/B))`` bound; they differ only in constants (and
distribution sort's sensitivity to pivot quality / key skew).

Reproduction: sort uniform and Zipf-skewed data with both; both must be
within a small constant of the closed-form bound, with merge sort ahead
on constants.
"""

from conftest import report

from repro.core import FileStream, Machine, sort_io
from repro.sort import distribution_sort, external_merge_sort
from repro.workloads import uniform_ints, zipf_ints

B, M_BLOCKS, N = 64, 16, 60_000


def run_experiment():
    rows = []
    for label, data in [
        ("uniform", uniform_ints(N, seed=4)),
        ("zipf", zipf_ints(N, vocab=5_000, seed=4)),
    ]:
        m1 = Machine(block_size=B, memory_blocks=M_BLOCKS)
        s1 = FileStream.from_records(m1, data)
        with m1.measure() as io_merge:
            r1 = external_merge_sort(m1, s1)
        m2 = Machine(block_size=B, memory_blocks=M_BLOCKS)
        s2 = FileStream.from_records(m2, data)
        with m2.measure() as io_dist:
            r2 = distribution_sort(m2, s2)
        assert list(r1) == list(r2) == sorted(data)
        bound = sort_io(N, m1.M, B)
        rows.append([
            label, bound, io_merge.total, io_dist.total,
            f"{io_dist.total / io_merge.total:.2f}",
        ])
        # Same asymptotics: both within a small constant of the bound.
        assert io_merge.total <= 1.2 * bound
        assert io_dist.total <= 4 * bound
    return rows


def test_f3_merge_vs_distribution(once):
    rows = once(run_experiment)
    report(
        "F3", f"merge vs distribution sort, N={N}",
        ["keys", "bound", "merge I/O", "distribution I/O", "dist/merge"],
        rows,
    )

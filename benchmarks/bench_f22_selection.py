"""F22 (extension) — selection is strictly easier than sorting.

Paper claim (fundamental-bounds family): order statistics need only
``O(scan(N))`` I/Os — a geometrically shrinking series of partition
passes — while sort-then-index pays the full ``Θ(Sort(N))``.

Reproduction: median extraction across a size sweep; selection's
I/O-per-record must stay flat (~a few per block) while sorting's grows
with the pass count.
"""

from conftest import report

from repro.core import FileStream, Machine, scan_io, sort_io
from repro.sort import external_median, external_merge_sort
from repro.workloads import uniform_ints

B, M_BLOCKS = 64, 8


def run_experiment():
    rows = []
    ratios = []
    for n in (8_000, 32_000, 128_000):
        m1 = Machine(block_size=B, memory_blocks=M_BLOCKS)
        data = uniform_ints(n, seed=23)
        stream = FileStream.from_records(m1, data)
        with m1.measure() as io_select:
            median = external_median(m1, stream)
        assert median == sorted(data)[n // 2]

        m2 = Machine(block_size=B, memory_blocks=M_BLOCKS)
        stream2 = FileStream.from_records(m2, data)
        with m2.measure() as io_sort:
            external_merge_sort(m2, stream2)

        scans = io_select.total / scan_io(n, B)
        ratios.append(scans)
        rows.append([
            n, io_select.total, f"{scans:.2f}",
            io_sort.total, sort_io(n, m2.M, B),
            f"{io_sort.total / io_select.total:.2f}x",
        ])
        assert io_select.total < io_sort.total
    # O(scan): the pass-equivalent stays bounded as N grows 16x.
    assert max(ratios) < 8
    assert max(ratios) - min(ratios) < 3
    return rows


def test_f22_selection(once):
    rows = once(run_experiment)
    report(
        "F22", f"median selection vs full sort (B={B}, M={B * M_BLOCKS})",
        ["N", "selection I/O", "as scans", "sort I/O", "Sort(N)",
         "sort/selection"],
        rows,
    )

"""F20 (extension) — batched dominance counting by distribution sweeping.

Paper claim: the distribution-sweeping template applies to the whole
family of batched orthogonal problems; dominance counting (a.k.a.
2-D rank queries) runs in ``O(Sort(N))`` I/Os versus the all-pairs
``ceil(Q/M)·scan(P)`` baseline.

Reproduction: equal point/query sets of growing size; the sweep must
grow near-linearly and overtake the quadratic baseline.
"""

import random

from conftest import report

from repro.core import Machine
from repro.geometry import dominance_counts, dominance_counts_naive

B, M_BLOCKS = 32, 10


def run_experiment():
    rows = []
    sweep_costs, naive_costs = [], []
    rng = random.Random(21)
    for n in (1_000, 4_000, 16_000):
        points = [(rng.randrange(10**6), rng.randrange(10**6))
                  for _ in range(n)]
        queries = [(rng.randrange(10**6), rng.randrange(10**6))
                   for _ in range(n)]
        m1 = Machine(block_size=B, memory_blocks=M_BLOCKS)
        with m1.measure() as io_sweep:
            first = dominance_counts(m1, points, queries)
        m2 = Machine(block_size=B, memory_blocks=M_BLOCKS)
        with m2.measure() as io_naive:
            second = dominance_counts_naive(m2, points, queries)
        assert first == second
        sweep_costs.append(io_sweep.total)
        naive_costs.append(io_naive.total)
        rows.append([
            n, io_sweep.total, io_naive.total,
            f"{io_naive.total / io_sweep.total:.2f}",
        ])
    naive_growth = naive_costs[-1] / naive_costs[0]
    sweep_growth = sweep_costs[-1] / sweep_costs[0]
    assert naive_growth > 1.5 * sweep_growth   # quadratic vs ~linear
    assert sweep_costs[-1] < naive_costs[-1]   # crossover reached
    return rows


def test_f20_dominance(once):
    rows = once(run_experiment)
    report(
        "F20", f"dominance counting (B={B}, m={M_BLOCKS})",
        ["points=queries", "sweep I/O", "naive I/O", "naive/sweep"],
        rows,
    )

"""F19 (extension) — external Dijkstra: batched PQ vs per-op tree PQ.

Paper claim: shortest paths inherit the priority-queue separation — an
external (sequence-heap) PQ with lazy deletions charges ``O((1/B)·log)``
amortized per queue operation, while a search-tree PQ pays a full
root-to-leaf walk for every insert and extract.

Reproduction: Dijkstra over random weighted graphs with both queues
(identical settled-table handling), plus the semi-external reference.
"""

import heapq
import random

from conftest import report

from repro.core import BlockFile, Machine
from repro.graph import (
    AdjacencyStore,
    external_dijkstra,
    semi_external_dijkstra,
)
from repro.pq import BTreePriorityQueue
from repro.workloads import connected_random_graph

B, M_BLOCKS = 64, 16


def btree_pq_dijkstra(machine, adjacency, source):
    """Dijkstra identical to ``external_dijkstra`` but with the pending
    queue in a B+-tree (one tree walk per queue operation)."""
    table = BlockFile(
        machine,
        (adjacency.num_vertices + machine.B - 1) // machine.B,
        name="sssp/dist",
    )
    for index in range(table.num_blocks):
        table.write_block(index, [None] * machine.B)
    pool = machine.pool

    def settled(vertex):
        return pool.get(table.block_id(vertex // machine.B))[
            vertex % machine.B
        ]

    def settle(vertex, distance):
        block_id = table.block_id(vertex // machine.B)
        pool.get(block_id)[vertex % machine.B] = distance
        pool.mark_dirty(block_id)

    queue = BTreePriorityQueue(machine)
    queue.insert(0, source)
    while len(queue) > 0:
        distance, vertex = queue.delete_min()
        if settled(vertex) is not None:
            continue
        settle(vertex, distance)
        for neighbor, weight in adjacency.neighbors(vertex):
            if settled(neighbor) is None:
                queue.insert(distance + weight, neighbor)
    pool.flush_all()
    result = {}
    position = 0
    for index in range(table.num_blocks):
        for value in table.read_block(index):
            if value is not None and position < adjacency.num_vertices:
                result[position] = value
            position += 1
    table.delete()
    return result


def run_experiment():
    rows = []
    rng = random.Random(20)
    for n in (2_000, 8_000):
        _, edges = connected_random_graph(n, avg_degree=6, seed=20)
        weighted = [(u, v, rng.randint(1, 50)) for u, v in edges]

        m1 = Machine(block_size=B, memory_blocks=M_BLOCKS)
        adj1 = AdjacencyStore.from_weighted_edges(m1, n, weighted)
        m1.reset_stats()
        with m1.measure() as io_seq:
            seq = external_dijkstra(m1, adj1, 0)

        m2 = Machine(block_size=B, memory_blocks=M_BLOCKS)
        adj2 = AdjacencyStore.from_weighted_edges(m2, n, weighted)
        m2.reset_stats()
        with m2.measure() as io_btree:
            via_btree = btree_pq_dijkstra(m2, adj2, 0)

        m3 = Machine(block_size=B, memory_blocks=M_BLOCKS)
        adj3 = AdjacencyStore.from_weighted_edges(m3, n, weighted)
        m3.reset_stats()
        with m3.measure() as io_semi:
            semi = semi_external_dijkstra(m3, adj3, 0)

        assert seq == via_btree == semi
        rows.append([
            n, len(weighted), io_seq.total, io_btree.total, io_semi.total,
            f"{io_btree.total / io_seq.total:.1f}x",
        ])
    assert int(rows[-1][2]) < int(rows[-1][3])
    return rows


def test_f19_sssp(once):
    rows = once(run_experiment)
    report(
        "F19", "Dijkstra I/Os by priority-queue implementation",
        ["V", "E", "sequence-heap PQ", "B-tree PQ", "semi-external",
         "PQ speedup"],
        rows,
    )

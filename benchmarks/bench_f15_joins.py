"""F15 — database joins: sort-merge vs Grace hash vs block nested loop.

Paper claim (the survey's database application): sort-merge join costs
``Sort(R) + Sort(S)``; Grace hash join ``~3(scan R + scan S)``; block
nested loop ``scan R + ceil(|R|/M)·scan S`` — quadratic once the build
side exceeds memory, best-in-class when it fits.

Reproduction: PK/FK joins with a growing build side; the BNL-vs-hash
crossover must appear at ``|R| ≈ M``, and hash must stay within a small
factor of the scan-based lower bound.
"""

from conftest import report

from repro.core import Machine, scan_io
from repro.relational import (
    Table,
    block_nested_loop_join,
    grace_hash_join,
    sort_merge_join,
)
from repro.workloads import foreign_key_relations

B, M_BLOCKS = 64, 8  # M = 512 records


def run_experiment():
    rows = []
    winners = []
    for n_build in (300, 2_000, 8_000):
        build, probe = foreign_key_relations(n_build, 12_000, seed=16)
        costs = {}
        for label, join in [
            ("smj", sort_merge_join),
            ("ghj", grace_hash_join),
            ("bnl", block_nested_loop_join),
        ]:
            machine = Machine(block_size=B, memory_blocks=M_BLOCKS)
            left = Table.from_rows(machine, ("id", "b"), build)
            right = Table.from_rows(machine, ("fk", "p"), probe)
            with machine.measure() as io:
                result = join(left, right, "id", "fk")
            assert len(result) == 12_000
            costs[label] = io.total
        winner = min(costs, key=costs.get)
        winners.append(winner)
        rows.append([
            n_build, costs["smj"], costs["ghj"], costs["bnl"], winner,
        ])
    # BNL wins while the build side fits in M=512; hash wins beyond.
    assert winners[0] == "bnl"
    assert winners[-1] in ("ghj", "smj")
    assert rows[-1][3] > rows[-1][2]  # BNL clearly beaten at 8000
    return rows


def test_f15_joins(once):
    rows = once(run_experiment)
    report(
        "F15", f"join I/Os, probe=12000 rows, M={B * M_BLOCKS} records",
        ["build rows", "sort-merge", "grace hash", "block NL", "winner"],
        rows,
    )

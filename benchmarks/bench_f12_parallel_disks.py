"""F12 — parallel disks: striping divides I/O steps by D.

Paper claim (Parallel Disk Model): with ``D`` independent disks, one
parallel I/O step moves ``D`` blocks, so striped scans and sorts run in
``~1/D`` the steps.  (The survey also explains striping's log-factor
sub-optimality for sorting when ``DB`` is large — visible here as the
pass count not improving, only the per-pass step count.)

Reproduction: scan and sort a fixed dataset over D ∈ {1, 2, 4, 8},
counting parallel I/O steps; speedups must track D.
"""

from conftest import report

from repro.core import Machine, StripedStream, merge_passes
from repro.sort import external_merge_sort
from repro.workloads import uniform_ints

B, M_BLOCKS, N = 64, 32, 40_000


def run_experiment():
    rows = []
    base_scan = base_sort = None
    for num_disks in (1, 2, 4, 8):
        machine = Machine(block_size=B, memory_blocks=M_BLOCKS,
                          num_disks=num_disks)
        data = uniform_ints(N, seed=13)
        stream = StripedStream.from_records(machine, data)
        machine.reset_stats()
        for _ in stream:
            pass
        scan_steps = machine.stats().total_steps

        # Under striping every run reader holds D frames, so the merge
        # fan-in shrinks to ~m/D — the survey's observation that striping
        # forfeits part of the log_{M/B} factor on sorting.
        fan_in = max(2, M_BLOCKS // num_disks - 1)
        machine.reset_stats()
        result = external_merge_sort(
            machine, stream, stream_cls=StripedStream, fan_in=fan_in
        )
        sort_steps = machine.stats().total_steps
        assert len(result) == N

        if num_disks == 1:
            base_scan, base_sort = scan_steps, sort_steps
        rows.append([
            num_disks, fan_in, scan_steps,
            f"{base_scan / scan_steps:.2f}x",
            sort_steps, f"{base_sort / sort_steps:.2f}x",
            merge_passes(N, machine.M, B, fan_in=fan_in),
        ])
    # Striping must deliver near-linear step speedup on scans; sorting
    # gains less because the restricted fan-in adds merge passes.
    assert base_scan / int(rows[-1][2]) > 6      # ~8x on scans
    assert base_sort / int(rows[-1][4]) > 2.5    # parallel but sublinear
    assert rows[-1][6] >= rows[0][6]             # more passes at D=8
    return rows


def test_f12_parallel_disks(once):
    rows = once(run_experiment)
    report(
        "F12", f"parallel I/O steps with D disks (N={N}, B={B})",
        ["D", "fan-in", "scan steps", "speedup", "sort steps", "speedup",
         "passes"],
        rows,
    )

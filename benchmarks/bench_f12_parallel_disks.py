"""F12 — parallel disks: scheduled I/O approaches D blocks per step.

Paper claim (Parallel Disk Model): with ``D`` independent disks one
parallel I/O step moves up to ``D`` blocks, so scans and sorts should run
in ``~1/D`` the steps.  Striping alone delivers this for scans; for
sorting it historically forfeited part of the ``log_{M/B}`` factor
(either a reader holds ``D`` frames and the fan-in shrinks to ``~m/D``,
or reads arrive one block per step).  The runtime's forecasting prefetch
and write-behind (see ``repro.runtime``) recover the full-arity merge:
every configuration is measured against its own step-optimal schedule
``ceil(transfers / D)``.

Reproduction: scan and sort a fixed dataset over D ∈ {1, 2, 4, 8},
counting parallel I/O steps; scan and sort speedups must track D and the
sort must stay within 1.5× of steps-optimal at every D.
"""

from math import ceil

from conftest import report

from repro.core import Machine, StripedStream
from repro.sort import external_merge_sort
from repro.workloads import uniform_ints

B, M_BLOCKS, N = 64, 32, 40_000


def run_experiment():
    rows = []
    base_scan = base_sort = None
    for num_disks in (1, 2, 4, 8):
        machine = Machine(block_size=B, memory_blocks=M_BLOCKS,
                          num_disks=num_disks)
        data = uniform_ints(N, seed=13)
        stream = StripedStream.from_records(machine, data)
        machine.reset_stats()
        for _ in stream:
            pass
        scan_steps = machine.stats().total_steps

        machine.reset_stats()
        result = external_merge_sort(
            machine, stream, stream_cls=StripedStream
        )
        stats = machine.stats()
        sort_steps = stats.total_steps
        optimal = ceil(stats.total / num_disks)
        ratio = sort_steps / optimal
        assert len(result) == N

        if num_disks == 1:
            base_scan, base_sort = scan_steps, sort_steps
        rows.append([
            num_disks, scan_steps, f"{base_scan / scan_steps:.2f}x",
            stats.total, sort_steps, optimal, f"{ratio:.3f}",
            f"{base_sort / sort_steps:.2f}x",
        ])
        # The scheduled sort must track its own step-optimal schedule.
        assert ratio <= 1.5
    # Near-linear step speedup on scans (~8x at D=8) and the sort close
    # behind it — the bound striping alone could not reach.
    assert base_scan / int(rows[-1][1]) > 6
    assert base_sort / int(rows[-1][4]) > 5
    return rows


def test_f12_parallel_disks(once):
    rows = once(run_experiment)
    report(
        "F12", f"parallel I/O steps with D disks (N={N}, B={B})",
        ["D", "scan steps", "speedup", "sort xfers", "sort steps",
         "optimal", "steps/opt", "speedup"],
        rows,
    )

"""F4 — replacement selection run lengths.

Paper claim (Knuth's classic, quoted by the survey): on random input,
replacement selection produces runs of expected length ``2·M`` —
half as many runs as load-sort-store — while sorted input yields a single
run and reverse-sorted input degrades to length ``M``.

Reproduction: form runs with both strategies on random / sorted /
reversed / nearly-sorted inputs and compare run counts and mean lengths.
"""

from conftest import report

from repro.core import FileStream, Machine
from repro.sort import (
    average_run_length,
    form_runs_load_sort,
    form_runs_replacement_selection,
)
from repro.workloads import (
    nearly_sorted_ints,
    reversed_ints,
    sorted_ints,
    uniform_ints,
)

B, M_BLOCKS, N = 64, 16, 40_000


def run_experiment():
    heap = B * M_BLOCKS - 2 * B  # replacement-selection heap capacity
    rows = []
    for label, data in [
        ("random", uniform_ints(N, seed=5)),
        ("sorted", sorted_ints(N)),
        ("reversed", reversed_ints(N)),
        ("nearly sorted", nearly_sorted_ints(N, swaps=200, seed=5)),
    ]:
        m1 = Machine(block_size=B, memory_blocks=M_BLOCKS)
        load_runs = form_runs_load_sort(
            m1, FileStream.from_records(m1, data)
        )
        m2 = Machine(block_size=B, memory_blocks=M_BLOCKS)
        repl_runs = form_runs_replacement_selection(
            m2, FileStream.from_records(m2, data)
        )
        rows.append([
            label, len(load_runs), len(repl_runs),
            f"{average_run_length(repl_runs):.0f}",
            f"{average_run_length(repl_runs) / heap:.2f}",
        ])
    # Shape assertions.
    random_row, sorted_row, reversed_row = rows[0], rows[1], rows[2]
    assert 1.6 <= float(random_row[4]) <= 2.6       # ~2M on random input
    assert sorted_row[2] == 1                        # one run when sorted
    assert 0.9 <= float(reversed_row[4]) <= 1.1     # ~M when reversed
    assert rows[3][2] <= 3                           # nearly sorted: few
    return rows


def test_f4_replacement_selection(once):
    rows = once(run_experiment)
    report(
        "F4",
        f"run formation, N={N}, heap={B * M_BLOCKS - 2 * B} records",
        ["input", "load-sort runs", "RS runs", "RS mean length",
         "length/heap"],
        rows,
    )

"""Shared helpers for the experiment benchmarks.

Every benchmark module regenerates one table/figure of the paper
(see DESIGN.md's per-experiment index): it computes the experiment's
series in deterministic I/O counts, *asserts the qualitative shape* the
survey claims (who wins, slopes, crossovers), prints the series, and
saves it under ``benchmarks/results/`` for EXPERIMENTS.md.

Wall-clock timings from pytest-benchmark are a secondary signal only —
on a simulated disk, I/O counts are the measurements.
"""

import os

import pytest

from repro.core import format_table

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def report(name: str, title: str, headers, rows) -> str:
    """Print an experiment's series and persist it to results/."""
    table = format_table(headers, rows)
    text = f"== {name}: {title} ==\n{table}\n"
    print("\n" + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text)
    return text


def pytest_sessionfinish(session, exitstatus):
    """With REPRO_IO_SANITIZE=1, print the measured-vs-theory constants
    accumulated by @io_bound across the whole benchmark run."""
    from repro.analysis.sanitizer import records, sanitize_enabled, \
        sanitizer_report

    if sanitize_enabled() and records():
        print("\n== sanitizer: measured vs theory (worst call per "
              "algorithm) ==")
        print(sanitizer_report())


@pytest.fixture
def once(benchmark):
    """Run the timed section exactly once (the experiment itself is
    deterministic; repetition only wastes wall-clock)."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return run

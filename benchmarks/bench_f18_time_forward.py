"""F18 (extension) — time-forward processing vs pointer-chasing DAG
evaluation.

Paper claim: evaluating a local function over a DAG (circuit evaluation,
in-degree statistics, longest paths) costs ``O(Sort(E))`` with
time-forward processing — values ride an external priority queue to the
future — versus ~1 random I/O per edge when each vertex fetches its
predecessors' values from a disk-resident value table.

Reproduction: longest-path labelling on random DAGs, both ways.
"""

import random

from conftest import report

from repro.core import BlockFile, Machine
from repro.graph import dag_longest_paths

B, M_BLOCKS = 64, 32  # the PQ needs one frame per live run


def random_dag(n, avg_out, seed):
    rng = random.Random(seed)
    edges = set()
    target = min(int(n * avg_out), n * (n - 1) // 2)
    while len(edges) < target:
        u = rng.randrange(n - 1)
        edges.add((u, rng.randrange(u + 1, n)))
    return sorted(edges)


def pointer_chase_longest_paths(machine, n, edges):
    """Naive baseline: values in a block table; each edge's source value
    is fetched through the (tiny) pool when its target is processed."""
    table = BlockFile(machine, (n + machine.B - 1) // machine.B,
                      name="tfp/naive")
    for index in range(table.num_blocks):
        table.write_block(index, [0] * machine.B)
    incoming = {}
    for u, v in edges:
        incoming.setdefault(v, []).append(u)
    pool = machine.pool

    def read_value(vertex):
        return pool.get(table.block_id(vertex // machine.B))[
            vertex % machine.B
        ]

    result = {}
    for v in range(n):
        sources = incoming.get(v, [])
        value = 1 + max(read_value(u) for u in sources) if sources else 0
        block_id = table.block_id(v // machine.B)
        pool.get(block_id)[v % machine.B] = value
        pool.mark_dirty(block_id)
        result[v] = value
    pool.flush_all()
    table.delete()
    return result


def run_experiment():
    rows = []
    for n in (4_000, 16_000):
        edges = random_dag(n, avg_out=4, seed=19)
        m1 = Machine(block_size=B, memory_blocks=M_BLOCKS)
        with m1.measure() as io_tfp:
            forward = dag_longest_paths(m1, n, edges)
        m2 = Machine(block_size=B, memory_blocks=M_BLOCKS)
        with m2.measure() as io_naive:
            chased = pointer_chase_longest_paths(m2, n, edges)
        assert forward == chased
        rows.append([
            n, len(edges), io_tfp.total, io_naive.total,
            f"{io_naive.total / io_tfp.total:.2f}x",
        ])
    assert int(rows[-1][2]) < int(rows[-1][3])  # TFP wins at scale
    return rows


def test_f18_time_forward(once):
    rows = once(run_experiment)
    report(
        "F18", "DAG longest paths: time-forward vs pointer chasing",
        ["V", "E", "time-forward I/O", "pointer-chase I/O", "speedup"],
        rows,
    )

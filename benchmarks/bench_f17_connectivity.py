"""F17 — connected components: hook & contract vs graph-search baselines.

Paper claim: connectivity is solvable in ``O(Sort(E)·log)`` I/Os by
batched contraction, versus ~1 random I/O per vertex/edge for DFS over a
disk-resident graph; the semi-external union-find scan (valid only while
V fits in memory) shows the other end of the spectrum.

Reproduction: multi-component random graphs; all three must agree, with
the external contraction beating DFS per edge as the graph grows.
"""

from conftest import report

from repro.core import FileStream, Machine
from repro.graph import (
    AdjacencyStore,
    dfs_components,
    external_components,
    semi_external_components,
)
from repro.workloads import components_graph

B, M_BLOCKS = 256, 16


def partition(labels):
    groups = {}
    for vertex, label in labels.items():
        groups.setdefault(label, set()).add(vertex)
    return sorted(map(frozenset, groups.values()), key=min)


def run_experiment():
    rows = []
    for n in (4_000, 16_000):
        num_vertices, edges, truth = components_graph(n, 10, seed=18)
        m1 = Machine(block_size=B, memory_blocks=M_BLOCKS)
        stream = FileStream.from_records(m1, edges)
        with m1.measure() as io_ext:
            ext = external_components(m1, num_vertices, stream)
        m2 = Machine(block_size=B, memory_blocks=4)
        adjacency = AdjacencyStore.from_edges(m2, num_vertices, edges)
        m2.reset_stats()
        with m2.measure() as io_dfs:
            dfs = dfs_components(m2, adjacency)
        m3 = Machine(block_size=B, memory_blocks=max(M_BLOCKS,
                                                     n // B + 2))
        stream3 = FileStream.from_records(m3, edges)
        with m3.measure() as io_semi:
            semi = semi_external_components(m3, num_vertices, stream3)
        assert partition(ext) == partition(dfs) == partition(semi)
        assert partition(ext) == partition(dict(enumerate(truth)))
        rows.append([
            n, len(edges), io_ext.total, io_dfs.total, io_semi.total,
            f"{io_dfs.total / io_ext.total:.2f}",
        ])
    # Contraction must beat per-vertex DFS at the larger size, and the
    # semi-external scan is the cheapest (it cheats on memory).
    assert int(rows[-1][2]) < int(rows[-1][3])
    assert int(rows[-1][4]) < int(rows[-1][2])
    return rows


def test_f17_connectivity(once):
    rows = once(run_experiment)
    report(
        "F17", f"connected components (B={B})",
        ["V", "E", "hook&contract I/O", "DFS I/O", "semi-external I/O",
         "DFS/contract"],
        rows,
    )

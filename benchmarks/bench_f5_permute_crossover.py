"""F5 — the permuting bound ``Θ(min(N, Sort(N)))`` and its crossover.

Paper claim: moving records one at a time costs ~``N`` I/Os; routing them
with a sort costs ``Sort(N)``.  For tiny blocks the naive method wins;
beyond a modest block size, sorting wins — permuting is as hard as
sorting in external memory.

Reproduction: permute N records under a sweep of block sizes and record
both strategies' measured I/Os plus the dispatcher's choice.
"""

from conftest import report

from repro.core import FileStream, Machine, sort_io
from repro.permute import permute, permute_by_sort, permute_naive
from repro.workloads import distinct_ints

N = 20_000


def run_experiment():
    targets = distinct_ints(N, seed=6)
    rows = []
    naive_wins = sort_wins = 0
    for block_size in (1, 2, 8, 64, 256):
        m1 = Machine(block_size=block_size, memory_blocks=8)
        s1 = FileStream.from_records(m1, range(N))
        with m1.measure() as io_naive:
            permute_naive(m1, s1, targets)
        m2 = Machine(block_size=block_size, memory_blocks=8)
        s2 = FileStream.from_records(m2, range(N))
        with m2.measure() as io_sort:
            permute_by_sort(m2, s2, targets)
        winner = "naive" if io_naive.total < io_sort.total else "sort"
        if winner == "naive":
            naive_wins += 1
        else:
            sort_wins += 1
        rows.append([
            block_size, io_naive.total, io_sort.total, winner,
        ])
    # The crossover must exist: naive wins at B=1, sorting at B=256.
    assert rows[0][3] == "naive"
    assert rows[-1][3] == "sort"
    assert naive_wins >= 1 and sort_wins >= 1
    return rows


def test_f5_permute_crossover(once):
    rows = once(run_experiment)
    report(
        "F5", f"permuting crossover, N={N}, m=8",
        ["B", "naive I/O (~2N)", "sort-based I/O", "winner"],
        rows,
    )

"""F21 (extension) — minimum spanning trees: the two external regimes.

Paper claim: with vertices in memory (semi-external), MST is just
``Sort(E)`` + one scan (Kruskal); fully external Borůvka pays
``O(log V)`` rounds of ``O(Sort(E))``.  Both beat per-edge random access,
and the gap between the two regimes is the price of not holding V in RAM.

Reproduction: random weighted graphs; identical forest weights, I/O gap
between the regimes growing with the round count.
"""

import random

from conftest import report

from repro.core import Machine, sort_io
from repro.graph import external_boruvka, semi_external_kruskal
from repro.workloads import connected_random_graph

B = 64


def run_experiment():
    rows = []
    rng = random.Random(22)
    for n in (2_000, 8_000):
        _, edges = connected_random_graph(n, avg_degree=6, seed=22)
        wedges = [(u, v, rng.randint(1, 10**6)) for u, v in edges]

        m1 = Machine(block_size=B, memory_blocks=max(16, n // B + 2))
        with m1.measure() as io_kruskal:
            w_kruskal, chosen_k = semi_external_kruskal(m1, n, wedges)

        m2 = Machine(block_size=B, memory_blocks=16)
        with m2.measure() as io_boruvka:
            w_boruvka, chosen_b = external_boruvka(m2, n, wedges)

        assert w_kruskal == w_boruvka
        assert len(chosen_k) == len(chosen_b) == n - 1
        bound = sort_io(2 * len(wedges), m2.M, B)
        rows.append([
            n, len(wedges), io_kruskal.total, io_boruvka.total,
            f"{io_boruvka.total / io_kruskal.total:.1f}x", bound,
        ])
        # Semi-external Kruskal ~ one sort; Borůvka pays the log-V rounds.
        assert io_kruskal.total < io_boruvka.total
        assert io_kruskal.total <= 2 * sort_io(len(wedges), m1.M, B)
    return rows


def test_f21_mst(once):
    rows = once(run_experiment)
    report(
        "F21", f"minimum spanning forest I/Os (B={B})",
        ["V", "E", "semi-ext Kruskal", "external Borůvka",
         "Borůvka/Kruskal", "Sort(2E) ref"],
        rows,
    )

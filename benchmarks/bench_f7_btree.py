"""F7 — B-tree search ``Θ(log_B N)`` and output-sensitive range queries.

Paper claims: (a) point queries cost the tree height ``~log_B N`` I/Os;
(b) growing ``B`` flattens the tree (the disk-block fan-out is what makes
disk search usable); (c) range queries cost ``log_B N + Z/B``, linear in
the output.

Reproduction: sweep N, B, and Z; measured cold-cache I/Os per query must
track the formulas.
"""

import math

from conftest import report

from repro.core import Machine, output_io, search_io
from repro.search import BPlusTree


def build(n, block_size, memory_blocks=8):
    machine = Machine(block_size=block_size, memory_blocks=memory_blocks)
    tree = BPlusTree.bulk_load(machine, iter((k, k) for k in range(n)))
    return machine, tree


def cold_search_cost(machine, tree, probes):
    total = 0
    for probe in probes:
        machine.pool.drop_all()
        machine.reset_stats()
        tree.get(probe)
        total += machine.stats().reads
    return total / len(probes)


def run_experiment():
    rows = []
    # (a) N sweep at fixed B.
    for n in (4_000, 32_000, 256_000):
        machine, tree = build(n, block_size=64)
        cost = cold_search_cost(machine, tree, [1, n // 2, n - 2])
        rows.append([f"N={n}, B=64", f"{cost:.1f}",
                     search_io(n, tree.order)])
        assert cost <= search_io(n, tree.order) + 1
    # (b) B sweep at fixed N.
    heights = []
    for block_size in (8, 64, 512):
        machine, tree = build(32_000, block_size=block_size)
        cost = cold_search_cost(machine, tree, [7, 16_000, 31_999])
        heights.append(cost)
        rows.append([f"N=32000, B={block_size}", f"{cost:.1f}",
                     search_io(32_000, tree.order)])
    assert heights[0] > heights[-1]  # bigger blocks -> flatter tree
    # (c) Z sweep: range query cost linear in output.
    machine, tree = build(64_000, block_size=64)
    range_costs = []
    for z in (64, 640, 6_400):
        machine.pool.drop_all()
        machine.reset_stats()
        result = list(tree.range_query(1_000, 1_000 + z - 1))
        assert len(result) == z
        cost = machine.stats().reads
        range_costs.append(cost)
        rows.append([f"range Z={z}, B=64", cost,
                     output_io(64_000, tree.order, z)])
    # 100x the output must cost ~100x the leaf reads, not 100x searches.
    assert range_costs[2] < 20 * range_costs[1]
    assert range_costs[2] > 5 * range_costs[1]
    return rows


def test_f7_btree(once):
    rows = once(run_experiment)
    report(
        "F7", "B+-tree query I/Os (cold cache)",
        ["configuration", "measured I/O per query", "theory"],
        rows,
    )

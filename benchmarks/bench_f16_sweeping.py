"""F16 — distribution sweeping: ``O(Sort(N) + Z/B)`` intersections.

Paper claim: batched orthogonal segment intersection (the template
problem for distribution sweeping) runs at sorting cost plus
output-linear reporting, versus the all-pairs baseline whose cost is
``scan(H)·ceil(|H|/M)``-style quadratic.

Reproduction: segment sets with controlled output size; the sweep's
I/Os must grow near-linearly while the naive baseline grows
quadratically, with the expected crossover.
"""

from conftest import report

from repro.core import Machine, sort_io
from repro.geometry import segment_intersections, segment_intersections_naive
from repro.workloads import orthogonal_segments

B, M_BLOCKS = 32, 10


def run_experiment():
    rows = []
    sweep_costs = []
    naive_costs = []
    for n_side in (1_000, 4_000, 16_000):
        horizontals, verticals = orthogonal_segments(
            n_side, n_side, extent=200_000, max_len=150, seed=17
        )
        m1 = Machine(block_size=B, memory_blocks=M_BLOCKS)
        with m1.measure() as io_sweep:
            out = segment_intersections(m1, horizontals, verticals)
        m2 = Machine(block_size=B, memory_blocks=M_BLOCKS)
        with m2.measure() as io_naive:
            out_naive = segment_intersections_naive(
                m2, horizontals, verticals
            )
        assert len(out) == len(out_naive)
        sweep_costs.append(io_sweep.total)
        naive_costs.append(io_naive.total)
        rows.append([
            n_side * 2, len(out), io_sweep.total, io_naive.total,
            f"{io_naive.total / io_sweep.total:.2f}",
        ])
    # Quadratic vs near-linear: naive's growth factor across the sweep
    # must exceed the sweep's by a wide margin, and the sweep must win
    # at the largest size.
    naive_growth = naive_costs[-1] / naive_costs[0]
    sweep_growth = sweep_costs[-1] / sweep_costs[0]
    assert naive_growth > 2 * sweep_growth
    assert sweep_costs[-1] < naive_costs[-1]
    return rows


def test_f16_sweeping(once):
    rows = once(run_experiment)
    report(
        "F16", f"orthogonal segment intersection (B={B}, m={M_BLOCKS})",
        ["segments", "pairs Z", "sweep I/O", "naive I/O", "naive/sweep"],
        rows,
    )

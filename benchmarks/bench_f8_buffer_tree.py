"""F8 — buffer tree: amortized ``O((1/B)·log_{M/B})`` per operation.

Paper claim: attaching memory-sized buffers to a fan-out-``Θ(m)`` tree
drops the amortized cost per update from the B-tree's ``Θ(log_B N)`` to
the per-record sorting cost ``O((1/B)·log_{M/B}(N/B))`` — a factor ≈ B
improvement — at the price of lazy (batched) answers.  Routing N records
through a buffer tree therefore sorts them in ``O(Sort(N))``.

Reproduction: insert N keys into a buffer tree and a B+-tree; compare
total and per-op I/Os; then check buffer-tree sort stays within a small
constant of merge sort.
"""

from conftest import report

from repro.buffer import BufferTree, buffer_tree_sort
from repro.core import FileStream, Machine, sort_io
from repro.search import BPlusTree
from repro.workloads import distinct_ints

B, M_BLOCKS = 64, 16


def run_experiment():
    rows = []
    for n in (10_000, 40_000):
        keys = distinct_ints(n, seed=8)
        m1 = Machine(block_size=B, memory_blocks=M_BLOCKS)
        tree = BufferTree(m1)
        with m1.measure() as io_buffer:
            for k in keys:
                tree.insert(k, k)
            tree.flush()
        m2 = Machine(block_size=B, memory_blocks=M_BLOCKS)
        btree = BPlusTree(m2)
        with m2.measure() as io_btree:
            for k in keys:
                btree.insert(k, k)
        rows.append([
            n, io_buffer.total, f"{io_buffer.total / n:.4f}",
            io_btree.total, f"{io_btree.total / n:.2f}",
            f"{io_btree.total / io_buffer.total:.0f}x",
        ])
        assert io_buffer.total / n < 1.0   # well under one I/O per op
        assert io_buffer.total * 5 < io_btree.total

    # Buffer-tree sorting ~ Sort(N).
    n = 40_000
    m3 = Machine(block_size=B, memory_blocks=M_BLOCKS)
    stream = FileStream.from_records(m3, distinct_ints(n, seed=9))
    with m3.measure() as io_sortish:
        buffer_tree_sort(m3, stream)
    bound = sort_io(n, m3.M, B)
    rows.append([f"sort {n}", io_sortish.total,
                 f"{io_sortish.total / n:.4f}", bound, "-",
                 f"{io_sortish.total / bound:.1f}x bound"])
    assert io_sortish.total < 6 * bound
    return rows


def test_f8_buffer_tree(once):
    rows = once(run_experiment)
    report(
        "F8", f"buffer tree vs B+-tree inserts (B={B}, m={M_BLOCKS})",
        ["N", "buffer-tree I/O", "per op", "B-tree I/O", "per op",
         "speedup"],
        rows,
    )

"""Distribution sweeping: batched orthogonal segment intersection.

The survey's template for batched geometry: sort the objects once by one
coordinate, divide the other coordinate into ``Θ(m)`` strips, and sweep.
Interactions that *completely span* a strip are resolved at the current
level against the strip's active list; the rest are distributed to the
strips' subproblems.  Because every active-list element scanned either
reports an intersection or is lazily deleted, the total cost is
``O(Sort(N) + Z/B)`` I/Os for ``Z`` reported pairs — versus the
``Θ(|H|·|V|)`` pair tests of the naive method.

Segments are closed: a horizontal ``(y, x1, x2)`` and a vertical
``(x, y1, y2)`` intersect iff ``x1 <= x <= x2`` and ``y1 <= y <= y2``.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from ..analysis.sanitizer import io_bound
from ..core.bounds import scan_io, sort_io
from ..core.exceptions import ConfigurationError, MemoryLimitExceeded
from ..core.machine import Machine
from ..core.stream import FileStream
from ..sort.merge import external_merge_sort

Horizontal = Tuple[int, int, int]  # (y, x1, x2)
Vertical = Tuple[int, int, int]    # (x, y1, y2)

_VERTICAL = 0   # sorts before horizontals at equal y: starts are inclusive
_HORIZONTAL = 1


def _event_stream(
    machine: Machine,
    horizontals: Sequence[Horizontal],
    verticals: Sequence[Vertical],
) -> FileStream:
    """Merge both segment sets into one y-sorted event stream.

    Events are ``(y, kind, data)``: vertical events fire at their lower
    endpoint ``y1`` and sort before horizontal events at the same ``y``.
    """
    events = FileStream(machine, name="sweep/events")
    for y, x1, x2 in horizontals:
        if x1 > x2:
            raise ConfigurationError(f"horizontal ({y},{x1},{x2}) has x1 > x2")
        events.append((y, _HORIZONTAL, (y, x1, x2)))
    for x, y1, y2 in verticals:
        if y1 > y2:
            raise ConfigurationError(f"vertical ({x},{y1},{y2}) has y1 > y2")
        events.append((y1, _VERTICAL, (x, y1, y2)))
    events.finalize()
    return external_merge_sort(
        machine, events, key=lambda e: (e[0], e[1]), keep_input=False
    )


def _sweep_theory(machine: Machine, n: int, result: FileStream) -> float:
    """``O(Sort(N) + Z/B)``: one sort-and-scan round per distribution
    level plus the output scan.  Levels follow the sweep's own fan-out
    ``(m-5)/2`` and base capacity, not the merge-sort fan-in."""
    if n <= 0:
        return float(2 * scan_io(len(result), machine.B, machine.D))
    fan = max(2, (machine.m - 5) // 2)
    base = max(1, machine.M - 3 * machine.B)
    levels, size = 1, n
    while size > base:
        size = -(-size // fan)
        levels += 1
    return (levels * (sort_io(n, machine.M, machine.B, machine.D)
                      + 3 * scan_io(n, machine.B, machine.D))
            + 2 * scan_io(len(result), machine.B, machine.D))


@io_bound(_sweep_theory, factor=4.0,
          n=lambda machine, horizontals, verticals: (
              len(horizontals) + len(verticals)))
def segment_intersections(
    machine: Machine,
    horizontals: Sequence[Horizontal],
    verticals: Sequence[Vertical],
) -> FileStream:
    """Report every (horizontal, vertical) intersecting pair.

    Returns a finalized stream of ``(horizontal, vertical)`` tuples (order
    unspecified).  Cost ``O(Sort(N) + Z/B)`` I/Os.
    """
    if machine.m < 9:
        raise ConfigurationError(
            "distribution sweeping needs at least 9 memory blocks "
            "(event reader, output writer, and three strips' active and "
            f"routing buffers); machine has m={machine.m}"
        )
    events = _event_stream(machine, horizontals, verticals)
    output = FileStream(machine, name="sweep/output")
    _sweep(machine, events, output, depth=0)
    events.delete()
    return output.finalize()


def _sweep(machine: Machine, events: FileStream, output: FileStream,
           depth: int) -> None:
    """Recursive distribution sweep over a y-sorted event stream."""
    # Strip writers + event reader + output writer + active-list traffic.
    base_capacity = machine.M - 3 * machine.B
    if len(events) <= base_capacity:
        _sweep_in_memory(machine, events, output)
        return

    # Frame budget: (fan_out + 1) active writers + (fan_out + 1) routing
    # writers + the event reader + the output writer + one transient
    # reader during active-list rewrites.
    fan_out = max(2, (machine.m - 5) // 2)
    pivots = _sample_vertical_pivots(machine, events, fan_out)
    if not pivots:
        # No vertical spread to divide on (e.g. all verticals share one
        # x); fall back to the disk-resident active list.
        _sweep_on_disk(machine, events, output)
        return

    boundaries = pivots  # strip i covers (boundaries[i-1], boundaries[i]]
    strips = len(boundaries) + 1
    active = [FileStream(machine, name=f"sweep/active/{i}")
              for i in range(strips)]
    routed = [FileStream(machine, name=f"sweep/routed/{i}")
              for i in range(strips)]

    def strip_of(x: int) -> int:
        return bisect_left(boundaries, x)

    for y, kind, data in events:
        if kind == _VERTICAL:
            index = strip_of(data[0])
            active[index].append(data)
            routed[index].append((y, kind, data))
        else:
            hy, x1, x2 = data
            first = strip_of(x1)
            last = strip_of(x2)
            # Interior strips are completely spanned in x: every live
            # vertical there intersects; resolve at this level.
            for index in range(first + 1, last):
                _scan_active(machine, active, index, hy, data, output)
            # End strips only partially overlap [x1, x2]: recurse.
            routed[first].append((y, kind, data))
            if last != first:
                routed[last].append((y, kind, data))
    for stream in active:
        stream.finalize().delete()
    for stream in routed:
        stream.finalize()
    output.sync()
    for index, sub_events in enumerate(routed):
        if len(sub_events) > 0:
            if len(sub_events) == len(events):
                # Degenerate split (pathological coordinate skew): avoid
                # infinite recursion.
                _sweep_on_disk(machine, sub_events, output)
            else:
                _sweep(machine, sub_events, output, depth + 1)
        sub_events.delete()


def _scan_active(machine: Machine, active: List[FileStream], index: int,
                 sweep_y: int, horizontal: Horizontal,
                 output: FileStream) -> None:
    """Report all live verticals of a fully spanned strip and lazily drop
    expired ones.  Every scanned record either reports or is deleted, so
    scans are charged to output + one-time deletion."""
    old = active[index].finalize()
    fresh = FileStream(machine, name=f"sweep/active/{index}")
    for vertical in old:
        if vertical[2] >= sweep_y:
            output.append((horizontal, vertical))
            fresh.append(vertical)
        # else: expired; drop it
    old.delete()
    active[index] = fresh


def _sample_vertical_pivots(machine: Machine, events: FileStream,
                            fan_out: int) -> List[int]:
    """Pick up to ``fan_out`` distinct x pivots from vertical events in a
    few probed blocks."""
    probes = min(events.num_blocks, max(1, machine.m - 4))
    step = max(1, events.num_blocks // probes)
    xs: List[int] = []
    with machine.budget.reserve(probes * machine.B):
        for index in list(range(0, events.num_blocks, step))[:probes]:
            for y, kind, data in events.read_block(index):
                if kind == _VERTICAL:
                    xs.append(data[0])
    # em: ok(EM004) ≤ probes·B sampled pivot keys, probed under reserve
    xs = sorted(set(xs))
    if len(xs) <= 1:
        return []
    if len(xs) <= fan_out:
        return xs[:-1]  # last pivot unnecessary (everything above it)
    stride = len(xs) / (fan_out + 1)
    pivots = []
    for i in range(1, fan_out + 1):
        candidate = xs[min(len(xs) - 1, int(i * stride))]
        if not pivots or pivots[-1] != candidate:
            pivots.append(candidate)
    return pivots


def _sweep_in_memory(machine: Machine, events: FileStream,
                     output: FileStream) -> None:
    """Base case: plain sweep with an in-memory active list."""
    if len(events) > machine.M:
        raise MemoryLimitExceeded(
            len(events), machine.budget.in_use, machine.M)
    with machine.budget.reserve(len(events)):
        active_x: List[int] = []          # sorted x of live verticals
        active_segments: List[List[Vertical]] = []
        for y, kind, data in events:
            if kind == _VERTICAL:
                position = bisect_left(active_x, data[0])
                if position < len(active_x) and active_x[position] == data[0]:
                    active_segments[position].append(data)
                else:
                    active_x.insert(position, data[0])
                    active_segments.insert(position, [data])
            else:
                hy, x1, x2 = data
                low = bisect_left(active_x, x1)
                high = bisect_right(active_x, x2)
                for position in range(low, high):
                    live = []
                    for vertical in active_segments[position]:
                        if vertical[2] >= hy:
                            output.append((data, vertical))
                            live.append(vertical)
                    active_segments[position] = live


def _sweep_on_disk(machine: Machine, events: FileStream,
                   output: FileStream) -> None:
    """Fallback sweep holding the active list on disk and scanning it for
    every horizontal.  Correct for any input; used only for degenerate
    splits where distribution cannot make progress."""
    active = FileStream(machine, name="sweep/fallback-active")
    for y, kind, data in events:
        if kind == _VERTICAL:
            active.append(data)
            active.sync()
        else:
            hy, x1, x2 = data
            old = active.finalize()
            fresh = FileStream(machine, name="sweep/fallback-active")
            for vertical in old:
                if vertical[2] < hy:
                    continue  # expired
                if x1 <= vertical[0] <= x2:
                    output.append((data, vertical))
                fresh.append(vertical)
            fresh.sync()
            old.delete()
            active = fresh
    active.finalize().delete()

"""Batched 2-D dominance counting by distribution sweeping.

The second classic instance of the survey's distribution-sweeping
template: given data points and query points, report for every query
``(qx, qy)`` how many data points ``(px, py)`` it dominates
(``px <= qx`` and ``py <= qy``).

Sweep bottom-up in ``y`` over the externally sorted event sequence with
the x-axis divided into ``Θ(m)`` strips.  Every strip keeps one running
counter of the data points it has absorbed; a query adds up the counters
of the strips *entirely to its left* (its answer so far) and descends,
with that partial count attached, into the strip containing its own x —
where the recursion (or an in-memory sweep at the base) resolves the
remainder.  Total cost ``O(Sort(N))`` I/Os, versus the naive
``ceil(Q/M)·scan(P)`` all-pairs baseline.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, List, Sequence, Tuple

from ..analysis.sanitizer import io_bound
from ..core.bounds import merge_passes, scan_io, sort_io
from ..core.exceptions import ConfigurationError, MemoryLimitExceeded
from ..core.machine import Machine
from ..core.stream import FileStream
from ..sort.merge import external_merge_sort

Point = Tuple[int, int]

_POINT = 0   # processed before queries at equal y: dominance is closed
_QUERY = 1


def _dominance_theory(machine: Machine, n: int) -> float:
    """``O(Sort(N))``: one sort-and-scan round per distribution level."""
    if n <= 0:
        return 0.0
    levels = max(1, merge_passes(n, machine.M, machine.B))
    return levels * (sort_io(n, machine.M, machine.B, machine.D)
                     + 3 * scan_io(n, machine.B, machine.D))


# em: ok(EM201) the degenerate-split fallback (_sweep_on_disk) is
# O(N²/B) by design, reached only when sampling finds ≤ 1 distinct x
@io_bound(_dominance_theory, factor=4.0,
          n=lambda machine, points, queries: len(points) + len(queries))
def dominance_counts(
    machine: Machine,
    points: Sequence[Point],
    queries: Sequence[Point],
) -> Dict[int, int]:
    """Return ``{query_index: number of dominated points}``.

    Cost ``O(Sort(P + Q))`` I/Os.
    """
    if machine.m < 8:
        raise ConfigurationError(
            "dominance counting needs at least 8 memory blocks; "
            f"machine has m={machine.m}"
        )
    events = FileStream(machine, name="dom/events")
    for x, y in points:
        events.append((y, _POINT, x, -1, 0))
    for index, (x, y) in enumerate(queries):
        events.append((y, _QUERY, x, index, 0))
    events.finalize()
    ordered = external_merge_sort(
        machine, events, key=lambda e: (e[0], e[1]), keep_input=False
    )
    results: Dict[int, int] = {index: 0 for index in range(len(queries))}
    _sweep(machine, ordered, results)
    ordered.delete()
    return results


def _sweep(machine: Machine, events: FileStream,
           results: Dict[int, int]) -> None:
    base_capacity = machine.M - 2 * machine.B
    if len(events) <= base_capacity:
        _sweep_in_memory(machine, events, results)
        return

    fan_out = max(2, machine.m - 3)
    pivots = _sample_point_pivots(machine, events, fan_out)
    if not pivots:
        _sweep_on_disk(machine, events, results)
        return

    strips = len(pivots) + 1
    routed = [FileStream(machine, name=f"dom/routed/{i}")
              for i in range(strips)]
    absorbed = [0] * strips  # data points seen per strip so far

    def strip_of(x: int) -> int:
        return bisect_left(pivots, x)

    for y, kind, x, index, partial in events:
        strip = strip_of(x)
        if kind == _POINT:
            absorbed[strip] += 1
            routed[strip].append((y, kind, x, index, 0))
        else:
            partial += sum(absorbed[:strip])
            routed[strip].append((y, kind, x, index, partial))
    for stream in routed:
        stream.finalize()
    for sub_events in routed:
        if len(sub_events) > 0:
            if len(sub_events) == len(events):
                # Degenerate split (sample missed the x diversity).
                _sweep_on_disk(machine, sub_events, results)
            else:
                _sweep(machine, sub_events, results)
        sub_events.delete()


def _sample_point_pivots(machine: Machine, events: FileStream,
                         fan_out: int) -> List[int]:
    probes = min(events.num_blocks, max(1, machine.m - 2))
    step = max(1, events.num_blocks // probes)
    xs: List[int] = []
    with machine.budget.reserve(probes * machine.B):
        for block_index in list(range(0, events.num_blocks, step))[:probes]:
            for y, kind, x, index, partial in events.read_block(block_index):
                xs.append(x)
    # em: ok(EM004) ≤ probes·B sampled pivot keys, probed under reserve
    xs = sorted(set(xs))
    if len(xs) <= 1:
        return []
    if len(xs) <= fan_out:
        return xs[:-1]
    stride = len(xs) / (fan_out + 1)
    pivots: List[int] = []
    for i in range(1, fan_out + 1):
        candidate = xs[min(len(xs) - 1, int(i * stride))]
        if not pivots or pivots[-1] != candidate:
            pivots.append(candidate)
    return pivots


def _sweep_in_memory(machine: Machine, events: FileStream,
                     results: Dict[int, int]) -> None:
    """Base case: in-memory sweep with a sorted x list."""
    if len(events) > machine.M:
        raise MemoryLimitExceeded(
            len(events), machine.budget.in_use, machine.M)
    with machine.budget.reserve(len(events)):
        seen_x: List[int] = []
        for y, kind, x, index, partial in events:
            if kind == _POINT:
                position = bisect_left(seen_x, x)
                seen_x.insert(position, x)
            else:
                results[index] += partial + bisect_right(seen_x, x)


def _sweep_on_disk(machine: Machine, events: FileStream,
                   results: Dict[int, int]) -> None:
    """General fallback for degenerate splits: keep the absorbed points
    on disk and scan them per query.  Correct for any input; only used
    when pivot sampling cannot make progress."""
    seen = FileStream(machine, name="dom/fallback-seen")
    for y, kind, x, index, partial in events:
        if kind == _POINT:
            seen.append(x)
        else:
            seen.sync()
            count = partial
            for block_index in range(seen.num_blocks):
                for px in seen.read_block(block_index):
                    if px <= x:
                        count += 1
            results[index] += count
    seen.sync()
    seen.finalize()
    seen.delete()


def dominance_counts_naive(
    machine: Machine,
    points: Sequence[Point],
    queries: Sequence[Point],
) -> Dict[int, int]:
    """All-pairs baseline: load queries a memoryload at a time and scan
    the points once per load."""
    point_stream = FileStream.from_records(machine, list(points),
                                           name="dom/points")
    chunk_capacity = machine.M - 2 * machine.B
    if chunk_capacity < 1:
        raise ConfigurationError("machine memory too small")
    results: Dict[int, int] = {}
    for start in range(0, len(queries), chunk_capacity):
        chunk = list(enumerate(queries))[start:start + chunk_capacity]
        with machine.budget.reserve(len(chunk)):
            for index, _ in chunk:
                results[index] = 0
            for px, py in point_stream:
                for index, (qx, qy) in chunk:
                    if px <= qx and py <= qy:
                        results[index] += 1
    point_stream.delete()
    return results

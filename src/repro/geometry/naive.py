"""Naive all-pairs segment intersection baseline.

Loads the horizontal segments a memoryload at a time and scans the
vertical segments once per load, testing every pair — the block
nested-loop pattern, ``scan(H) + ceil(|H|/M)·scan(V)`` I/Os but
``Θ(|H|·|V|)`` comparisons.  This is what the distribution sweep's
``O(Sort(N) + Z/B)`` replaces.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..core.exceptions import ConfigurationError
from ..core.machine import Machine
from ..core.stream import FileStream
from .sweep import Horizontal, Vertical


def segment_intersections_naive(
    machine: Machine,
    horizontals: Sequence[Horizontal],
    verticals: Sequence[Vertical],
) -> FileStream:
    """Report every (horizontal, vertical) intersecting pair by blockwise
    all-pairs testing."""
    h_stream = FileStream.from_records(machine, list(horizontals),
                                       name="naive/h")
    v_stream = FileStream.from_records(machine, list(verticals),
                                       name="naive/v")
    chunk_capacity = machine.M - 3 * machine.B
    if chunk_capacity < 1:
        raise ConfigurationError(
            "machine memory too small for the naive intersection baseline"
        )
    output = FileStream(machine, name="naive/output")
    reader = iter(h_stream)
    exhausted = False
    while not exhausted:
        with machine.budget.reserve(chunk_capacity):
            chunk: List[Horizontal] = []
            for horizontal in reader:
                chunk.append(horizontal)
                if len(chunk) == chunk_capacity:
                    break
            else:
                exhausted = True
            if not chunk:
                break
            for vertical in v_stream:
                x, y1, y2 = vertical
                for horizontal in chunk:
                    y, x1, x2 = horizontal
                    if x1 <= x <= x2 and y1 <= y <= y2:
                        output.append((horizontal, vertical))
    h_stream.delete()
    v_stream.delete()
    return output.finalize()

"""Naive all-pairs segment intersection baseline.

Loads the horizontal segments a memoryload at a time and scans the
vertical segments once per load, testing every pair — the block
nested-loop pattern, ``scan(H) + ceil(|H|/M)·scan(V)`` I/Os but
``Θ(|H|·|V|)`` comparisons.  This is what the distribution sweep's
``O(Sort(N) + Z/B)`` replaces.
"""

from __future__ import annotations

from typing import Iterable, List

from ..analysis.sanitizer import io_bound, sized
from ..core.bounds import scan_io
from ..core.exceptions import ConfigurationError
from ..core.machine import Machine
from ..core.stream import FileStream
from .sweep import Horizontal, Vertical


def _naive_theory(machine: Machine, n: int, result: FileStream,
                  call: dict) -> float:
    """``2·scan(H) + (1 + ceil(|H|/M'))·scan(V) + scan(Z)``: spooling
    both inputs, then the block nested loop, then the output.  Unsized
    iterable inputs have no static bound (the envelope is skipped)."""
    h = sized(call["horizontals"])
    v = sized(call["verticals"])
    if h < 0 or v < 0:
        return float("inf")
    loads = max(1, -(-h // max(1, machine.M - 3 * machine.B)))
    return (2 * scan_io(h, machine.B, machine.D)
            + (1 + loads) * scan_io(v, machine.B, machine.D)
            + scan_io(len(result), machine.B, machine.D))


@io_bound(_naive_theory, factor=2.0,
          n=lambda machine, horizontals, verticals: max(
              0, sized(horizontals)) + max(0, sized(verticals)))
def segment_intersections_naive(
    machine: Machine,
    horizontals: Iterable[Horizontal],
    verticals: Iterable[Vertical],
) -> FileStream:
    """Report every (horizontal, vertical) intersecting pair by blockwise
    all-pairs testing.

    Both inputs may be arbitrary iterables: they are spooled straight to
    disk through stream writers (one buffered frame each, charged to the
    budget), never materialized in RAM.  Costs ``scan(H) +
    ceil(|H|/M)·scan(V) + Z/B`` I/Os and ``Θ(|H|·|V|)`` comparisons.
    """
    h_stream = FileStream.from_records(machine, horizontals,
                                       name="naive/h")
    v_stream = FileStream.from_records(machine, verticals,
                                       name="naive/v")
    chunk_capacity = machine.M - 3 * machine.B
    if chunk_capacity < 1:
        raise ConfigurationError(
            "machine memory too small for the naive intersection baseline"
        )
    output = FileStream(machine, name="naive/output")
    reader = iter(h_stream)
    exhausted = False
    while not exhausted:
        with machine.budget.reserve(chunk_capacity):
            chunk: List[Horizontal] = []
            for horizontal in reader:
                chunk.append(horizontal)
                if len(chunk) == chunk_capacity:
                    break
            else:
                exhausted = True
            if not chunk:
                break
            for vertical in v_stream:
                x, y1, y2 = vertical
                for horizontal in chunk:
                    y, x1, x2 = horizontal
                    if x1 <= x <= x2 and y1 <= y <= y2:
                        output.append((horizontal, vertical))
    h_stream.delete()
    v_stream.delete()
    return output.finalize()

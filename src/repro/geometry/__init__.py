"""Batched computational geometry: distribution sweeping."""

from .dominance import dominance_counts, dominance_counts_naive
from .naive import segment_intersections_naive
from .sweep import segment_intersections

__all__ = [
    "segment_intersections",
    "segment_intersections_naive",
    "dominance_counts",
    "dominance_counts_naive",
]

"""repro.pipeline — stream fusion: sorters and scanners composed
without touching disk between passes.

The survey's descendants (STXXL, TPIE) converged on *pipelined
streaming*: a sorter whose run formation consumes the producer's
iterator directly and whose final merge is itself an iterator, so
chains like ``scan → map → sort → reduce`` pay only the I/O the sort
fundamentally owes (write runs, read runs) — every elided
stream-materialization boundary saves ``~2·(N/DB)`` transfers.

* :class:`~repro.pipeline.exvector.ExVector` — a budget-accounted
  external vector over :class:`~repro.core.blockfile.BlockFile`
  segments: staged appends, pool-cached random access.
* :class:`~repro.pipeline.sorter.Sorter` — push-runs / pull-merge
  external sort; runs are ordered by (key, pointer) pairs per
  Arge–Thorup so payloads ride for free.
* :class:`~repro.pipeline.api.Pipeline` — lazy fused combinators:
  ``scan/source → map/filter/flat_map/sort → to_stream/reduce/
  merge_join/group_reduce``.
* :func:`~repro.pipeline.steps.pipeline_sort_steps` — the cooperative
  (intent-yielding) variant for the multi-tenant query service.
"""

from .api import Pipeline
from .exvector import ExVector
from .sorter import Sorter
from .steps import pipeline_sort_steps

__all__ = [
    "ExVector",
    "Pipeline",
    "Sorter",
    "pipeline_sort_steps",
]

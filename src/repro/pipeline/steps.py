"""Cooperative pipelined sort: an intent-yielding generator.

The multi-tenant query service (:mod:`repro.service`) runs OLAP jobs as
generators that yield :class:`~repro.core.intents.StreamRead` intents
so a driver can interleave many jobs' waves.  This module is the fused
counterpart of :func:`~repro.sort.steps.merge_sort_steps`: map and
filter stages run *inside* run formation — transformed records go
straight into the sorted runs — so a scan → map/filter → sort job
skips the ``2·(N/DB)`` I/Os the materialized idiom would spend writing
and re-reading the transformed intermediate stream.

The final merge still lands in an output stream (a cooperative job's
result must outlive its generator), so the savings here are the *input*
boundary; the in-process :class:`~repro.pipeline.sorter.Sorter` also
elides the output one.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from ..core.exceptions import ConfigurationError
from ..core.intents import StreamRead
from ..core.machine import Machine
from ..core.stream import FileStream
from ..sort.steps import _merge_group_steps


def pipeline_sort_steps(
    machine: Machine,
    stream: FileStream,
    key: Optional[Callable[[Any], Any]] = None,
    map_fn: Optional[Callable[[Any], Any]] = None,
    filter_fn: Optional[Callable[[Any], bool]] = None,
    budget=None,
    name: str = "coop-pipe",
):
    """Cooperatively sort ``stream`` with fused map/filter stages.

    Yields :class:`~repro.core.intents.StreamRead` intents and expects
    payloads back via ``send``; *returns* the finalized sorted stream
    of ``map_fn``-transformed, ``filter_fn``-surviving records.  The
    transform runs on records as their memoryload is formed — no
    intermediate stream is ever written.  Stable, like the eager sort.

    Args:
        machine: the machine whose disk the stream lives on.
        key: sort key over the *transformed* records.
        map_fn: per-record transform applied before sorting.
        filter_fn: predicate applied before ``map_fn``.
        budget: ledger to reserve working memory from — a tenant's
            :class:`~repro.core.memory.SubBudget` under the service;
            defaults to ``machine.budget``.
        name: label prefix for the intermediate run streams.
    """
    key = key if key is not None else _identity
    budget = budget if budget is not None else machine.budget
    B = machine.block_size
    block_ids = list(stream.block_ids)

    # Run formation: budget-sized memoryloads with the record-wise
    # stages fused in (the memoryload is counted in *input* records, so
    # the reservation covers the worst case of nothing filtered out).
    spare = machine.num_disks - 1
    blocks_per_run = max(
        1, min(machine.m - spare, budget.available // B - spare)
    )
    if blocks_per_run > machine.num_disks:
        blocks_per_run -= blocks_per_run % machine.num_disks
    runs: List[FileStream] = []
    next_runs: List[FileStream] = []
    run: Optional[FileStream] = None
    try:
        for start in range(0, len(block_ids), blocks_per_run):
            wanted = block_ids[start:start + blocks_per_run]
            with budget.reserve(len(wanted) * B):
                payloads = yield StreamRead(wanted)
                chunk = [record for payload in payloads
                         for record in payload]
                if filter_fn is not None:
                    chunk = [record for record in chunk
                             if filter_fn(record)]
                if map_fn is not None:
                    chunk = [map_fn(record) for record in chunk]
                # Arge–Thorup key-pointer ordering, as in the eager
                # sorter: the comparison sort moves (key, index) pairs,
                # records move once through the pointers.
                pairs = [(key(record), index)
                         for index, record in enumerate(chunk)]
                # em: ok(EM004) one memoryload ≤ m·B, reserved
                pairs.sort()
                if pairs:
                    run = FileStream(
                        machine, name=f"{name}/run/{len(runs)}"
                    )
                    for offset in range(0, len(pairs), B):
                        run.append_block(
                            [chunk[index] for _, index
                             in pairs[offset:offset + B]]
                        )
                    runs.append(run.finalize())
                    run = None

        # Merge passes: one cursor frame per run + one output frame.
        level = 0
        while len(runs) > 1:
            level += 1
            arity = min(machine.fan_in, budget.available // B - 1)
            if arity < 2:
                raise ConfigurationError(
                    f"cooperative merge fan-in must be >= 2, got {arity} "
                    f"(budget {budget!r} too small)"
                )
            for start in range(0, len(runs), arity):
                group = runs[start:start + arity]
                if len(group) == 1:
                    next_runs.append(group[0])
                    continue
                merged = yield from _merge_group_steps(
                    machine, group, key, budget,
                    f"{name}/merge-{level}/{len(next_runs)}",
                )
                next_runs.append(merged)
                for member in group:
                    member.delete()
            runs = next_runs
            next_runs = []
    except BaseException:
        # A fault (or driver .throw) mid-sort must not leak blocks.
        if run is not None:
            run.delete()
        for formed in runs + next_runs:
            formed.delete()
        raise

    if not runs:
        return FileStream(machine, name=f"{name}/sorted").finalize()
    return runs[0]


def _identity(record: Any) -> Any:
    return record

"""The pipelined sorter: push runs in, pull the merge out.

:func:`~repro.sort.merge.external_merge_sort` is stream-to-stream: it
scans a finalized input (one read pass) and materializes a sorted
output (one write pass).  When the sort sits between two computation
stages — produce records, sort, consume records — both of those passes
are pure glue: ``2·(N/DB)`` I/Os to park the producer's output on disk
and ``2·(N/DB)`` more to park the sorted result that the consumer will
read exactly once.

:class:`Sorter` removes both boundaries, the STXXL/TPIE pipelining
idiom.  The *push* phase accepts records straight from the producer
(no input stream exists), cuts them into memoryload runs, and — per the
Arge–Thorup RAM-efficient sorting line — orders each run by sorting
``(key, index)`` pairs and emitting records through the index pointers
rather than comparing full records.  The *pull* phase exposes the final
k-way merge as an iterator (forecasting prefetch + galloping block
merge, exactly the machinery of
:func:`~repro.sort.merge.merge_streams`) so the
consumer reads the sorted order without it ever being written.  Total
cost for a fits-in-one-merge sort: ``2·(N/DB)`` I/Os — write the runs,
read them back — against ``6·(N/DB)`` for the materialized chain.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, List, Optional

from ..core.exceptions import ConfigurationError, StreamError
from ..core.machine import Machine
from ..core.records import argsort, take
from ..core.stream import FileStream
from ..runtime.prefetch import ForecastingPrefetcher
from ..sort.merge import BlockMerger, merge_pass, plan_merge_arity
from ..sort.runs import identity

_PUSH = "push"
_PULL = "pull"
_CLOSED = "closed"


class Sorter:
    """An external sort with a push phase and a pull phase.

    Args:
        machine: the machine whose disk holds the runs and whose budget
            every frame is charged to.
        key: sort key; default sorts records directly.
        name: label prefix for run streams and trace phases.
        fan_in: cap on the merge arity of the materialized intermediate
            passes; default lets one sorter use the machine maximum.
        final_fan_in: cap on how many runs survive into the *pulled*
            final merge — the pull phase holds one reader frame per
            surviving run for its whole lifetime, so callers running
            several pulls concurrently (a merge join pulls two) or
            holding large working buffers alongside the pull cap this
            to stay inside ``M``.  May be ``1``: the runs are then
            merged down to a single materialized run and the pull is a
            plain scan — exactly the materialized sort's I/O cost, the
            graceful floor on tiny-memory machines.  Defaults to the
            pass arity.
        headroom: blocks of budget the push phase's run buffer leaves
            unreserved — for writers and readers the producing loop
            acquires lazily *while* pushing (e.g. a side stream written
            from the same scan that feeds the sorter).
        stream_cls: stream class for the run files (pass
            :class:`~repro.core.stream.StripedStream` on multi-disk
            machines).

    Use as a context manager (or call :meth:`close`) so the run files
    and the memoryload reservation are reclaimed even when the producer
    or consumer dies mid-flight::

        with Sorter(machine, key=key) as sorter:
            sorter.consume(producer())          # push phase
            for record in sorter:               # pull phase
                ...

    The sort is stable.  Exhausting the pull iterator deletes the run
    files eagerly; an abandoned pull is reclaimed by :meth:`close`.
    """

    def __init__(
        self,
        machine: Machine,
        key: Optional[Callable[[Any], Any]] = None,
        name: str = "sorter",
        fan_in: Optional[int] = None,
        final_fan_in: Optional[int] = None,
        headroom: int = 0,
        stream_cls=FileStream,
    ):
        if final_fan_in is not None and final_fan_in < 1:
            raise StreamError(
                f"sorter {name!r}: final_fan_in must be >= 1, "
                f"got {final_fan_in}"
            )
        self.machine = machine
        self._key = key or identity
        self._name = name
        self._fan_in = fan_in
        self._final_fan_in = final_fan_in
        self._headroom = headroom
        self._stream_cls = stream_cls
        # Fail fast on a geometrically un-mergeable configuration,
        # before the producer spends a pass pushing records in.  (A
        # *static* check: construction may legitimately happen while
        # another sorter's pull holds most of the free budget, so the
        # dynamic arity is planned at finish() time instead.)
        if fan_in is not None and fan_in < 2:
            raise ConfigurationError(
                f"merge fan-in must be >= 2, got {fan_in}"
            )
        if machine.m - stream_cls.writer_frames(machine) < 2:
            raise ConfigurationError(
                f"sorter {name!r}: machine has {machine.m} frames, too "
                f"few for a binary merge plus its output writer"
            )
        self._buffer: List[Any] = []
        self._capacity = 0          # records reserved for the memoryload
        self._runs: List[FileStream] = []
        self._count = 0
        self._state = _PUSH
        self._pull: Optional[Iterator[Any]] = None
        self._prefetcher: Optional[ForecastingPrefetcher] = None

    # ------------------------------------------------------------------
    # push phase
    # ------------------------------------------------------------------
    def push(self, record: Any) -> None:
        """Accept one record from the producer; spills a sorted run
        every memoryload (``N/M`` write-only passes total)."""
        if self._state != _PUSH:
            raise StreamError(
                f"sorter {self._name!r} is {self._state}; push refused"
            )
        if self._capacity == 0:
            self._reserve_memoryload()
        self._buffer.append(record)
        self._count += 1
        if len(self._buffer) >= self._capacity:
            self._spill()

    def consume(self, records: Iterable[Any]) -> "Sorter":
        """Push every record of ``records``; returns ``self``."""
        for record in records:
            self.push(record)
        return self

    def _reserve_memoryload(self) -> None:
        """Size the run buffer to the budget actually available — an
        upstream reader holding frames shortens the runs instead of
        overflowing ``M`` — leaving write-behind headroom as run
        formation does."""
        machine = self.machine
        if self._stream_cls.writer_frames(machine) >= machine.num_disks:
            spare = 0
        else:
            spare = machine.num_disks - 1
        spare += self._headroom
        blocks = max(
            1, min(machine.m - spare,
                   machine.budget.available // machine.B - spare)
        )
        if blocks > machine.num_disks:
            blocks -= blocks % machine.num_disks
        self._capacity = blocks * machine.B
        machine.budget.acquire(self._capacity)

    def _spill(self) -> None:
        """Sort the buffered memoryload and write it out as one run.

        Arge–Thorup: the comparison sort runs over ``(key, index)``
        pairs — records are only moved once, through the pointers, as
        the run is emitted — so big payloads ride along for free and
        ties stay in input order (stability)."""
        if not self._buffer:
            return
        machine = self.machine
        order = argsort(self._buffer, self._key)
        permuted = take(self._buffer, order)
        run = self._stream_cls(
            machine, name=f"{self._name}/run/{len(self._runs)}"
        )
        try:
            with machine.trace(f"{self._name}-runs"):
                B = machine.B
                for offset in range(0, len(permuted), B):
                    run.append_block(permuted[offset:offset + B])
            self._runs.append(run.finalize())
        except BaseException:
            run.delete()
            raise
        self._buffer = []

    def _release_memoryload(self) -> None:
        if self._capacity:
            self.machine.budget.release(self._capacity)
            self._capacity = 0
        self._buffer = []

    # ------------------------------------------------------------------
    # pull phase
    # ------------------------------------------------------------------
    def finish(self) -> Iterator[Any]:
        """Seal the push phase and return the sorted iterator.

        Runs beyond the planned arity are first merged down with
        ordinary materialized passes; the *final* merge is never
        written — the returned iterator is a galloping
        :class:`~repro.sort.merge.BlockMerger` over the forecasting
        prefetcher's block readers.  Idempotent: repeated
        calls (and ``iter(sorter)``) return the same iterator.
        """
        if self._state == _PULL:
            return self._pull
        if self._state == _CLOSED:
            raise StreamError(f"sorter {self._name!r} is closed")
        self._spill()
        self._release_memoryload()
        self._state = _PULL
        if not self._runs:
            self._pull = iter(())
            return self._pull
        machine = self.machine
        arity = plan_merge_arity(
            machine, len(self._runs), fan_in=self._fan_in,
            stream_cls=self._stream_cls,
        )
        width = arity if self._final_fan_in is None \
            else min(arity, self._final_fan_in)
        level = 0
        while len(self._runs) > width:
            level += 1
            self._runs = merge_pass(
                machine, self._runs, arity, key=self._key,
                stream_cls=self._stream_cls, level=level,
                name_prefix=f"{self._name}/merge",
            )
        # One reader frame per surviving run; opportunistic prefetch
        # pins leave D-1 spares for whatever writer the consumer stages
        # its own output through.
        pin_slack = machine.num_disks - 1
        self._prefetcher = ForecastingPrefetcher(
            machine.runtime, [run.block_ids for run in self._runs],
            key=self._key, pin_slack=pin_slack,
        )
        readers = [self._prefetcher.block_reader(i)
                   for i in range(len(self._runs))]
        self._pull = self._pull_iter(
            BlockMerger(readers, key=self._key)
        )
        return self._pull

    def _pull_iter(self, merger: BlockMerger) -> Iterator[Any]:
        try:
            for record in merger.records():
                yield record
        finally:
            # Exhaustion and generator close both land here: reader
            # frames released, run blocks freed eagerly.
            self._release_pull()

    def _release_pull(self) -> None:
        if self._prefetcher is not None:
            self._prefetcher.close()
            self._prefetcher = None
        for run in self._runs:
            run.delete()
        self._runs = []

    def __iter__(self) -> Iterator[Any]:
        return self.finish()

    def __len__(self) -> int:
        """Records pushed so far."""
        return self._count

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the memoryload reservation, reader frames, and run
        blocks (idempotent).  Safe at any phase."""
        if self._state == _CLOSED:
            return
        self._state = _CLOSED
        self._release_memoryload()
        pull, self._pull = self._pull, None
        if pull is not None and hasattr(pull, "close"):
            pull.close()  # runs the generator's finally -> release
        self._release_pull()

    def __enter__(self) -> "Sorter":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Sorter(name={self._name!r}, records={self._count}, "
            f"runs={len(self._runs)}, {self._state})"
        )

"""Pipeline: fused scan → map/filter → sort → reduce/join chains.

A :class:`Pipeline` is a lazy description of a streaming computation.
Stages are fused: record-wise stages (``map``, ``filter``,
``flat_map``) cost zero I/O — they run inside the producing iterator —
and a ``sort`` stage is a :class:`~repro.pipeline.sorter.Sorter`
boundary whose push phase consumes the upstream iterator directly and
whose pull phase feeds the downstream stage as an iterator.  Relative
to the materialized idiom (write a stream, call
:func:`~repro.sort.merge.external_merge_sort`, scan the result, delete
both), every fused sort boundary skips ``~2·(N/DB)`` I/Os on the way in
and ``~2·(N/DB)`` on the way out.

Terminals either keep the data external (:meth:`to_stream`,
:meth:`to_exvector`) or fold it down (:meth:`reduce`, :meth:`for_each`,
:meth:`group_reduce`); :meth:`merge_join` fuses two pipelines sorted on
their join keys into one joined pipeline without materializing either
side.  Execution is wrapped in a trace phase named after the pipeline,
so per-stage transfers land in ``machine.runtime.tracer`` reports.
"""

from __future__ import annotations

from itertools import chain
from typing import Any, Callable, Iterable, Iterator, List, Optional, Tuple

from ..core.exceptions import ConfigurationError
from ..core.machine import Machine
from ..core.stream import FileStream
from .exvector import ExVector
from .sorter import Sorter


class Pipeline:
    """A lazy, fused chain of streaming stages over one machine.

    Build with :meth:`scan` (external source) or :meth:`source` (any
    iterable, e.g. a generator producing records), chain record-wise
    and sort stages, then run exactly one terminal.  A pipeline
    description is single-shot: terminals consume it.

    Args:
        machine: the machine every stage's I/O and frames are charged
            to.
        name: trace-phase label and prefix for intermediate run files.
    """

    def __init__(self, machine: Machine, name: str = "pipeline"):
        self.machine = machine
        self.name = name
        self._source: Optional[Callable[[], Iterator[Any]]] = None
        self._stages: List[Tuple[str, Any]] = []
        self._sorters: List[Sorter] = []
        self._consumed = False

    # ------------------------------------------------------------------
    # sources
    # ------------------------------------------------------------------
    @classmethod
    def scan(cls, machine: Machine, source: Any,
             name: str = "pipeline") -> "Pipeline":
        """Start a pipeline from an external container (a finalized
        stream, an :class:`~repro.pipeline.exvector.ExVector`, a
        :class:`~repro.relational.table.Table`'s stream...): one read
        I/O per block as records are pulled."""
        pipeline = cls(machine, name=name)
        pipeline._source = lambda: iter(source)
        return pipeline

    @classmethod
    def source(cls, machine: Machine, records: Iterable[Any],
               name: str = "pipeline") -> "Pipeline":
        """Start a pipeline from any iterable producer.  The records
        are consumed lazily by the first stage — nothing is written to
        disk unless a sort or an external terminal needs it."""
        pipeline = cls(machine, name=name)
        pipeline._source = lambda: iter(records)
        return pipeline

    # ------------------------------------------------------------------
    # fused stages
    # ------------------------------------------------------------------
    def map(self, fn: Callable[[Any], Any]) -> "Pipeline":
        """Transform each record; fused, zero I/O."""
        self._stages.append(("map", fn))
        return self

    def filter(self, predicate: Callable[[Any], bool]) -> "Pipeline":
        """Keep records satisfying ``predicate``; fused, zero I/O."""
        self._stages.append(("filter", predicate))
        return self

    def flat_map(
        self, fn: Callable[[Any], Iterable[Any]]
    ) -> "Pipeline":
        """Expand each record into zero or more; fused, zero I/O."""
        self._stages.append(("flat_map", fn))
        return self

    def sort(
        self,
        key: Optional[Callable[[Any], Any]] = None,
        fan_in: Optional[int] = None,
        final_fan_in: Optional[int] = None,
    ) -> "Pipeline":
        """A fused sort boundary: upstream records are pushed straight
        into a :class:`~repro.pipeline.sorter.Sorter` and the merged
        order is pulled straight out — the input is never written and
        the output never materialized, saving ``~4·(N/DB)`` I/Os over
        the stream-to-stream sort.

        ``final_fan_in`` caps the pulled final merge's width (frames
        held for the rest of the pipeline's life); the default leaves
        four frames for downstream stages — another sort's run buffer,
        a merge join's partner, a terminal's writer."""
        self._stages.append(("sort", (key, fan_in, final_fan_in)))
        return self

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def iterate(self) -> Iterator[Any]:
        """Run the pipeline as a plain iterator (the caller is the
        terminal).  Nothing runs — and no frames are taken — until the
        first record is pulled; sorter resources are reclaimed when the
        iterator is exhausted or closed."""
        self._claim()
        return self._drive()

    def _drive(self) -> Iterator[Any]:
        try:
            for record in self._build():
                yield record
        finally:
            self._cleanup()

    def _claim(self) -> None:
        if self._source is None:
            raise ConfigurationError(
                f"pipeline {self.name!r} has no source stage"
            )
        if self._consumed:
            raise ConfigurationError(
                f"pipeline {self.name!r} has already run its terminal"
            )
        self._consumed = True

    def _build(self) -> Iterator[Any]:
        records = self._source()
        for index, (kind, payload) in enumerate(self._stages):
            if kind == "map":
                records = map(payload, records)
            elif kind == "filter":
                records = filter(payload, records)
            elif kind == "flat_map":
                # bind ``payload`` now: a lazy genexp would read the
                # loop variable after later stages rebind it
                records = chain.from_iterable(map(payload, records))
            else:  # sort
                key, fan_in, final_fan_in = payload
                if final_fan_in is None:
                    final_fan_in = max(1, self.machine.m - 4)
                sorter = Sorter(
                    self.machine, key=key,
                    name=f"{self.name}/sort{index}", fan_in=fan_in,
                    final_fan_in=final_fan_in,
                )
                self._sorters.append(sorter)
                sorter.consume(records)
                records = sorter.finish()
        return records

    def _cleanup(self) -> None:
        while self._sorters:
            self._sorters.pop().close()

    # ------------------------------------------------------------------
    # terminals
    # ------------------------------------------------------------------
    def to_stream(self, name: Optional[str] = None,
                  stream_cls=FileStream) -> FileStream:
        """Materialize the result as a finalized stream — the one write
        pass the pipeline actually owes."""
        out = stream_cls(self.machine, name=name or f"{self.name}/out")
        try:
            with self.machine.trace(self.name):
                for record in self.iterate():
                    out.append(record)
            return out.finalize()
        except BaseException:
            out.delete()
            raise

    def to_exvector(self, name: Optional[str] = None) -> ExVector:
        """Materialize the result as a closed
        :class:`~repro.pipeline.exvector.ExVector`."""
        vector = ExVector(self.machine, name=name or f"{self.name}/out")
        try:
            with self.machine.trace(self.name):
                vector.extend(self.iterate())
        except BaseException:
            vector.delete()
            raise
        vector.close()
        return vector

    def reduce(self, fn: Callable[[Any, Any], Any],
               initial: Any) -> Any:
        """Fold all records into one value; zero output I/O."""
        value = initial
        with self.machine.trace(self.name):
            for record in self.iterate():
                value = fn(value, record)
        return value

    def for_each(self, fn: Callable[[Any], None]) -> int:
        """Apply ``fn`` to each record; returns the record count."""
        count = 0
        with self.machine.trace(self.name):
            for record in self.iterate():
                fn(record)
                count += 1
        return count

    def group_reduce(
        self,
        key: Callable[[Any], Any],
        fn: Callable[[Any, Any], Any],
        initial: Callable[[], Any],
    ) -> "Pipeline":
        """Sorted grouping: sort by ``key`` (fused), then fold each
        key's run of records into ``(key, value)`` pairs — external
        GROUP BY at ``Sort(N)`` minus the fused boundaries, with only
        one group's accumulator in memory."""
        # em: ok(EM004) Pipeline.sort is the fused external sort stage
        upstream = self.sort(key=key)

        def fold(records: Iterator[Any]) -> Iterator[Tuple[Any, Any]]:
            current = _SENTINEL
            value = None
            for record in records:
                group = key(record)
                if group != current:
                    if current is not _SENTINEL:
                        yield current, value
                    current = group
                    value = initial()
                value = fn(value, record)
            if current is not _SENTINEL:
                yield current, value

        downstream = Pipeline(self.machine, name=f"{self.name}/groups")
        downstream._source = lambda: fold(upstream.iterate())
        return downstream

    def merge_join(
        self,
        other: "Pipeline",
        left_key: Callable[[Any], Any],
        right_key: Callable[[Any], Any],
    ) -> "Pipeline":
        """Fuse two pipelines into their merge join.

        Both sides must end sorted on their join keys (normally via
        :meth:`sort`); neither side's sorted order is materialized —
        the join merges the two pull iterators directly, buffering only
        the current right-side key group (charged to the budget).
        Yields ``(left_record, right_record)`` pairs as a new pipeline.
        """
        from ..relational.joins import merge_join_iterators

        if other.machine is not self.machine:
            raise ConfigurationError(
                "merge_join requires both pipelines on the same machine"
            )

        def joined() -> Iterator[Tuple[Any, Any]]:
            left = self.iterate()
            right = other.iterate()
            try:
                for pair in merge_join_iterators(
                    self.machine, left, right, left_key, right_key
                ):
                    yield pair
            finally:
                left.close()
                right.close()

        downstream = Pipeline(self.machine, name=f"{self.name}/join")
        downstream._source = joined
        return downstream


_SENTINEL = object()

"""ExVector: a budget-accounted external vector over block files.

The pipelined-streaming descendants of the survey (STXXL, TPIE) pair
their sorters with an external vector — an array-shaped container whose
payload lives on disk, with one staging frame of internal memory for the
append tail and pool-mediated random access.  :class:`ExVector` is that
container for this library: storage is a chain of
:class:`~repro.core.blockfile.BlockFile` segments (allocated
geometrically, so a vector of ``n`` records owns at most ``~2·ceil(n/B)``
blocks), appends stage through one ``B``-record frame and are written
through the runtime's write-behind, and ``vector[i]`` goes through the
machine's buffer pool so hot blocks are cached and dirty ones are
flushed on eviction.

Costs: ``append`` pays one write I/O per filled block (``scan(n)`` for a
full build), sequential iteration pays one read I/O per block, and
random ``get``/``set`` pay at most one pool miss each.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List

from ..core.blockfile import BlockFile
from ..core.exceptions import StreamError
from ..core.machine import Machine
from ..runtime.prefetch import read_ahead

#: cap on one segment's size: keeps a growing vector's over-allocation
#: bounded while amortizing BlockFile construction
_MAX_SEGMENT_BLOCKS = 64


class ExVector:
    """A disk-resident vector of records with amortized O(1/B) I/O
    appends and pool-cached random access.

    Args:
        machine: the owning machine; all frames and transfers are
            charged to it.
        name: debugging label.

    The vector holds one ``B``-record staging frame from the first
    :meth:`append` until :meth:`close` (or :meth:`delete`); use it as a
    context manager so the frame is released even when an error occurs
    mid-build.  Closing keeps the payload on disk and random access
    working (the pool has its own frame accounting); only further
    appends need the frame.
    """

    def __init__(self, machine: Machine, name: str = "exvec"):
        self.machine = machine
        self.name = name
        self._segments: List[BlockFile] = []
        self._block_ids: List[int] = []
        self._tail: List[Any] = []   # records staged for the next block
        self._tail_reserved = False
        self._written_blocks = 0
        self._length = 0
        self._pool_dirty = False
        self._closed = False
        self._deleted = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "ExVector":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def close(self) -> None:
        """Flush the staged tail (as a short block if partial) and
        release the staging frame (idempotent).  The payload stays on
        disk and element access keeps working; appends stop."""
        if self._deleted:
            return
        if self._tail:
            self._flush_tail()
        self._release_tail_frame()
        self._closed = True

    def delete(self) -> None:
        """Release the frame and free every block; the vector becomes
        unusable.  Idempotent."""
        if self._deleted:
            return
        self._tail = []
        self._release_tail_frame()
        # Deferred writes to freed (and maybe reused) block ids would
        # corrupt other containers: drop them, don't flush them.
        self.machine.runtime.writer.discard(self._block_ids)
        for segment in self._segments:
            segment.delete()
        self._segments = []
        self._block_ids = []
        self._deleted = True

    def _release_tail_frame(self) -> None:
        if self._tail_reserved:
            self.machine.budget.release(self.machine.block_size)
            self._tail_reserved = False

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(self, record: Any) -> None:
        """Append one record; one write I/O per ``B`` appends."""
        self._check_alive()
        if self._closed:
            raise StreamError(
                f"vector {self.name!r} is closed to appends"
            )
        if not self._tail_reserved:
            self.machine.budget.acquire(self.machine.block_size)
            self._tail_reserved = True
        self._tail.append(record)
        self._length += 1
        if len(self._tail) == self.machine.block_size:
            self._flush_tail()

    def extend(self, records: Iterable[Any]) -> None:
        """Append every record of ``records`` in order."""
        for record in records:
            self.append(record)

    def _flush_tail(self) -> None:
        while self._written_blocks >= len(self._block_ids):
            self._grow()
        self.machine.runtime.writer.put(
            self._block_ids[self._written_blocks], self._tail
        )
        self._written_blocks += 1
        self._tail = []

    def _grow(self) -> None:
        """Add a segment, doubling capacity up to the segment cap."""
        size = max(1, min(_MAX_SEGMENT_BLOCKS, len(self._block_ids)))
        segment = BlockFile(
            self.machine, size, name=f"{self.name}/seg{len(self._segments)}"
        )
        try:
            self._block_ids.extend(
                segment.block_id(i) for i in range(segment.num_blocks)
            )
        finally:
            # The staging frame BlockFile holds for its direct
            # read/write paths is released immediately: the vector does
            # its own staging and reaches blocks by id through the
            # runtime and pool.
            segment.close()
        self._segments.append(segment)

    # ------------------------------------------------------------------
    # reading / element access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._length

    @property
    def num_blocks(self) -> int:
        """Blocks currently holding records (excluding over-allocation
        and the staged tail)."""
        return self._written_blocks

    def __getitem__(self, index: int) -> Any:
        """Random access through the buffer pool (≤ 1 read I/O)."""
        index = self._check_item_index(index)
        B = self.machine.block_size
        block_index, offset = divmod(index, B)
        if block_index >= self._written_blocks:
            return self._tail[offset]
        return self.machine.pool.get(self._block_ids[block_index])[offset]

    def __setitem__(self, index: int, value: Any) -> None:
        """Random update through the buffer pool (≤ 1 read I/O now, the
        write-back charged on eviction/flush)."""
        index = self._check_item_index(index)
        B = self.machine.block_size
        block_index, offset = divmod(index, B)
        if block_index >= self._written_blocks:
            self._tail[offset] = value
            return
        block_id = self._block_ids[block_index]
        self.machine.pool.get(block_id)[offset] = value
        self.machine.pool.mark_dirty(block_id)
        self._pool_dirty = True

    def _check_item_index(self, index: int) -> int:
        self._check_alive()
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise StreamError(
                f"vector {self.name!r} index {index} out of range "
                f"(len {self._length})"
            )
        return index

    def __iter__(self) -> Iterator[Any]:
        """Sequential scan: one read I/O per block, read-ahead batched
        on multi-disk machines.  Reserves one frame while running."""
        self._check_alive()
        if self._pool_dirty:
            # Updates parked in pool frames must be visible to the
            # runtime's sequential read path.
            self.machine.pool.flush_all()
            self._pool_dirty = False
        return self._reader()

    def _reader(self) -> Iterator[Any]:
        budget = self.machine.budget
        B = self.machine.block_size
        written = self._block_ids[:self._written_blocks]
        tail = list(self._tail)
        budget.acquire(B)
        try:
            for payload in read_ahead(self.machine.runtime, written):
                for record in payload:
                    yield record
            for record in tail:
                yield record
        finally:
            budget.release(B)

    def _check_alive(self) -> None:
        if self._deleted:
            raise StreamError(f"vector {self.name!r} has been deleted")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "deleted" if self._deleted else "live"
        return (
            f"ExVector(name={self.name!r}, len={self._length}, "
            f"blocks={len(self._block_ids)}, {state})"
        )

    @classmethod
    def from_records(
        cls, machine: Machine, records: Iterable[Any], name: str = "exvec"
    ) -> "ExVector":
        """Build a closed vector holding ``records``."""
        vector = cls(machine, name=name)
        try:
            vector.extend(records)
        except BaseException:
            vector.delete()
            raise
        vector.close()
        return vector

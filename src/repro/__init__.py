"""emkit — external-memory algorithms on a simulated I/O-model substrate.

A reproduction of *External Memory Algorithms* (PODS 1998): the
Aggarwal–Vitter I/O model, its fundamental bounds, and the classical
external-memory algorithm toolbox (sorting, searching, buffer trees,
priority queues, permuting, matrices, graphs, batched geometry, and the
database operators built on them), all instrumented with exact I/O counts.

Quick start::

    from repro import Machine, FileStream
    from repro.sort import external_merge_sort
    from repro.core import sort_io

    machine = Machine(block_size=64, memory_blocks=16)
    data = FileStream.from_records(machine, some_records)
    with machine.measure() as io:
        result = external_merge_sort(machine, data)
    print(io.total, "measured vs", sort_io(len(data), machine.M, machine.B))
"""

from .core import (
    DiskArray,
    FileStream,
    IOStats,
    Machine,
    MemoryBudget,
    SimulatedDisk,
    StripedStream,
)

__version__ = "1.0.0"

__all__ = [
    "Machine",
    "FileStream",
    "StripedStream",
    "SimulatedDisk",
    "DiskArray",
    "MemoryBudget",
    "IOStats",
    "__version__",
]

"""Baseline sorters for the fan-out ablation.

A RAM-model algorithm run unchanged in external memory merges two runs at
a time, paying ``Θ(log_2(N/M))`` passes instead of ``Θ(log_{M/B}(N/M))``.
The gap between :func:`two_way_merge_sort` and
:func:`~repro.sort.merge.external_merge_sort` *is* the survey's central
message about sorting.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..analysis.sanitizer import io_bound
from ..core.bounds import sort_io
from ..core.machine import Machine
from ..core.stream import FileStream
from .merge import external_merge_sort


@io_bound(lambda machine, n: sort_io(n, machine.M, machine.B, machine.D,
                                     fan_in=2),
          factor=3.0)
def two_way_merge_sort(
    machine: Machine,
    stream: FileStream,
    key: Optional[Callable[[Any], Any]] = None,
    stream_cls=FileStream,
) -> FileStream:
    """External merge sort restricted to binary merges.

    Identical run formation to the full sorter, but every merge pass
    combines only two runs, so the pass count is
    ``1 + ceil(log_2 ceil(N/M))``.
    """
    return external_merge_sort(
        machine, stream, key=key, fan_in=2, stream_cls=stream_cls
    )

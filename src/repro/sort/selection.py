"""External selection: k-th smallest in ``O(N/B)`` I/Os.

Selection is strictly easier than sorting in the I/O model: a
quickselect that partitions around sampled pivots touches a
geometrically shrinking portion of the data, so the total cost is a
constant number of scans — ``O(scan(N))`` — versus ``Θ(Sort(N))`` for
sort-then-index.  The selection experiment (part of the fundamental
bounds picture) verifies the gap.

``external_select`` is deterministic given the stream (pivots come from
fixed probe positions), so measured I/Os are reproducible.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..analysis.sanitizer import io_bound
from ..core.bounds import scan_io
from ..core.exceptions import ConfigurationError, EMError
from ..core.machine import Machine
from ..core.stream import FileStream
from .runs import identity


def _select_theory(machine: Machine, n: int) -> int:
    """A geometric series of partition scans: each round reads the
    surviving portion and writes it back split in two, and the portions
    shrink geometrically — ``4·scan(N)`` total, still ``O(scan(N))``."""
    return 4 * scan_io(n, machine.B, machine.D)


@io_bound(_select_theory, factor=3.0)


def external_select(
    machine: Machine,
    stream: FileStream,
    k: int,
    key: Optional[Callable[[Any], Any]] = None,
) -> Any:
    """Return the record with the ``k``-th smallest key (0-based; ties
    broken arbitrarily among equal keys).

    Expected cost: a geometric series of partition scans summing to
    ``O(scan(N))`` I/Os and a couple of frames of memory.

    Raises:
        EMError: if ``k`` is out of range.
    """
    key = key or identity
    n = len(stream)
    if not 0 <= k < n:
        raise EMError(f"selection index {k} out of range for {n} records")

    current = stream
    owned = False
    offset = k
    while True:
        n = len(current)
        if n <= machine.M - 2 * machine.B:
            with machine.budget.reserve(n):
                # em: ok(EM001) base case: ≤ M - 2B records, reserved above
                records = sorted(current, key=key)
                result = records[offset]
            if owned:
                current.delete()
            return result

        pivot_key = _sample_median_key(machine, current, key)
        below = FileStream(machine, name="select/below")
        equal_count = 0
        above = FileStream(machine, name="select/above")
        first_equal = None
        for record in current:
            record_key = key(record)
            if record_key < pivot_key:
                below.append(record)
            elif record_key > pivot_key:
                above.append(record)
            else:
                equal_count += 1
                if first_equal is None:
                    first_equal = record
        below.finalize()
        above.finalize()
        if owned:
            current.delete()

        if offset < len(below):
            above.delete()
            current, owned = below, True
        elif offset < len(below) + equal_count:
            below.delete()
            above.delete()
            return first_equal
        else:
            offset -= len(below) + equal_count
            below.delete()
            current, owned = above, True


def _sample_median_key(
    machine: Machine,
    stream: FileStream,
    key: Callable[[Any], Any],
) -> Any:
    """Median key of a few evenly spaced blocks — a pivot that splits off
    a constant fraction with high probability."""
    probes = min(stream.num_blocks, max(1, machine.m - 3))
    step = max(1, stream.num_blocks // probes)
    keys = []
    with machine.budget.reserve(probes * machine.B):
        for index in list(range(0, stream.num_blocks, step))[:probes]:
            keys.extend(key(r) for r in stream.read_block(index))
    keys.sort()  # em: ok(EM004) pivot sample of ≤ (m-3)·B keys, reserved
    return keys[len(keys) // 2]


@io_bound(_select_theory, factor=12.0)
def external_median(
    machine: Machine,
    stream: FileStream,
    key: Optional[Callable[[Any], Any]] = None,
) -> Any:
    """The (lower) median record: ``external_select(N // 2)``, at the
    same ``O(scan(N))`` I/O cost."""
    if len(stream) == 0:
        raise EMError("median of an empty stream")
    return external_select(machine, stream, len(stream) // 2, key=key)

"""k-way merging with a loser tree, and external merge sort.

The merge pass is the second half of external merge sort: up to ``m - 1``
sorted runs are merged in a single pass (one input frame per run plus one
output frame), so the total cost is ``2·(N/B)`` I/Os per pass and the pass
count is ``1 + ceil(log_{m-1} ceil(N/M))`` — the survey's
``Θ((N/B) log_{M/B}(N/B))`` sorting bound.

Two merge engines are provided:

* :class:`LoserTree` — a tournament tree of losers (Knuth 5.4.1) over
  record iterators: ``O(log k)`` comparisons per emitted record.  Used
  where inputs only exist as record iterators (the sequence heap).
* :class:`BlockMerger` — the raw-speed engine :func:`merge_streams`
  uses: it consumes whole block payloads, *gallops* by binary search to
  the longest emitable prefix of the leading run, and moves records as
  slices.  Comparisons drop from one tournament per record to
  ``O(log B)`` per segment, and typed payloads (numpy/``array``) are
  never unpacked into Python objects at all.

Both are stable: ties are broken by ascending source index.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, bisect_right
from collections import deque
from typing import Any, Callable, Dict, Iterable, Iterator, List, \
    Optional, Sequence, Tuple

from ..analysis.sanitizer import io_bound
from ..core.bounds import scan_io, sort_io
from ..core.exceptions import ConfigurationError, StreamError
from ..core.machine import Machine
from ..core.records import BlockBuilder, concat, key_column, key_list, \
    np, take
from ..core.stream import FileStream
from ..runtime.prefetch import ForecastingPrefetcher
from .runs import form_runs_load_sort, form_runs_replacement_selection, identity


class LoserTree:
    """Merge ``k`` sorted iterators into one sorted iterator.

    Args:
        sources: sorted input iterators.
        key: key extraction function (defaults to identity).

    The tree keeps one *current* record per source plus ``k - 1`` internal
    loser slots; memory use is ``O(k)`` records.  Exhausted sources act as
    ``+infinity`` sentinels.  Ties are won by the lower source index,
    making the merge stable when earlier sources hold earlier records.
    """

    def __init__(
        self,
        sources: List[Iterator[Any]],
        key: Optional[Callable[[Any], Any]] = None,
    ):
        if not sources:
            raise ConfigurationError("LoserTree needs at least one source")
        self._key = key or identity
        self._k = len(sources)
        self._sources = sources
        self._records: List[Any] = [None] * self._k
        self._keys: List[Any] = [None] * self._k
        self._exhausted = [False] * self._k
        self._active = 0
        for index in range(self._k):
            self._fetch(index)
            if not self._exhausted[index]:
                self._active += 1
        # Internal loser slots 1..k-1; slot 0 holds the champion.
        self._tree = [-1] * max(1, self._k)
        if self._k == 1:
            self._tree[0] = 0
        else:
            for source in range(self._k):
                self._play_initial(source)

    # ------------------------------------------------------------------
    def _fetch(self, source: int) -> None:
        """Advance ``source`` to its next record (or mark it exhausted)."""
        try:
            record = next(self._sources[source])
        except StopIteration:
            self._records[source] = None
            self._keys[source] = None
            self._exhausted[source] = True
        else:
            self._records[source] = record
            self._keys[source] = self._key(record)

    def _beats(self, a: int, b: int) -> bool:
        """Whether source ``a``'s current record should be emitted before
        source ``b``'s (exhausted sources lose to everything)."""
        if self._exhausted[a]:
            return False
        if self._exhausted[b]:
            return True
        if self._keys[a] != self._keys[b]:
            return self._keys[a] < self._keys[b]
        return a < b  # stability: lower source index wins ties

    def _play_initial(self, source: int) -> None:
        """Insert a leaf during construction: walk up depositing the loser
        in the first empty slot, or the overall champion in slot 0."""
        node = (source + self._k) >> 1
        contender = source
        while node > 0:
            occupant = self._tree[node]
            if occupant == -1:
                self._tree[node] = contender
                return
            if self._beats(occupant, contender):
                self._tree[node], contender = contender, occupant
            node >>= 1
        self._tree[0] = contender

    def _replay(self, source: int) -> None:
        """After refilling ``source``, replay its path to the root."""
        node = (source + self._k) >> 1
        contender = source
        while node > 0:
            occupant = self._tree[node]
            if self._beats(occupant, contender):
                self._tree[node], contender = contender, occupant
            node >>= 1
        self._tree[0] = contender

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Any]:
        return self

    def __next__(self) -> Any:
        if self._active == 0:
            raise StopIteration
        champion = self._tree[0]
        record = self._records[champion]
        self._fetch(champion)
        if self._exhausted[champion]:
            self._active -= 1
        if self._k > 1:
            self._replay(champion)
        return record


class _RunCursor:
    """One input run of a :class:`BlockMerger`: the current block's
    payload, its extracted keys, and the next emit position."""

    __slots__ = ("_blocks", "payload", "keys", "kcol", "pos")

    def __init__(self, blocks: Iterator[Sequence[Any]]):
        self._blocks = blocks
        self.payload: Sequence[Any] = ()
        self.keys: Optional[List[Any]] = []
        self.kcol = None
        self.pos = 0

    def advance(self, key: Callable[[Any], Any],
                want_keys: bool = True) -> bool:
        """Load the run's next non-empty block; False when exhausted.

        ``want_keys`` builds the plain-scalar key list the tournament
        path bisects over (native comparisons even for numpy payloads);
        the batch path passes False and merges on the vectorized
        ``kcol`` column instead."""
        for payload in self._blocks:
            if len(payload):
                self.payload = payload
                self.kcol = key_column(payload, key)
                if want_keys or self.kcol is None:
                    self.keys = key_list(payload, key)
                else:
                    self.keys = None
                self.pos = 0
                return True
        return False

    def tail_keys(self):
        """Keys of the not-yet-emitted remainder of the current block,
        as an ndarray."""
        column = self.kcol
        if column is None:
            # A heterogeneous run slipped an object block into a batch
            # merge: lift its extracted keys into an array so the round
            # stays vectorized.
            column = np.asarray(self.keys)
        return column[self.pos:] if self.pos else column


class BlockMerger:
    """Merge ``k`` sorted *block* iterators by galloping.

    Where :class:`LoserTree` runs one tournament per record, this engine
    binary-searches the leading run's key list for the longest prefix
    that may be emitted before any other run gets a turn, and emits it
    as one ``(payload, start, stop)`` segment.  Sorted stretches cost
    ``O(log B)`` comparisons per *segment* instead of ``O(log k)`` per
    record, and records move as whole slices — a typed payload is never
    unpacked into Python objects.

    Equal keys are emitted in ascending source order (the same
    stability contract as :class:`LoserTree`).

    Args:
        sources: iterators yielding whole sorted block payloads, one
            per run — e.g. ``ForecastingPrefetcher.block_reader`` or
            ``FileStream.iter_blocks``.
        key: key extraction function (defaults to identity; pass
            :func:`repro.core.records.field` to keep column extraction
            vectorized on structured arrays).
    """

    def __init__(
        self,
        sources: List[Iterator[Sequence[Any]]],
        key: Optional[Callable[[Any], Any]] = None,
    ):
        if not sources:
            raise ConfigurationError(
                "BlockMerger needs at least one source"
            )
        self._key = key or identity
        self._cursors = [_RunCursor(source) for source in sources]
        heap: List[Tuple[Any, int]] = []
        for index, cursor in enumerate(self._cursors):
            if cursor.advance(self._key):
                heap.append((cursor.keys[0], index))
        heapq.heapify(heap)
        self._heap = heap
        # Batch mode: every live run exposes a vectorized key column,
        # so rounds of one stable argsort each replace the tournament
        # (random keys make galloping segments degenerate to a record
        # or two, and per-segment Python overhead then dominates).
        # em: ok(EM004) sorts the k ≤ m run indexes, not records
        self._active = sorted(index for _, index in heap)
        self._batch = np is not None and bool(heap) and all(
            self._cursors[index].kcol is not None
            for index in self._active
        )

    def segments(self) -> Iterator[Tuple[Sequence[Any], int, int]]:
        """Yield the merge as maximal ``(payload, start, stop)``
        segments, in key order."""
        heap = self._heap
        cursors = self._cursors
        key = self._key
        while heap:
            _, index = heap[0]
            cursor = cursors[index]
            if len(heap) == 1:
                # Lone survivor: stream its remaining blocks whole.
                heapq.heappop(heap)
                yield cursor.payload, cursor.pos, len(cursor.keys)
                while cursor.advance(key):
                    yield cursor.payload, 0, len(cursor.keys)
                continue
            # The runner-up is the smaller child of the heap root.
            runner_key, runner = heap[1]
            if len(heap) > 2 and heap[2] < heap[1]:
                runner_key, runner = heap[2]
            keys = cursor.keys
            start = cursor.pos
            # Gallop: everything below the runner-up key is safe to
            # emit, and so are ties when this source wins them (lower
            # index).  The root strictly precedes the runner-up, so the
            # segment is never empty.
            if index < runner:
                stop = bisect_right(keys, runner_key, start)
            else:
                stop = bisect_left(keys, runner_key, start)
            yield cursor.payload, start, stop
            if stop < len(keys):
                cursor.pos = stop
                heapq.heapreplace(heap, (keys[stop], index))
            elif cursor.advance(key):
                heapq.heapreplace(heap, (cursor.keys[0], index))
            else:
                heapq.heappop(heap)

    def _rounds(self) -> Iterator[Sequence[Any]]:
        """Batch merge engine: each round emits, as one already-sorted
        chunk, every resident record that provably precedes everything
        still on disk.

        Let ``bound`` be the smallest last-resident key over the live
        runs and ``c`` the lowest such run.  Unseen records of ``c``
        are ``>= bound``; unseen records of any other run exceed their
        own last resident key ``>= bound``.  So the safe set is exactly
        the resident keys ``< bound`` plus the ``== bound`` ties from
        runs up to ``c`` — which includes all of ``c``'s resident
        block, so every round consumes at least one whole block.  One
        stable argsort over the concatenated key columns orders the set
        with the tournament's tie rule (ascending run, then input
        order), record payloads are gathered once per round, and no
        per-record Python runs at all.
        """
        key = self._key
        cursors = self._cursors
        active = list(self._active)
        # Last resident key per cursor as a *native* scalar: the min
        # scan below runs every round, and converting once per refill
        # keeps it out of numpy scalar dispatch.
        last: Dict[int, Any] = {}
        for index in active:
            cursor = cursors[index]
            last[index] = cursor.keys[-1] if cursor.keys is not None \
                else cursor.tail_keys()[-1].item()
        while active:
            if len(active) == 1:
                # Lone survivor: stream its remaining blocks whole.
                cursor = cursors[active[0]]
                payload = cursor.payload
                yield payload[cursor.pos:] if cursor.pos else payload
                while cursor.advance(key, want_keys=False):
                    yield cursor.payload
                return
            tails = []
            vectorized = True
            min_j = 0
            min_last = None
            for j, index in enumerate(active):
                cursor = cursors[index]
                tails.append(cursor.tail_keys())
                if cursor.kcol is None:
                    vectorized = False
                lk = last[index]
                if min_last is None or lk < min_last:
                    min_last = lk
                    min_j = j
            bound = min_last
            all_keys = np.concatenate(tails)
            # Safe set: keys < bound anywhere, plus the == bound ties
            # from runs up to min_j.  Each tail is sorted, so one
            # scalar bisection per run counts its safe prefix — runs
            # below min_j surrender their == bound ties, runs above
            # keep them, and min_j's resident block is consumed whole
            # (every round makes at least one block of progress).  The
            # round size is the sum of those prefixes: the bisections
            # double as both the cut and the cursor advances.
            consumed = []
            cut = 0
            for j, tail in enumerate(tails):
                if j == min_j:
                    count = len(tail)
                else:
                    side = "right" if j < min_j else "left"
                    count = int(tail.searchsorted(bound, side))
                consumed.append(count)
                cut += count
            if vectorized and key is identity \
                    and all_keys.dtype != object:
                # Identity keys: the key column *is* the payload, and
                # every ``== bound`` tie is the same value — so sorting
                # the concatenation and slicing the safe prefix yields
                # byte-identical output to argsort + gather, one value
                # sort instead of an index sort plus a fancy index.
                # em: ok(EM004) sorts the k ≤ m resident tails, not N
                yield np.sort(all_keys)[:cut]
            else:
                # Stable argsort emits ties in concatenation order —
                # runs ascending, then input order: the tournament's
                # tie rule.
                safe = all_keys.argsort(kind="stable")[:cut]
                yield self._gather(
                    active, safe, all_keys if vectorized else None
                )
            survivors = []
            for j, index in enumerate(active):
                cursor = cursors[index]
                cursor.pos += consumed[j]
                if cursor.pos < len(cursor.payload):
                    survivors.append(index)
                elif cursor.advance(key, want_keys=False):
                    last[index] = cursor.tail_keys()[-1].item()
                    survivors.append(index)
            active = survivors

    def _gather(self, active, safe,
                all_keys=None) -> Sequence[Any]:
        """Materialize one round's safe set in merged order: the single
        per-round permutation pass of the key-pointer merge.  Records
        move as one concatenation plus one fancy index — at block
        granularity the extra memcpy is far cheaper than per-part
        masking."""
        cursors = self._cursors
        if all_keys is not None and self._key is identity \
                and isinstance(all_keys, np.ndarray) \
                and all_keys.dtype != object:
            # Identity keys: the key column *is* the payload, so the
            # round's concatenation doubles as the gather source.
            return all_keys[safe]
        parts = []
        for index in active:
            cursor = cursors[index]
            payload = cursor.payload
            parts.append(payload[cursor.pos:] if cursor.pos else payload)
        merged = concat(parts)
        if isinstance(merged, np.ndarray):
            return merged[safe]
        return take(merged, safe)

    def blocks(self, block_size: int) -> Iterator[Sequence[Any]]:
        """Yield the merge re-blocked into exactly-``block_size``-record
        payloads (the last may be short) — fed straight to
        ``append_block``, so output block counts match the seed's
        record-at-a-time writer."""
        pending: deque = deque()
        builder = BlockBuilder(block_size, pending.append)
        if self._batch:
            for chunk in self._rounds():
                builder.push(chunk)
                while pending:
                    yield pending.popleft()
        else:
            for payload, start, stop in self.segments():
                builder.push(payload, start, stop)
                while pending:
                    yield pending.popleft()
        builder.flush()
        while pending:
            yield pending.popleft()

    def records(self) -> Iterator[Any]:
        """Yield the merge record by record — the drop-in replacement
        for iterating a :class:`LoserTree`."""
        if self._batch:
            for chunk in self._rounds():
                yield from chunk
            return
        for payload, start, stop in self.segments():
            if start == 0 and stop == len(payload):
                yield from payload
            else:
                yield from payload[start:stop]


# Transfers, not steps: the envelope is D-independent (see runs.py).
@io_bound(lambda machine, n: 2 * scan_io(n, machine.B),
          factor=2.0,
          n=lambda machine, streams, **kwargs: sum(
              len(stream) for stream in streams))
def merge_streams(
    machine: Machine,
    streams: List[FileStream],
    key: Optional[Callable[[Any], Any]] = None,
    stream_cls=FileStream,
    name: str = "merged",
) -> FileStream:
    """Merge sorted ``streams`` into one sorted stream in a single pass.

    Uses one input frame per stream and one output frame, so
    ``len(streams) + 1`` must not exceed ``m`` (the memory budget raises
    otherwise).  Costs one read per input block and one write per output
    block.

    On a multi-disk machine the input reads are scheduled by the
    *forecasting* prefetcher (the run whose newest block has the smallest
    last key is fetched next, batched one block per idle disk), so the
    merge approaches ``D`` transfers per parallel step instead of one.
    """
    key = key or identity
    if not streams:
        return stream_cls(machine, name=name).finalize()
    for stream in streams:
        if not stream.is_finalized:
            raise StreamError(
                f"stream {stream.name!r} must be finalized before merging"
            )
    output = stream_cls(machine, name=name)
    try:
        # Reserve the output buffer and every reader frame before any
        # opportunistic prefetch pin is taken: pins consume only true
        # spares and can never starve a frame the merge is guaranteed to
        # need.
        output.reserve_writer()
        # A writer that stages its own full stripe leaves the forecast
        # free to pin every spare frame; a one-block writer needs D-1 of
        # them kept available for its write-behind window.
        pin_slack = (
            0 if stream_cls.writer_frames(machine) >= machine.num_disks
            else machine.num_disks - 1)
        prefetcher = ForecastingPrefetcher(
            machine.runtime, [stream.block_ids for stream in streams],
            key=key, pin_slack=pin_slack,
        )
        try:
            readers = [prefetcher.block_reader(i)
                       for i in range(len(streams))]
            merger = BlockMerger(readers, key=key)
            for block in merger.blocks(machine.B):
                output.append_block(block)
        finally:
            prefetcher.close()
        return output.finalize()
    except BaseException:
        # A fault mid-merge (retry exhaustion, checksum mismatch, crash)
        # must not leak the half-written output: drop its blocks and
        # writer frame so recovery can re-run the merge from its inputs.
        output.delete()
        raise


RUN_STRATEGIES = {
    "load": form_runs_load_sort,
    "replacement": form_runs_replacement_selection,
}


def _merge_levels(num_runs: int, arity: int) -> int:
    """Merge passes needed to reduce ``num_runs`` runs at ``arity``."""
    levels = 0
    while num_runs > 1:
        num_runs = -(-num_runs // arity)
        levels += 1
    return levels


def plan_merge_arity(
    machine: Machine,
    num_runs: int = 0,
    fan_in: Optional[int] = None,
    stream_cls=FileStream,
) -> int:
    """The merge arity :func:`external_merge_sort` will use.

    One input frame per run plus the output writer's frames (1, or ``D``
    for a striped writer) must fit in the *available* budget: callers
    holding resident frames (an open block file) lower the arity instead
    of overflowing ``M``.  On a multi-disk machine the arity additionally
    shrinks toward prefetch/write-behind headroom — but never enough to
    add a merge pass over ``num_runs`` runs, since an extra pass costs a
    whole scan and headroom only steps.

    Deterministic given the same free budget, so a resumed
    checkpointed sort recomputes the same pass structure it crashed in.
    Raises :class:`~repro.core.exceptions.ConfigurationError` when even
    a binary merge cannot fit.
    """
    frames = machine.budget.available // machine.B
    writer_frames = stream_cls.writer_frames(machine)
    if fan_in is not None:
        arity = fan_in
    else:
        arity = min(machine.fan_in, frames - writer_frames)
    if arity < 2:
        raise ConfigurationError(f"merge fan-in must be >= 2, got {arity}")
    if fan_in is None and machine.num_disks > 1 and num_runs > 1:
        target = max(2, min(arity,
                            frames - writer_frames
                            - 2 * (machine.num_disks - 1)))
        if target < arity:
            passes = _merge_levels(num_runs, arity)
            low, high = 2, arity
            while low < high:
                mid = (low + high) // 2
                if _merge_levels(num_runs, mid) <= passes:
                    high = mid
                else:
                    low = mid + 1
            arity = max(target, low)
    return arity


def merge_pass(
    machine: Machine,
    runs: List[FileStream],
    arity: int,
    key: Optional[Callable[[Any], Any]] = None,
    stream_cls=FileStream,
    level: int = 1,
    name_prefix: str = "merge",
    delete_inputs: bool = True,
    out: Optional[List[FileStream]] = None,
) -> List[FileStream]:
    """One merge pass: consecutive groups of ``arity`` runs are each
    merged into a single run.

    With ``delete_inputs`` (the default), every group's inputs are
    deleted the moment its merge lands, keeping peak disk usage
    ``O(N/B)`` blocks.  The checkpointed sort passes ``False`` and
    deletes inputs only after the pass's manifest commits, so a pass
    that dies mid-merge can be re-run from its surviving inputs.  A
    lone straggler run is carried forward untouched (it then appears in
    both the input and output lists — don't double-delete it).

    ``out``, when given, is used as the output list and filled
    incrementally, so a caller can see which group outputs already
    landed when the pass dies mid-merge and clean them up.
    """
    next_runs: List[FileStream] = [] if out is None else out
    with machine.trace(f"{name_prefix}-pass-{level}"):
        for start in range(0, len(runs), arity):
            group = runs[start:start + arity]
            if len(group) == 1:
                # A lone straggler run needs no merging; carry it
                # forward without spending a copy pass on it.
                next_runs.append(group[0])
                continue
            merged = merge_streams(
                machine,
                group,
                key=key,
                stream_cls=stream_cls,
                name=f"{name_prefix}/{level}/{len(next_runs)}",
            )
            if delete_inputs:
                for run in group:
                    run.delete()
            next_runs.append(merged)
    return next_runs


def _merge_sort_theory(machine: Machine, n: int, call: dict) -> int:
    """``Sort(N)`` transfers with the call's actual merge arity
    (``fan_in=2`` reproduces the binary baseline's extra passes).
    D-independent: the sanitizer counts transfers, not steps."""
    fan_in = call.get("fan_in") or 0
    return sort_io(n, machine.M, machine.B, fan_in=fan_in)


@io_bound(_merge_sort_theory, factor=3.0)
def external_merge_sort(
    machine: Machine,
    stream: FileStream,
    key: Optional[Callable[[Any], Any]] = None,
    fan_in: Optional[int] = None,
    run_strategy: str = "load",
    stream_cls=FileStream,
    keep_input: bool = True,
) -> FileStream:
    """Sort ``stream`` by ``key`` using external merge sort.

    Args:
        machine: the external-memory machine to charge I/O to.
        key: key function; default sorts records directly.
        fan_in: merge arity; defaults to the machine maximum ``m - 1``
            (less a little headroom for prefetch and write-behind frames
            on multi-disk machines).  Lower values (e.g. 2) reproduce the
            naive baseline with more passes.
        run_strategy: ``"load"`` (memoryload runs of ``M``) or
            ``"replacement"`` (replacement selection, ~``2M`` runs).
        stream_cls: stream class for intermediates and output (pass
            :class:`~repro.core.stream.StripedStream` on multi-disk
            machines).
        keep_input: when false, the input stream's blocks are freed as soon
            as runs are formed.

    Returns a finalized sorted stream.  Intermediate runs are deleted, so
    peak disk usage stays ``O(N/B)`` blocks.  The sort is stable.
    """
    key = key or identity
    if run_strategy not in RUN_STRATEGIES:
        raise ConfigurationError(
            f"unknown run strategy {run_strategy!r}; "
            # em: ok(EM004) two-entry strategy-name dict in an error message
            f"choose from {sorted(RUN_STRATEGIES)}"
        )
    # Validate before forming runs: an un-mergeable configuration should
    # fail fast rather than after a full run-formation scan.
    plan_merge_arity(machine, 0, fan_in=fan_in, stream_cls=stream_cls)

    runs = RUN_STRATEGIES[run_strategy](
        machine, stream, key=key, stream_cls=stream_cls
    )
    if not keep_input:
        stream.delete()
    if not runs:
        return stream_cls(machine, name="sorted").finalize()

    arity = plan_merge_arity(
        machine, len(runs), fan_in=fan_in, stream_cls=stream_cls
    )

    level = 0
    while len(runs) > 1:
        level += 1
        runs = merge_pass(
            machine, runs, arity,
            key=key, stream_cls=stream_cls, level=level,
        )
    return runs[0]

"""External distribution (bucket) sort.

The survey's second optimal sorting paradigm: instead of merging sorted
runs, *partition* the input around ``k`` pivots into buckets of disjoint
key ranges, recurse on each bucket, and concatenate.  With fan-out
``Θ(m)`` the recursion depth is ``Θ(log_m(N/M))``, matching the merge-sort
bound up to constants (each level pays one read and one write pass, plus a
cheap pivot-sampling probe).

Implementation notes:

* Pivots come from *cluster sampling*: a handful of evenly spaced blocks
  are read and their keys pooled, costing ``O(k)`` I/Os per level instead
  of a full pass.
* Every distinct pivot value gets a dedicated *equality bucket*.  An
  equality bucket needs no further sorting, which both guarantees
  termination under heavy key skew (any sampled key strictly shrinks the
  other buckets) and keeps the sort stable.
* The recursion is an explicit in-order worklist, so bucket depth is
  bounded by disk, not the Python stack.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..analysis.sanitizer import io_bound
from ..core.bounds import sort_io
from ..core.exceptions import ConfigurationError
from ..core.machine import Machine
from ..core.records import BlockBuilder, argsort, key_column, np, take
from ..core.stream import FileStream
from .runs import identity


def _sample_pivots(
    machine: Machine,
    stream: FileStream,
    key: Callable[[Any], Any],
    fan_out: int,
    oversample: int,
) -> List[Any]:
    """Choose up to ``fan_out`` distinct pivot keys by reading
    ``oversample`` evenly spaced blocks of ``stream``."""
    num_blocks = stream.num_blocks
    # One frame is held by the sorter's open output stream.
    probes = min(num_blocks, max(1, oversample), machine.m - 2)
    step = max(1, num_blocks // probes)
    probe_indices = list(range(0, num_blocks, step))[:probes]
    keys: List[Any] = []
    with machine.trace("pivot-sample"), \
            machine.budget.reserve(len(probe_indices) * machine.B):
        for index in probe_indices:
            keys.extend(key(record) for record in stream.read_block(index))
    keys.sort()  # em: ok(EM004) pivot sample of ≤ (m-2)·B keys, reserved
    distinct: List[Any] = []
    for k in keys:
        if not distinct or distinct[-1] != k:
            distinct.append(k)
    if len(distinct) <= fan_out:
        return distinct
    # Evenly spaced quantiles of the distinct sampled keys.
    step = len(distinct) / (fan_out + 1)
    pivots = []
    for i in range(1, fan_out + 1):
        candidate = distinct[min(len(distinct) - 1, int(i * step))]
        if not pivots or pivots[-1] != candidate:
            pivots.append(candidate)
    return pivots


def _scatter_block(
    payload: Sequence[Any],
    key: Callable[[Any], Any],
    pivots: List[Any],
    builders: List[BlockBuilder],
) -> None:
    """Route one block's records to their bucket builders, preserving
    input order within each bucket (stability).

    Slot ``2i`` holds keys strictly between pivot ``i-1`` and pivot
    ``i``; slot ``2i+1`` is pivot ``i``'s equality bucket.  On a typed
    payload with a vectorizable key the whole block is routed by one
    ``searchsorted`` plus one stable argsort of the slot numbers, and
    records move to their builders as contiguous slices.
    """
    column = key_column(payload, key)
    if column is not None and pivots:
        pivot_arr = np.asarray(pivots)
        positions = np.searchsorted(pivot_arr, column, side="left")
        hit = positions < len(pivots)
        equal = np.zeros(len(column), dtype=bool)
        if hit.any():
            equal[hit] = pivot_arr[positions[hit]] == column[hit]
        slots = 2 * positions + equal
        order = np.argsort(slots, kind="stable")
        sorted_slots = slots[order]
        permuted = payload[order]
        cuts = np.flatnonzero(np.diff(sorted_slots)) + 1
        start = 0
        for stop in list(cuts) + [len(sorted_slots)]:
            builders[int(sorted_slots[start])].push(
                permuted, start, stop
            )
            start = stop
        return
    groups: Dict[int, List[int]] = {}
    for position, record in enumerate(payload):
        record_key = key(record)
        index = bisect_left(pivots, record_key)
        if index < len(pivots) and pivots[index] == record_key:
            slot = 2 * index + 1
        else:
            slot = 2 * index
        groups.setdefault(slot, []).append(position)
    for slot, positions_list in groups.items():
        builders[slot].push(take(payload, positions_list))


def _partition(
    machine: Machine,
    stream: FileStream,
    key: Callable[[Any], Any],
    pivots: List[Any],
    stream_cls,
) -> List[Tuple[FileStream, bool]]:
    """Split ``stream`` into ``2·len(pivots) + 1`` buckets.

    Bucket ``2i`` holds keys strictly between pivot ``i-1`` and pivot
    ``i``; bucket ``2i+1`` is the equality bucket of pivot ``i``.  Returns
    ``(bucket, is_equality)`` pairs in key order, dropping empty buckets.

    The model's memory bound is enforced up front: every bucket reserves
    its output frame(s) for the whole pass (the seed acquired them
    lazily per non-empty bucket; the fan-out cap already budgets for all
    of them).
    """
    buckets = [
        stream_cls(machine, name=f"bucket/{j}")
        for j in range(2 * len(pivots) + 1)
    ]
    try:
        for bucket in buckets:
            bucket.reserve_writer()
        builders = [
            BlockBuilder(machine.B, bucket.append_block)
            for bucket in buckets
        ]
        with machine.trace("partition"):
            for payload in stream.iter_blocks():
                _scatter_block(payload, key, pivots, builders)
            result = []
            for j, bucket in enumerate(buckets):
                builders[j].flush()
                bucket.finalize()
                if len(bucket) == 0:
                    bucket.delete()
                else:
                    result.append((bucket, j % 2 == 1))
        return result
    except BaseException:
        # A fault mid-partition must not leak bucket blocks or their
        # writer reservations; the caller retries from ``stream``.
        for bucket in buckets:
            bucket.delete()
        raise


# Each level pays a read pass AND a write pass over its buckets, so the
# theory charges 2·Sort(N); the envelope factor halves to compensate.
@io_bound(lambda machine, n: 2 * sort_io(n, machine.M, machine.B,
                                         machine.D),
          factor=3.0)
def distribution_sort(
    machine: Machine,
    stream: FileStream,
    key: Optional[Callable[[Any], Any]] = None,
    fan_out: Optional[int] = None,
    oversample: int = 4,
    stream_cls=FileStream,
) -> FileStream:
    """Sort ``stream`` by ``key`` using external distribution sort.

    Args:
        machine: the external-memory machine to charge I/O to.
        key: key function; default sorts records directly.
        fan_out: number of pivots per level.  The default is the memory
            maximum ``(m - 2) // 2`` (each pivot needs a range bucket and
            an equality bucket, each holding one output frame, plus an
            input frame).
        oversample: blocks probed per level for pivot sampling.
        stream_cls: stream class for intermediates and output.

    Returns a finalized sorted stream.  The sort is stable.
    """
    key = key or identity
    if machine.m < 6:
        raise ConfigurationError(
            "distribution sort needs at least 6 memory blocks (input frame, "
            "final-output frame, and frames for one pivot's three buckets); "
            f"machine has m={machine.m}"
        )
    # Frames: 1 input reader + 1 final output + (2k+1) bucket writers <= m.
    max_fan_out = max(1, (machine.m - 3) // 2)
    k = fan_out if fan_out is not None else max_fan_out
    if k < 1:
        raise ConfigurationError(f"fan-out must be >= 1, got {k}")

    output = stream_cls(machine, name="sorted")
    # In-memory threshold: leave one frame for the input reader and one for
    # the output buffer.
    threshold = machine.M - 2 * machine.B

    # Explicit worklist, processed in key order.  Entries are
    # (stream, is_equality, owned): equality buckets are emitted verbatim;
    # owned intermediates are deleted after use.
    worklist: List[Tuple[FileStream, bool, bool]] = [(stream, False, False)]
    try:
        # The output frame is held for the whole sort (the seed's
        # buffered writer acquired it lazily and kept it); the builder
        # re-blocks bucket segments into exactly-B appends with the
        # same cadence.
        output.reserve_writer()
        out_builder = BlockBuilder(machine.B, output.append_block)
        while worklist:
            current, is_equality, owned = worklist.pop(0)
            if is_equality:
                # Equality buckets are all one key (already "sorted"):
                # re-block them into the output without touching records.
                with machine.trace("bucket-output"):
                    for payload in current.iter_blocks():
                        out_builder.push(payload)
            elif len(current) <= threshold:
                with machine.trace("bucket-output"), \
                        machine.budget.reserve(len(current)):
                    chunk = current.read_block_range(
                        0, current.num_blocks
                    )
                    order = argsort(chunk, key)
                    out_builder.push(take(chunk, order))
            else:
                pivots = _sample_pivots(
                    machine, current, key, k, oversample
                )
                parts = _partition(
                    machine, current, key, pivots, stream_cls
                )
                worklist[0:0] = [
                    (bucket, equality, True) for bucket, equality in parts
                ]
            if owned:
                current.delete()
        out_builder.flush()
        return output.finalize()
    except BaseException:
        # A fault mid-sort must not leak the half-written output (or
        # its writer reservation) nor the owned bucket intermediates
        # still queued; recovery re-runs the sort from ``stream``.
        output.delete()
        for pending, _, pending_owned in worklist:
            if pending_owned:
                pending.delete()
        raise

"""External distribution (bucket) sort.

The survey's second optimal sorting paradigm: instead of merging sorted
runs, *partition* the input around ``k`` pivots into buckets of disjoint
key ranges, recurse on each bucket, and concatenate.  With fan-out
``Θ(m)`` the recursion depth is ``Θ(log_m(N/M))``, matching the merge-sort
bound up to constants (each level pays one read and one write pass, plus a
cheap pivot-sampling probe).

Implementation notes:

* Pivots come from *cluster sampling*: a handful of evenly spaced blocks
  are read and their keys pooled, costing ``O(k)`` I/Os per level instead
  of a full pass.
* Every distinct pivot value gets a dedicated *equality bucket*.  An
  equality bucket needs no further sorting, which both guarantees
  termination under heavy key skew (any sampled key strictly shrinks the
  other buckets) and keeps the sort stable.
* The recursion is an explicit in-order worklist, so bucket depth is
  bounded by disk, not the Python stack.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Callable, List, Optional, Tuple

from ..analysis.sanitizer import io_bound
from ..core.bounds import sort_io
from ..core.exceptions import ConfigurationError
from ..core.machine import Machine
from ..core.stream import FileStream
from .runs import identity


def _sample_pivots(
    machine: Machine,
    stream: FileStream,
    key: Callable[[Any], Any],
    fan_out: int,
    oversample: int,
) -> List[Any]:
    """Choose up to ``fan_out`` distinct pivot keys by reading
    ``oversample`` evenly spaced blocks of ``stream``."""
    num_blocks = stream.num_blocks
    # One frame is held by the sorter's open output stream.
    probes = min(num_blocks, max(1, oversample), machine.m - 2)
    step = max(1, num_blocks // probes)
    probe_indices = list(range(0, num_blocks, step))[:probes]
    keys: List[Any] = []
    with machine.trace("pivot-sample"), \
            machine.budget.reserve(len(probe_indices) * machine.B):
        for index in probe_indices:
            keys.extend(key(record) for record in stream.read_block(index))
    keys.sort()  # em: ok(EM004) pivot sample of ≤ (m-2)·B keys, reserved
    distinct: List[Any] = []
    for k in keys:
        if not distinct or distinct[-1] != k:
            distinct.append(k)
    if len(distinct) <= fan_out:
        return distinct
    # Evenly spaced quantiles of the distinct sampled keys.
    step = len(distinct) / (fan_out + 1)
    pivots = []
    for i in range(1, fan_out + 1):
        candidate = distinct[min(len(distinct) - 1, int(i * step))]
        if not pivots or pivots[-1] != candidate:
            pivots.append(candidate)
    return pivots


def _partition(
    machine: Machine,
    stream: FileStream,
    key: Callable[[Any], Any],
    pivots: List[Any],
    stream_cls,
) -> List[Tuple[FileStream, bool]]:
    """Split ``stream`` into ``2·len(pivots) + 1`` buckets.

    Bucket ``2i`` holds keys strictly between pivot ``i-1`` and pivot
    ``i``; bucket ``2i+1`` is the equality bucket of pivot ``i``.  Returns
    ``(bucket, is_equality)`` pairs in key order, dropping empty buckets.
    """
    buckets = [
        stream_cls(machine, name=f"bucket/{j}")
        for j in range(2 * len(pivots) + 1)
    ]
    with machine.trace("partition"):
        for record in stream:
            record_key = key(record)
            index = bisect_left(pivots, record_key)
            if index < len(pivots) and pivots[index] == record_key:
                buckets[2 * index + 1].append(record)
            else:
                buckets[2 * index].append(record)
        result = []
        for j, bucket in enumerate(buckets):
            bucket.finalize()
            if len(bucket) == 0:
                bucket.delete()
            else:
                result.append((bucket, j % 2 == 1))
    return result


# Each level pays a read pass AND a write pass over its buckets, so the
# theory charges 2·Sort(N); the envelope factor halves to compensate.
@io_bound(lambda machine, n: 2 * sort_io(n, machine.M, machine.B,
                                         machine.D),
          factor=3.0)
def distribution_sort(
    machine: Machine,
    stream: FileStream,
    key: Optional[Callable[[Any], Any]] = None,
    fan_out: Optional[int] = None,
    oversample: int = 4,
    stream_cls=FileStream,
) -> FileStream:
    """Sort ``stream`` by ``key`` using external distribution sort.

    Args:
        machine: the external-memory machine to charge I/O to.
        key: key function; default sorts records directly.
        fan_out: number of pivots per level.  The default is the memory
            maximum ``(m - 2) // 2`` (each pivot needs a range bucket and
            an equality bucket, each holding one output frame, plus an
            input frame).
        oversample: blocks probed per level for pivot sampling.
        stream_cls: stream class for intermediates and output.

    Returns a finalized sorted stream.  The sort is stable.
    """
    key = key or identity
    if machine.m < 6:
        raise ConfigurationError(
            "distribution sort needs at least 6 memory blocks (input frame, "
            "final-output frame, and frames for one pivot's three buckets); "
            f"machine has m={machine.m}"
        )
    # Frames: 1 input reader + 1 final output + (2k+1) bucket writers <= m.
    max_fan_out = max(1, (machine.m - 3) // 2)
    k = fan_out if fan_out is not None else max_fan_out
    if k < 1:
        raise ConfigurationError(f"fan-out must be >= 1, got {k}")

    output = stream_cls(machine, name="sorted")
    # In-memory threshold: leave one frame for the input reader and one for
    # the output buffer.
    threshold = machine.M - 2 * machine.B

    # Explicit worklist, processed in key order.  Entries are
    # (stream, is_equality, owned): equality buckets are emitted verbatim;
    # owned intermediates are deleted after use.
    worklist: List[Tuple[FileStream, bool, bool]] = [(stream, False, False)]
    while worklist:
        current, is_equality, owned = worklist.pop(0)
        if is_equality or len(current) <= machine.B:
            # Equality buckets are all one key (already "sorted"); tiny
            # buckets flush through the output buffer directly.
            with machine.trace("bucket-output"):
                if is_equality:
                    for record in current:
                        output.append(record)
                else:
                    with machine.budget.reserve(len(current)):
                        records = list(current)
                        # em: ok(EM004) tiny bucket ≤ M - 2B, reserved
                        records.sort(key=key)
                        for record in records:
                            output.append(record)
        elif len(current) <= threshold:
            with machine.trace("bucket-output"), \
                    machine.budget.reserve(len(current)):
                records = list(current)
                # em: ok(EM004) base-case bucket ≤ M - 2B records, reserved
                records.sort(key=key)
                for record in records:
                    output.append(record)
        else:
            pivots = _sample_pivots(machine, current, key, k, oversample)
            parts = _partition(machine, current, key, pivots, stream_cls)
            worklist[0:0] = [
                (bucket, equality, True) for bucket, equality in parts
            ]
        if owned:
            current.delete()
    return output.finalize()

"""Sortedness and permutation checking for streams."""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Optional

from ..core.machine import Machine
from ..core.stream import FileStream
from .runs import identity


def is_sorted_stream(
    stream: FileStream,
    key: Optional[Callable[[Any], Any]] = None,
) -> bool:
    """Whether ``stream``'s records are in non-decreasing key order.

    Costs one scan (``ceil(N/B)`` read I/Os) and O(1) memory beyond the
    read frame.
    """
    key = key or identity
    previous = None
    first = True
    for record in stream:
        current = key(record)
        if not first and current < previous:
            return False
        previous = current
        first = False
    return True


def streams_equal(a: FileStream, b: FileStream) -> bool:
    """Whether two streams hold the same records in the same order.

    Costs one scan of each stream.
    """
    if len(a) != len(b):
        return False
    return all(x == y for x, y in zip(iter(a), iter(b)))


def is_permutation(a: FileStream, b: FileStream) -> bool:
    """Whether two streams hold the same multiset of records.

    **Test helper only** — materializes both multisets in memory without
    going through the budget, so it does not respect the I/O model.
    """
    if len(a) != len(b):
        return False
    return Counter(_hashable(x) for x in a) == Counter(
        _hashable(x) for x in b
    )


def _hashable(record: Any) -> Any:
    if isinstance(record, list):
        return tuple(record)
    return record

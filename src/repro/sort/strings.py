"""External string sorting: MSD character-wise distribution.

Variable-length keys get a dedicated treatment in the survey: comparing
two long strings costs up to their common-prefix length, so comparison
sorting does ``Θ(L)`` character work per comparison.  MSD (most
significant digit first) distribution instead routes strings by one
character position per level — shared prefixes are inspected exactly
once, and each level is a scan.

``external_string_sort`` sorts any stream of ``str`` records (or records
with a string key) stably; levels advance a character position inside
equality buckets and narrow character ranges inside range buckets, so it
terminates for arbitrary inputs, including massive duplicate and
shared-prefix workloads.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Callable, List, Optional, Tuple

from ..analysis.sanitizer import io_bound
from ..core.bounds import sort_io
from ..core.exceptions import ConfigurationError
from ..core.machine import Machine
from ..core.stream import FileStream
from .runs import identity


@io_bound(lambda machine, n: sort_io(n, machine.M, machine.B, machine.D),
          factor=8.0)
def external_string_sort(
    machine: Machine,
    stream: FileStream,
    key: Optional[Callable[[Any], str]] = None,
    stream_cls=FileStream,
) -> FileStream:
    """Sort ``stream`` by its string keys with MSD distribution.

    Args:
        key: extracts the string key from a record (default: the record
            itself must be a ``str``).

    Returns a finalized, stably sorted stream.  Each level costs one read
    and one write pass over its bucket plus a few sampling probes; a
    string is touched ``O(1 + |distinguishing prefix| / progress)``
    times, never re-reading resolved prefixes.
    """
    key = key or identity
    if machine.m < 6:
        raise ConfigurationError(
            "string sort needs at least 6 memory blocks; "
            f"machine has m={machine.m}"
        )
    # Frames: done writer + (2k+1) bucket writers + reader + output.
    max_fan_out = max(1, (machine.m - 4) // 2)
    output = stream_cls(machine, name="strsort/out")
    threshold = machine.M - 2 * machine.B

    # Worklist entries: (bucket, depth, owned); all strings in a bucket
    # share a prefix of length `depth`.
    worklist: List[Tuple[FileStream, int, bool]] = [(stream, 0, False)]
    while worklist:
        bucket, depth, owned = worklist.pop(0)
        if len(bucket) <= threshold:
            with machine.budget.reserve(len(bucket)):
                records = list(bucket)
                # em: ok(EM004) base-case bucket ≤ M - 2B records, reserved
                records.sort(key=key)
                for record in records:
                    output.append(record)
            if owned:
                bucket.delete()
            continue

        pivots = _sample_chars(machine, bucket, key, depth, max_fan_out)
        parts = _partition_by_char(
            machine, bucket, key, depth, pivots, stream_cls
        )
        if owned:
            bucket.delete()
        # `parts` arrive in key order: exhausted strings first, then
        # alternating range/equality buckets.
        new_work = []
        for part, kind in parts:
            if kind == "done":
                for record in part:
                    output.append(record)
                part.delete()
            elif kind == "equal":
                new_work.append((part, depth + 1, True))
            else:
                new_work.append((part, depth, True))
        worklist[0:0] = new_work
    return output.finalize()


def _sample_chars(
    machine: Machine,
    bucket: FileStream,
    key: Callable[[Any], str],
    depth: int,
    fan_out: int,
) -> List[str]:
    """Sample distinct characters at position ``depth`` from a few
    probed blocks."""
    probes = min(bucket.num_blocks, max(1, machine.m - 3))
    step = max(1, bucket.num_blocks // probes)
    chars: List[str] = []
    with machine.budget.reserve(probes * machine.B):
        for index in list(range(0, bucket.num_blocks, step))[:probes]:
            for record in bucket.read_block(index):
                text = key(record)
                if len(text) > depth:
                    chars.append(text[depth])
    # em: ok(EM004) ≤ probes·B sampled characters, reserved above
    distinct = sorted(set(chars))
    if len(distinct) <= fan_out:
        return distinct
    stride = len(distinct) / (fan_out + 1)
    pivots: List[str] = []
    for i in range(1, fan_out + 1):
        candidate = distinct[min(len(distinct) - 1, int(i * stride))]
        if not pivots or pivots[-1] != candidate:
            pivots.append(candidate)
    return pivots


def _partition_by_char(
    machine: Machine,
    bucket: FileStream,
    key: Callable[[Any], str],
    depth: int,
    pivots: List[str],
    stream_cls,
) -> List[Tuple[FileStream, str]]:
    """Split a bucket on the character at ``depth``.

    Returns ``(stream, kind)`` pairs in key order, where kind is
    ``"done"`` (strings exhausted at this depth — they equal the shared
    prefix and sort first), ``"equal"`` (share the pivot character:
    advance the depth), or ``"range"`` (strictly between pivots: same
    depth, narrower alphabet).
    """
    done = stream_cls(machine, name="strsort/done")
    buckets = [
        stream_cls(machine, name=f"strsort/bucket/{j}")
        for j in range(2 * len(pivots) + 1)
    ]
    for record in bucket:
        text = key(record)
        if len(text) <= depth:
            done.append(record)
            continue
        char = text[depth]
        index = bisect_left(pivots, char)
        if index < len(pivots) and pivots[index] == char:
            buckets[2 * index + 1].append(record)
        else:
            buckets[2 * index].append(record)
    results: List[Tuple[FileStream, str]] = [(done.finalize(), "done")]
    for j, part in enumerate(buckets):
        part.finalize()
        if len(part) == 0:
            part.delete()
        else:
            results.append((part, "equal" if j % 2 == 1 else "range"))
    return results

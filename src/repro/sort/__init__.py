"""External sorting: run formation, k-way merging, distribution sort.

Public surface:

* :func:`~repro.sort.merge.external_merge_sort` — the workhorse sorter.
* :func:`~repro.sort.merge.merge_streams` / :class:`~repro.sort.merge.LoserTree`
  — single merge passes.
* :func:`~repro.sort.distribution.distribution_sort` — the distribution
  (bucket) paradigm.
* :func:`~repro.sort.naive.two_way_merge_sort` — the restricted-fan-in
  baseline showing the ``log_{M/B}`` advantage.
* run-formation strategies and verification helpers.
"""

from .distribution import distribution_sort
from .merge import LoserTree, external_merge_sort, merge_streams
from .naive import two_way_merge_sort
from .selection import external_median, external_select
from .strings import external_string_sort
from .runs import (
    average_run_length,
    form_runs_load_sort,
    form_runs_replacement_selection,
    identity,
)
from .steps import merge_sort_steps
from .verify import is_permutation, is_sorted_stream, streams_equal

__all__ = [
    "external_merge_sort",
    "merge_sort_steps",
    "distribution_sort",
    "two_way_merge_sort",
    "merge_streams",
    "LoserTree",
    "form_runs_load_sort",
    "form_runs_replacement_selection",
    "average_run_length",
    "identity",
    "external_select",
    "external_median",
    "external_string_sort",
    "is_sorted_stream",
    "streams_equal",
    "is_permutation",
]

"""Cooperative external merge sort: an intent-yielding generator.

The OLAP workhorse of the multi-tenant query service
(:mod:`repro.service`): the same memoryload-runs-then-k-way-merge
algorithm as :func:`~repro.sort.merge.external_merge_sort`, but every
read is a yielded :class:`~repro.core.intents.StreamRead` intent, so a
driver can interleave the sort's waves with other jobs, and every byte
of working memory is reserved from a caller-supplied *budget* — a
tenant's :class:`~repro.core.memory.SubBudget` under the service, the
machine's global :class:`~repro.core.memory.MemoryBudget` standalone.

The memoryload shrinks to the budget actually available, so a tenant
with a small share forms shorter runs (and pays more merge passes)
instead of overflowing its share — the fair-share analogue of the
survey's ``M``-bounded run formation.

Writes go through :meth:`~repro.core.stream.FileStream.append_block`
from a buffer the generator reserves itself, so no hidden staging
reservation lands on the parent ledger: the tenant's ``in_use`` peak is
exactly what its jobs reserved.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, Callable, List, Optional

from ..core.exceptions import ConfigurationError
from ..core.intents import StreamRead
from ..core.machine import Machine
from ..core.stream import FileStream
from .runs import identity


def merge_sort_steps(
    machine: Machine,
    stream: FileStream,
    key: Optional[Callable[[Any], Any]] = None,
    budget=None,
    name: str = "coop",
):
    """Sort ``stream`` cooperatively; a generator for a driver loop.

    Yields :class:`~repro.core.intents.StreamRead` intents and expects
    the payload list back via ``send``; *returns* the finalized sorted
    :class:`~repro.core.stream.FileStream` (surfaced by the driver from
    ``StopIteration``).  Stable, like the eager sort.

    Args:
        machine: the machine whose disk the stream lives on.
        key: sort key; default sorts records directly.
        budget: ledger to reserve working memory from — a tenant's
            :class:`~repro.core.memory.SubBudget` under the service;
            defaults to ``machine.budget``.
        name: label prefix for the intermediate run streams.
    """
    key = key or identity
    budget = budget if budget is not None else machine.budget
    B = machine.block_size
    block_ids = list(stream.block_ids)

    # ------------------------------------------------------------------
    # run formation: budget-sized memoryloads
    # ------------------------------------------------------------------
    spare = machine.num_disks - 1
    blocks_per_run = max(
        1, min(machine.m - spare, budget.available // B - spare)
    )
    if blocks_per_run > machine.num_disks:
        blocks_per_run -= blocks_per_run % machine.num_disks
    runs: List[FileStream] = []
    next_runs: List[FileStream] = []
    run: Optional[FileStream] = None
    try:
        for start in range(0, len(block_ids), blocks_per_run):
            wanted = block_ids[start:start + blocks_per_run]
            with budget.reserve(len(wanted) * B):
                payloads = yield StreamRead(wanted)
                chunk = [record for payload in payloads
                         for record in payload]
                # em: ok(EM004) one memoryload ≤ m·B, reserved
                chunk.sort(key=key)
                run = FileStream(machine, name=f"{name}/run/{len(runs)}")
                for offset in range(0, len(chunk), B):
                    run.append_block(chunk[offset:offset + B])
                runs.append(run.finalize())
                run = None

        # --------------------------------------------------------------
        # merge passes: one cursor frame per run + one output frame
        # --------------------------------------------------------------
        level = 0
        while len(runs) > 1:
            level += 1
            arity = min(machine.fan_in, budget.available // B - 1)
            if arity < 2:
                raise ConfigurationError(
                    f"cooperative merge fan-in must be >= 2, got {arity} "
                    f"(budget {budget!r} too small)"
                )
            for start in range(0, len(runs), arity):
                group = runs[start:start + arity]
                if len(group) == 1:
                    # Straggler: carried forward untouched.
                    next_runs.append(group[0])
                    continue
                merged = yield from _merge_group_steps(
                    machine, group, key, budget,
                    f"{name}/merge-{level}/{len(next_runs)}",
                )
                next_runs.append(merged)
                for member in group:
                    member.delete()
            runs = next_runs
            next_runs = []
    except BaseException:
        # A fault (or a driver .throw) mid-sort must not leak blocks:
        # the job fails alone, its intermediates reclaimed.  delete()
        # is idempotent, so a straggler run appearing in both lists
        # (or a group member already deleted) is harmless.
        if run is not None:
            run.delete()
        for formed in runs + next_runs:
            formed.delete()
        raise

    if not runs:
        return FileStream(machine, name=f"{name}/sorted").finalize()
    return runs[0]


def _merge_group_steps(
    machine: Machine,
    group: List[FileStream],
    key: Callable[[Any], Any],
    budget,
    name: str,
):
    """Merge one group of sorted runs cooperatively.

    Holds one block per input run plus one output buffer, all reserved
    from ``budget``; exhausted cursors refill with one ``StreamRead``
    each (the driver batches refills across jobs into shared waves).
    """
    B = machine.block_size
    ids = [list(member.block_ids) for member in group]
    out = FileStream(machine, name=name)
    with budget.reserve((len(group) + 1) * B):
        try:
            first = [run_ids[0] for run_ids in ids if run_ids]
            payloads = yield StreamRead(first)
            blocks: List[List[Any]] = []
            position = 0
            for run_ids in ids:
                if run_ids:
                    blocks.append(payloads[position])
                    position += 1
                else:
                    blocks.append([])
            # Heap of (key, run index, record): run index both breaks
            # key ties in input order (stability) and avoids comparing
            # records directly.
            cursor = [0] * len(group)  # next block to fetch per run
            offset = [0] * len(group)  # next record within the block
            heap = []
            for index, block in enumerate(blocks):
                if block:
                    heap.append((key(block[0]), index, block[0]))
                    offset[index] = 1
                    cursor[index] = 1
            heapify(heap)
            buffer: List[Any] = []
            while heap:
                _, index, record = heappop(heap)
                buffer.append(record)
                if len(buffer) == B:
                    out.append_block(buffer)
                    buffer = []
                if offset[index] >= len(blocks[index]):
                    if cursor[index] < len(ids[index]):
                        [payload] = yield StreamRead(
                            [ids[index][cursor[index]]]
                        )
                        blocks[index] = payload
                        cursor[index] += 1
                        offset[index] = 0
                    else:
                        blocks[index] = []
                        continue
                record = blocks[index][offset[index]]
                offset[index] += 1
                heappush(heap, (key(record), index, record))
            if buffer:
                out.append_block(buffer)
        except BaseException:
            out.delete()
            raise
    return out.finalize()

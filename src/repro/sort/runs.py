"""Run formation: the first pass of external merge sort.

Two strategies from the survey are implemented:

* :func:`form_runs_load_sort` — read a full memoryload of ``M`` records,
  sort it internally, write it out.  Produces ``ceil(N/M)`` runs of exactly
  ``M`` records (except the last).
* :func:`form_runs_replacement_selection` — stream records through an
  ``M``-record tournament (here a binary heap): always emit the smallest
  key that can still extend the current run.  On random input the expected
  run length is ``2M`` (Knuth), halving the number of runs and often saving
  a merge pass; on already-sorted input it produces a single run; on
  reverse-sorted input it degrades to runs of length ``M``.
"""

from __future__ import annotations

import heapq
from contextlib import closing
from typing import Any, Callable, List, Optional

from ..analysis.sanitizer import io_bound
from ..core.bounds import scan_io
from ..core.exceptions import ConfigurationError
from ..core.machine import Machine
from ..core.records import argsort, take
from ..core.stream import FileStream


# em: ok(EM003) pure key helper: no machine, no I/O
def identity(record: Any) -> Any:
    """Default key function: the record is its own key."""
    return record


def _run_formation_theory(machine: Machine, n: int) -> int:
    """One read pass plus one write pass: ``2·scan(N)``.

    The sanitizer compares block *transfers*, which do not depend on
    ``D`` (the runtime's scheduling only packs them into fewer steps),
    so the envelope deliberately omits the machine's disk count.
    """
    return 2 * scan_io(n, machine.B)


@io_bound(_run_formation_theory, factor=2.0)


def form_runs_load_sort(
    machine: Machine,
    stream: FileStream,
    key: Optional[Callable[[Any], Any]] = None,
    stream_cls=FileStream,
) -> List[FileStream]:
    """Split ``stream`` into sorted runs of ``M`` records each.

    Each memoryload occupies the *available* memory budget (up to ``m``
    blocks) — callers holding resident frames (an open block file, a
    priority queue) shorten the runs rather than overflow ``M``.  Blocks
    are read and written directly so no extra staging frames are needed.
    Costs one read and one write I/O per block of input.

    Returns the list of finalized run streams, in input order.
    """
    key = key or identity
    runs: List[FileStream] = []
    num_blocks = stream.num_blocks
    # On a multi-disk machine, leave D-1 frames out of the memoryload so
    # the runtime's write-behind can hold a D-block window; a memoryload
    # that fills every frame forces one write step per block.  A striped
    # run writer batches a full stripe itself, needs no window, and
    # (via append_block) stages no frames of its own — full memoryloads
    # mean fewer, longer runs.
    if stream_cls.writer_frames(machine) >= machine.num_disks:
        spare = 0
    else:
        spare = machine.num_disks - 1
    blocks_per_run = max(
        1, min(machine.m - spare,
               machine.budget.available // machine.B - spare)
    )
    if blocks_per_run > machine.num_disks:
        # Align run boundaries to the stripe so every read batch and
        # write window is a full D-block wave.
        blocks_per_run -= blocks_per_run % machine.num_disks
    run: Optional[FileStream] = None
    with machine.trace("run-formation"):
        try:
            for start in range(0, num_blocks, blocks_per_run):
                end = min(start + blocks_per_run, num_blocks)
                with machine.budget.reserve((end - start) * machine.B):
                    chunk = stream.read_block_range(start, end)
                    # Arge–Thorup: sort (key, pointer), then move each
                    # record exactly once through its pointer — payload
                    # size stays out of the comparisons, ties keep input
                    # order (stability).  On a typed chunk both calls
                    # are single vectorized passes.
                    order = argsort(chunk, key)
                    permuted = take(chunk, order)
                    run = stream_cls(machine, name=f"run/{len(runs)}")
                    run.append_blocks([
                        permuted[offset:offset + machine.B]
                        for offset in range(0, len(permuted), machine.B)
                    ])
                    runs.append(run.finalize())
                    run = None
        except BaseException:
            # A fault mid-formation must not leak runs: delete the
            # half-written one and every finished one so the caller can
            # retry the whole pass (checkpointed sort does exactly that).
            if run is not None:
                run.delete()
            for formed in runs:
                formed.delete()
            raise
    return runs


@io_bound(_run_formation_theory, factor=3.0)
def form_runs_replacement_selection(
    machine: Machine,
    stream: FileStream,
    key: Optional[Callable[[Any], Any]] = None,
    stream_cls=FileStream,
) -> List[FileStream]:
    """Form runs by replacement selection: one read and one write pass
    (``2·scan(N)`` I/Os, plus one short block per run).

    The selection heap holds ``M - 2B`` records (one frame is the input
    buffer, one the output buffer).  A record read from the input replaces
    the record just emitted; if its key is smaller than the last emitted
    key it cannot join the current run and is tagged for the next one.

    Returns the list of finalized run streams in emission order; keys are
    non-decreasing within each run.
    """
    key = key or identity
    if machine.m < 3:
        raise ConfigurationError(
            "replacement selection needs at least 3 memory blocks "
            "(input frame + output frame + selection heap); "
            f"machine has m={machine.m}"
        )
    # The input reader's frames, the output writer's frames, and (for a
    # one-block-at-a-time writer on a multi-disk machine) D-1 frames of
    # write-behind window stay out of the heap.
    out_frames = stream_cls.writer_frames(machine)
    window = machine.num_disks - 1 if out_frames < machine.num_disks else 0
    heap_capacity = (
        min(machine.M, machine.budget.available)
        - (type(stream).reader_frames(machine) + out_frames + window)
        * machine.B
    )
    if heap_capacity < 1:
        raise ConfigurationError(
            "replacement selection needs a free frame beyond the input "
            f"and output buffers; only {machine.budget.available} of "
            f"M={machine.M} records are unreserved"
        )
    runs: List[FileStream] = []
    sequence = 0  # tie-break so records never compare with each other

    current_run: Optional[FileStream] = None
    # closing() releases the reader's frame deterministically on every
    # exit; a bare iter() would leave it pinned for as long as the
    # propagating exception (and its traceback) kept the generator
    # alive (EM301).
    with machine.trace("run-formation"), \
            machine.budget.reserve(heap_capacity), \
            closing(iter(stream)) as reader:
        try:
            # (run_number, key, sequence, record) orders the heap first
            # by the run a record belongs to, then by key within the run.
            heap: List[tuple] = []
            for record in reader:
                heap.append((0, key(record), sequence, record))
                sequence += 1
                if len(heap) == heap_capacity:
                    break
            heapq.heapify(heap)

            current_run_number = 0
            last_key: Any = None
            reader_exhausted = len(heap) < heap_capacity

            while heap:
                run_number, record_key, _, record = heapq.heappop(heap)
                if run_number != current_run_number or current_run is None:
                    if current_run is not None:
                        runs.append(current_run.finalize())
                    current_run = stream_cls(
                        machine, name=f"run/{len(runs)}"
                    )
                    current_run_number = run_number
                current_run.append(record)
                last_key = record_key

                if not reader_exhausted:
                    try:
                        incoming = next(reader)
                    except StopIteration:
                        reader_exhausted = True
                    else:
                        incoming_key = key(incoming)
                        target_run = (
                            current_run_number
                            if incoming_key >= last_key
                            else current_run_number + 1
                        )
                        heapq.heappush(
                            heap,
                            (target_run, incoming_key, sequence, incoming),
                        )
                        sequence += 1

            if current_run is not None:
                runs.append(current_run.finalize())
                current_run = None
        except BaseException:
            # Same cleanup contract as load-sort formation: no leaked
            # runs on a faulted pass.
            if current_run is not None:
                current_run.delete()
            for formed in runs:
                formed.delete()
            raise
    return runs


# em: ok(EM003) in-RAM statistic over run handles; reads no blocks
def average_run_length(runs: List[FileStream]) -> float:
    """Mean run length in records (0.0 for no runs) — the statistic the
    replacement-selection experiment reports."""
    if not runs:
        return 0.0
    return sum(len(run) for run in runs) / len(runs)

"""External-memory list ranking.

Given a linked list stored in *storage order* (uncorrelated with logical
order), compute each node's rank — its distance from the head.  In RAM
this is a trivial pointer walk; on disk the walk pays one I/O per hop
(``Θ(N)``), because each successor lives in an unrelated block.  The
survey's solution contracts the list with a randomized independent set,
recurses, and reintegrates — a geometric series of sorts and merge joins
totalling ``O(Sort(N))`` I/Os.

List ranking is the survey's gateway to graph problems: Euler tours,
tree labelling, and connectivity all bootstrap from it.

Input format: an iterable of ``(node, successor)`` pairs, nodes numbered
arbitrarily, ``-1`` marking the tail.  Output: ``{node: rank}`` with the
head at rank 0.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..analysis.sanitizer import io_bound
from ..core.blockfile import BlockFile
from ..core.bounds import scan_io, sort_io
from ..core.exceptions import ConfigurationError, MemoryLimitExceeded
from ..core.machine import Machine
from ..core.stream import FileStream
from ..pipeline.sorter import Sorter
from ..search.hashing import _hash_bits
from ..sort.merge import external_merge_sort

_TAIL = -1


def _ranking_theory(machine: Machine, n: int) -> float:
    """``O(Sort(N))`` expected for the contraction, with a log-factor
    margin covering the per-level sorts, joins, and coin retries.
    Unsized inputs (n ≤ 0) have no static bound."""
    if n <= 0:
        return float("inf")
    rounds = max(1, n.bit_length())
    return rounds * (4 * sort_io(n, machine.M, machine.B, machine.D)
                     + 6 * scan_io(n, machine.B, machine.D))


@io_bound(lambda machine, n: 2 * n + 2 * scan_io(
              n, machine.B, machine.D),
          factor=3.0,
          n=lambda machine, pairs, num_nodes: num_nodes)
def pointer_chase_ranking(
    machine: Machine,
    pairs: Iterable[Tuple[int, int]],
    num_nodes: int,
) -> Dict[int, int]:
    """The naive walk: follow successors one hop (and ~one I/O) at a time.

    Successor pointers are stored by node id in a block file; the head is
    found with one scan.  The walk then reads the block containing each
    visited node — on a random storage order nearly every hop misses the
    pool.  Each hop depends on the previous one, so unlike the batched
    table scans elsewhere there is nothing to wave-read with
    ``get_many``; the cached reads do, however, inherit the runtime's
    retry/scrub handling like all pool traffic.
    """
    B = machine.block_size
    with BlockFile(
        machine, (num_nodes + B - 1) // B, name="listrank"
    ) as table:
        staging: Dict[int, List] = {}
        successors_seen = set()
        count = 0
        for node, successor in pairs:
            staging.setdefault(node // B, [None] * B)[node % B] = successor
            if successor != _TAIL:
                successors_seen.add(successor)
            count += 1
        if count != num_nodes:
            raise ConfigurationError(
                f"expected {num_nodes} pairs, got {count}"
            )
        for block_index, payload in staging.items():
            table.write_block(block_index, payload)
        heads = [v for v in range(num_nodes) if v not in successors_seen]
        if len(heads) != 1:
            raise ConfigurationError(
                f"input is not a single linked list "
                f"(found {len(heads)} heads)"
            )

        ranks: Dict[int, int] = {}
        node = heads[0]
        rank = 0
        while node != _TAIL:
            ranks[node] = rank
            block = machine.pool.get(table.block_id(node // B))
            node = block[node % B]
            rank += 1
        table.delete()
    return ranks


@io_bound(_ranking_theory, factor=4.0)
def list_ranking(
    machine: Machine,
    pairs: Iterable[Tuple[int, int]],
    seed: int = 0,
) -> Dict[int, int]:
    """Rank a linked list in ``O(Sort(N))`` expected I/Os by randomized
    independent-set contraction.

    Each round: nodes that drew heads while their predecessor drew tails
    form an independent set; they are spliced out (their predecessor
    inherits their weight) and remembered on a side stream.  Once the
    list fits in memory it is walked directly; side streams are then
    replayed in reverse to reintegrate the spliced nodes.

    Every sort in the contraction is pipelined (see
    :func:`_rank_recursive`); :func:`list_ranking_materialized` keeps
    the stream-to-stream rounds as the measured control.
    """
    ordered = _ordered_input(
        machine, ((node, successor, 1) for node, successor in pairs)
    )
    ranked = _rank_recursive(machine, ordered, seed)
    ordered.delete()
    ranks = {node: rank for node, rank in ranked}
    ranked.delete()
    return ranks


@io_bound(_ranking_theory, factor=4.0)
def list_ranking_materialized(
    machine: Machine,
    pairs: Iterable[Tuple[int, int]],
    seed: int = 0,
) -> Dict[int, int]:
    """The stream-to-stream contraction: every round materializes its
    intermediate streams and sorts them disk-to-disk.

    Kept as the measured control for the pipelining experiment (F25)
    and the fused/materialized parity suite; new code should call
    :func:`list_ranking`."""
    records = FileStream(machine, name="listrank/input")
    for node, successor in pairs:
        records.append((node, successor, 1))
    records.finalize()
    ordered = external_merge_sort(
        machine, records, key=lambda r: r[0], keep_input=False
    )
    ranked = _rank_recursive_materialized(machine, ordered, seed)
    ordered.delete()
    ranks = {node: rank for node, rank in ranked}
    ranked.delete()
    return ranks


@io_bound(_ranking_theory, factor=4.0)
def weighted_list_ranking(
    machine: Machine,
    triples: Iterable[Tuple[int, int, int]],
    seed: int = 0,
) -> Dict[int, int]:
    """Generalized list ranking: given ``(node, successor, weight)``,
    return for each node the sum of the weights of all nodes strictly
    before it (the head gets 0).

    With unit weights this is :func:`list_ranking`; with signed weights
    it computes prefix sums along the list — the primitive behind Euler
    tour tree labelling (depths via ±1 weights).  Same ``O(Sort(N))``
    expected cost.
    """
    ordered = _ordered_input(machine, triples)
    ranked = _rank_recursive(machine, ordered, seed)
    ordered.delete()
    ranks = {node: rank for node, rank in ranked}
    ranked.delete()
    return ranks


def _ordered_input(
    machine: Machine,
    triples: Iterable[Tuple[int, int, int]],
) -> FileStream:
    """Sort ``(node, succ, weight)`` triples by node id straight off the
    producer: the unsorted input is pushed into a pipelined sorter and
    only the node-ordered recursion input is ever written."""
    out = FileStream(machine, name="listrank/input")
    try:
        with Sorter(
            machine, key=lambda r: r[0], name="listrank/input-sort"
        ) as sorter:
            sorter.consume(triples)
            for record in sorter.finish():
                out.append(record)
        return out.finalize()
    except BaseException:
        out.delete()
        raise


def _rank_recursive(
    machine: Machine,
    records: FileStream,
    salt: int,
) -> FileStream:
    """Rank a list given as a stream of ``(node, succ, weight)`` sorted by
    node id; returns a stream of ``(node, rank)`` sorted by node id.

    The input stream is read but never deleted — the caller owns it (and
    may still need it after the call, e.g. for reintegration weights).

    Every sort in a round is a pipelined :class:`Sorter`: producers push
    records straight into run formation and consumers pull the final
    merge, so none of the round's intermediates (predecessor pairs,
    survivors, patched pieces, restored ranks) ever exists as a stream
    on disk.  Only two round-local streams are materialized — the
    ``removed`` side records, which are read twice (splice and
    reintegration) and arrive already in node order, and the
    ``contracted`` list, which is both the recursion input and the
    predecessor-weight lookup.  That is also the round's whole
    across-the-recursion disk footprint, so the peak stays ``O(N/B)``
    blocks over all depths (the geometric series), a property
    regression-tested in ``test_pipeline.py``.
    """
    n = len(records)
    base_capacity = machine.M - 2 * machine.B
    if n <= base_capacity:
        return _rank_in_memory(machine, records)

    def coin(node: int) -> bool:
        return bool(_hash_bits((node, salt)) & 1)

    # Each pulled final merge runs concurrently with up to two plain
    # scans, one writer, and the next sorter's run buffer; cap the pull
    # width to leave them frames.  Width 1 (tiny machines) degrades to
    # the materialized sort's cost, never worse.
    width = max(1, machine.m - 4)
    sorters: List[Sorter] = []

    try:
        # --- 1. attach predecessors: pred[succ] = node, pushed
        # straight into a sorter keyed by successor -------------------
        preds = Sorter(machine, key=lambda r: r[0],
                       name="listrank/preds", final_fan_in=width)
        sorters.append(preds)
        preds.consume(
            (successor, node)
            for node, successor, _ in records
            if successor != _TAIL
        )

        # --- 2. classify: independent set = coin(v) & ~coin(pred(v)).
        # Merge records (by node) with the pulled preds (by node);
        # survivors go straight into the splice sorter keyed by
        # *successor*, removed nodes land on a side stream — appended
        # in node order, so it never needs sorting. -------------------
        pred_iter = iter(preds.finish())
        # headroom: the same loop that pushes survivors appends removed
        # nodes to a side stream whose writer frame is acquired lazily.
        by_succ = Sorter(machine, key=lambda r: r[1],
                         name="listrank/by-succ", final_fan_in=width,
                         headroom=1)
        sorters.append(by_succ)
        removed = FileStream(machine, name="listrank/removed")
        pred_entry = next(pred_iter, None)
        for node, successor, weight in records:
            while pred_entry is not None and pred_entry[0] < node:
                pred_entry = next(pred_iter, None)
            predecessor = (
                pred_entry[1]
                if pred_entry is not None and pred_entry[0] == node
                else None
            )
            in_set = (
                predecessor is not None
                and coin(node)
                and not coin(predecessor)
            )
            if in_set:
                # (node, pred, succ, weight): enough to splice and
                # restore.
                removed.append((node, predecessor, successor, weight))
            else:
                by_succ.push((node, successor, weight))
        pred_iter.close()  # release the pull's reader frames eagerly
        removed.finalize()

        if len(removed) == 0:
            # Unlucky coins removed nothing: the survivors are exactly
            # the input, so retry straight on it with a fresh salt.
            removed.delete()
            return _rank_recursive(machine, records, salt + 1)

        # --- 3. splice: survivors whose successor was removed now
        # point to the removed node's successor and absorb its weight.
        # The pulled by-successor order merges against a plain scan of
        # ``removed`` (node order); patched pieces go straight into the
        # next sorter, back toward node order. ------------------------
        removed_iter = iter(removed)
        removed_entry = next(removed_iter, None)
        by_succ_iter = iter(by_succ.finish())
        contractor = Sorter(machine, key=lambda r: r[0],
                            name="listrank/contracted",
                            final_fan_in=width)
        sorters.append(contractor)
        for node, successor, weight in by_succ_iter:
            while removed_entry is not None \
                    and removed_entry[0] < successor:
                removed_entry = next(removed_iter, None)
            if (
                successor != _TAIL
                and removed_entry is not None
                and removed_entry[0] == successor
            ):
                _, _, removed_succ, removed_weight = removed_entry
                contractor.push(
                    (node, removed_succ, weight + removed_weight)
                )
            else:
                contractor.push((node, successor, weight))
        removed_iter.close()

        # The contracted list is the one intermediate that must be
        # materialized: it is the recursion input and, afterwards, the
        # predecessor-weight lookup.
        contracted = FileStream(machine, name="listrank/contracted")
        for record in contractor.finish():
            contracted.append(record)
        contracted.finalize()

        # --- 4. recurse ----------------------------------------------
        sub_ranks = _rank_recursive(machine, contracted, salt + 1)

        # --- 5. reintegrate: rank(removed) = rank(pred) + weight(pred
        # at time of removal) = rank(pred) + (pred's contracted weight
        # - removed node's own weight).  Removed records are re-pushed
        # keyed by *predecessor* and the pull merges against scans of
        # sub_ranks and contracted (both in node order). --------------
        by_pred = Sorter(machine, key=lambda r: r[1],
                         name="listrank/by-pred", final_fan_in=width)
        sorters.append(by_pred)
        by_pred.consume(iter(removed))
        by_pred_iter = iter(by_pred.finish())
        restored = Sorter(machine, key=lambda r: r[0],
                          name="listrank/restored", final_fan_in=width)
        sorters.append(restored)
        rank_iter = iter(sub_ranks)
        info_iter = iter(contracted)
        rank_entry = next(rank_iter, None)
        info_entry = next(info_iter, None)
        for node, predecessor, _, weight in by_pred_iter:
            while rank_entry is not None and rank_entry[0] < predecessor:
                rank_entry = next(rank_iter, None)
            while info_entry is not None and info_entry[0] < predecessor:
                info_entry = next(info_iter, None)
            assert rank_entry is not None and rank_entry[0] == predecessor
            assert info_entry is not None and info_entry[0] == predecessor
            pred_rank = rank_entry[1]
            pred_weight_now = info_entry[2]
            restored.push(
                (node, pred_rank + (pred_weight_now - weight))
            )
        rank_iter.close()
        info_iter.close()
        contracted.delete()
        removed.delete()

        # --- 6. merge sub_ranks with the pulled restored order (both
        # sorted by node) into the result stream. ---------------------
        merged = FileStream(machine, name="listrank/ranks")
        a_iter = iter(sub_ranks)
        b_iter = iter(restored.finish())
        a = next(a_iter, None)
        b = next(b_iter, None)
        while a is not None or b is not None:
            if b is None or (a is not None and a[0] < b[0]):
                merged.append(a)
                a = next(a_iter, None)
            else:
                merged.append(b)
                b = next(b_iter, None)
        a_iter.close()
        merged.finalize()
        sub_ranks.delete()
        return merged
    finally:
        for sorter in sorters:
            sorter.close()


def _rank_recursive_materialized(
    machine: Machine,
    records: FileStream,
    salt: int,
) -> FileStream:
    """The stream-to-stream round: every intermediate is materialized
    and every sort is disk-to-disk — the measured control for
    :func:`_rank_recursive`'s fused rounds."""
    n = len(records)
    base_capacity = machine.M - 2 * machine.B
    if n <= base_capacity:
        return _rank_in_memory(machine, records)

    # --- 1. attach predecessors: pred[succ] = node ------------------
    pred_stream = FileStream(machine, name="listrank/preds")
    for node, successor, _ in records:
        if successor != _TAIL:
            pred_stream.append((successor, node))
    pred_stream.finalize()
    # em: ok(EM103) materialized control for F25/parity
    preds = external_merge_sort(
        machine, pred_stream, key=lambda r: r[0], keep_input=False
    )

    # --- 2. classify: independent set = coin(v) & ~coin(pred(v)) ----
    def coin(node: int) -> bool:
        return bool(_hash_bits((node, salt)) & 1)

    # Merge records (by node) with preds (by node) to see each node's
    # predecessor; emit contracted list pieces and side records.
    survivors = FileStream(machine, name="listrank/survivors")
    removed = FileStream(machine, name="listrank/removed")
    pred_iter = iter(preds)
    pred_entry = next(pred_iter, None)
    for node, successor, weight in records:
        while pred_entry is not None and pred_entry[0] < node:
            pred_entry = next(pred_iter, None)
        predecessor = (
            pred_entry[1]
            if pred_entry is not None and pred_entry[0] == node
            else None
        )
        in_set = (
            predecessor is not None
            and coin(node)
            and not coin(predecessor)
        )
        if in_set:
            # (node, pred, succ, weight): enough to splice and restore.
            removed.append((node, predecessor, successor, weight))
        else:
            survivors.append((node, successor, weight))
    pred_iter.close()  # release the lookup reader's frame
    survivors.finalize()
    removed.finalize()
    preds.delete()

    if len(removed) == 0:
        # Unlucky coins removed nothing; retry with a fresh salt.
        result = _rank_recursive_materialized(
            machine, survivors, salt + 1
        )
        survivors.delete()
        removed.delete()
        return result

    # --- 3. splice: survivors whose successor was removed now point to
    # the removed node's successor and absorb its weight. -------------
    # Join survivors (keyed by successor) with removed (keyed by node;
    # it was appended in node order, so the sort is a formality kept
    # for the control's stream-to-stream shape).
    # em: ok(EM103) materialized control for F25/parity
    by_successor = external_merge_sort(
        machine, survivors, key=lambda r: r[1], keep_input=False
    )
    # em: ok(EM103) materialized control for F25/parity
    removed_sorted = external_merge_sort(
        machine, removed, key=lambda r: r[0]
    )
    patched = FileStream(machine, name="listrank/patched")
    removed_iter = iter(removed_sorted)
    removed_entry = next(removed_iter, None)
    for node, successor, weight in by_successor:
        while removed_entry is not None and removed_entry[0] < successor:
            removed_entry = next(removed_iter, None)
        if (
            successor != _TAIL
            and removed_entry is not None
            and removed_entry[0] == successor
        ):
            _, _, removed_succ, removed_weight = removed_entry
            patched.append((node, removed_succ, weight + removed_weight))
        else:
            patched.append((node, successor, weight))
    removed_iter.close()
    patched.finalize()
    by_successor.delete()
    removed_sorted.delete()

    contracted = external_merge_sort(
        machine, patched, key=lambda r: r[0], keep_input=False
    )

    # --- 4. recurse -------------------------------------------------
    sub_ranks = _rank_recursive_materialized(machine, contracted, salt + 1)

    # --- 5. reintegrate: rank(removed) = rank(pred) + weight(pred at
    # time of removal).  The predecessor's weight then was its *current*
    # weight before absorbing; we stored the removed node's own weight,
    # so recompute: rank(node) = rank(pred) + (weight added when stepping
    # pred -> node), which equals pred's weight before splicing =
    # pred's weight in the contracted list minus node's weight.
    # em: ok(EM103) materialized control for F25/parity
    removed_by_pred = external_merge_sort(
        machine, removed, key=lambda r: r[1], keep_input=False
    )
    # The predecessor's contracted weight comes straight from the
    # contracted stream, which is already sorted by node id.
    pred_info = contracted
    restored = FileStream(machine, name="listrank/restored")
    rank_iter = iter(sub_ranks)
    info_iter = iter(pred_info)
    rank_entry = next(rank_iter, None)
    info_entry = next(info_iter, None)
    for node, predecessor, _, weight in removed_by_pred:
        while rank_entry is not None and rank_entry[0] < predecessor:
            rank_entry = next(rank_iter, None)
        while info_entry is not None and info_entry[0] < predecessor:
            info_entry = next(info_iter, None)
        assert rank_entry is not None and rank_entry[0] == predecessor
        assert info_entry is not None and info_entry[0] == predecessor
        pred_rank = rank_entry[1]
        pred_weight_now = info_entry[2]
        restored.append((node, pred_rank + (pred_weight_now - weight)))
    rank_iter.close()
    info_iter.close()
    restored.finalize()
    removed_by_pred.delete()
    contracted.delete()

    # --- 6. merge sub_ranks with restored (both → sorted by node) ----
    # em: ok(EM103) materialized control for F25/parity
    restored_sorted = external_merge_sort(
        machine, restored, key=lambda r: r[0], keep_input=False
    )
    merged = FileStream(machine, name="listrank/ranks")
    a_iter = iter(sub_ranks)
    b_iter = iter(restored_sorted)
    a = next(a_iter, None)
    b = next(b_iter, None)
    while a is not None or b is not None:
        if b is None or (a is not None and a[0] < b[0]):
            merged.append(a)
            a = next(a_iter, None)
        else:
            merged.append(b)
            b = next(b_iter, None)
    merged.finalize()
    sub_ranks.delete()
    restored_sorted.delete()
    removed.delete()
    survivors.delete()
    return merged


def _rank_in_memory(machine: Machine, records: FileStream) -> FileStream:
    """Base case: the list fits in memory; walk it directly."""
    if len(records) > machine.M:
        raise MemoryLimitExceeded(
            len(records), machine.budget.in_use, machine.M)
    with machine.budget.reserve(len(records)):
        successor: Dict[int, int] = {}
        weight: Dict[int, int] = {}
        targets = set()
        for node, succ, w in records:
            successor[node] = succ
            weight[node] = w
            if succ != _TAIL:
                targets.add(succ)
        ranks: Dict[int, int] = {}
        if successor:
            heads = [v for v in successor if v not in targets]
            if len(heads) != 1:
                raise ConfigurationError(
                    f"input is not a single linked list "
                    f"(found {len(heads)} heads)"
                )
            node = heads[0]
            rank = 0
            while node != _TAIL:
                ranks[node] = rank
                rank += weight[node]
                node = successor[node]
        output = FileStream(machine, name="listrank/ranks")
        # em: ok(EM004) base case: ≤ M - 2B nodes, reserved above
        for node in sorted(ranks):
            output.append((node, ranks[node]))
        return output.finalize()

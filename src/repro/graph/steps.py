"""Cooperative BFS extraction: an intent-yielding generator.

The graph-traffic job of the multi-tenant query service
(:mod:`repro.service`): the semi-external BFS of
:func:`~repro.graph.bfs.semi_external_bfs` recast as a generator that
yields one :class:`~repro.core.intents.PoolRead` per adjacency-list
span, so a driver can batch the fetches of many concurrent jobs into
shared parallel-disk waves.  The in-memory vertex state (distance map
and queue — the semi-external assumption ``V ≤ M``) is reserved from a
caller-supplied budget: under the service, a tenant's
:class:`~repro.core.memory.SubBudget`, making the assumption
per-share: ``V`` must fit the *tenant's* memory, not the machine's.
"""

from __future__ import annotations

from collections import deque
from typing import Dict

from ..core.exceptions import ConfigurationError
from ..core.intents import PoolRead
from ..core.machine import Machine
from .adjacency import AdjacencyStore


def bfs_extract_steps(
    machine: Machine,
    adjacency: AdjacencyStore,
    source: int,
    budget=None,
):
    """Cooperative semi-external BFS from ``source``.

    Cost: ``O(V + E/B)`` I/Os — one adjacency-span fetch per reached
    vertex, amortized by the buffer pool.

    Yields one :class:`~repro.core.intents.PoolRead` per non-isolated
    vertex visited (its adjacency span, batched into one intent);
    *returns* the ``{vertex: distance}`` dict for the reachable
    vertices, like the eager BFS.
    """
    if not 0 <= source < adjacency.num_vertices:
        raise ConfigurationError(f"source {source} out of range")
    if adjacency.num_vertices > machine.M:
        raise ConfigurationError(
            f"semi-external BFS needs V <= M in-memory records; "
            f"V={adjacency.num_vertices} exceeds M={machine.M}"
        )
    budget = budget if budget is not None else machine.budget
    # The semi-external vertex state (distance map; the queue only ever
    # holds undiscovered-then-queued vertices, bounded by the same V):
    # one record per vertex, the survey's V ≤ M assumption made a
    # charged reservation — per-share under the service.
    with budget.reserve(adjacency.num_vertices):
        distance: Dict[int, int] = {source: 0}
        queue = deque([source])
        while queue:
            vertex = queue.popleft()
            span = adjacency.span_blocks(vertex)
            if not span:
                continue
            payloads = yield PoolRead(span)
            for neighbor in adjacency.neighbors_from_payloads(
                vertex, payloads
            ):
                if neighbor not in distance:
                    distance[neighbor] = distance[vertex] + 1
                    queue.append(neighbor)
    return distance

"""Breadth-first search in external memory.

The RAM BFS touches vertices in queue order — essentially random on a
disk-resident graph — paying ~1 I/O per adjacency-list fetch with no
locality to amortize it.  Munagala and Ranade's external BFS keeps the
*frontier* as a sorted stream: the next level is the multiset of
neighbors of the current level, externally sorted, de-duplicated, and
cleaned of the two previous levels by a three-way merge scan.  Its cost
is ``O(V + Sort(E))`` instead of ``Ω(V + E)`` random I/Os.

Both functions return ``{vertex: distance}`` for the reachable vertices
(building the result dict costs no I/O; all disk traffic is in the
algorithm proper).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Optional, Tuple

from ..analysis.sanitizer import io_bound
from ..core.bounds import scan_io, sort_io
from ..core.exceptions import ConfigurationError
from ..core.machine import Machine
from ..core.stream import FileStream
from ..sort.merge import external_merge_sort
from .adjacency import AdjacencyStore


def _graph_n(machine: Machine, adjacency: AdjacencyStore,
             source: int) -> int:
    return adjacency.num_vertices + adjacency.num_edges


def _semi_external_theory(machine: Machine, n: int) -> int:
    """Per-vertex adjacency fetches: ``O(V + E/B)``."""
    return n + scan_io(n, machine.B, machine.D)


@io_bound(_semi_external_theory, factor=4.0, n=_graph_n)
def semi_external_bfs(machine: Machine, adjacency: AdjacencyStore,
                      source: int) -> Dict[int, int]:
    """Queue BFS with the visited set and queue in memory.

    The practical middle ground (valid when ``V`` fits in RAM): I/O cost
    is only the per-vertex adjacency fetches, ``O(V + E/B)``.
    """
    if not 0 <= source < adjacency.num_vertices:
        raise ConfigurationError(f"source {source} out of range")
    distance = {source: 0}
    queue = deque([source])
    while queue:
        vertex = queue.popleft()
        for neighbor in adjacency.neighbors(vertex):
            if neighbor not in distance:
                distance[neighbor] = distance[vertex] + 1
                queue.append(neighbor)
    return distance


@io_bound(lambda machine, n: 4 * n, factor=4.0, n=_graph_n)
def naive_bfs(machine: Machine, adjacency: AdjacencyStore,
              source: int) -> Dict[int, int]:
    """Textbook BFS run *fully* externally: the distance table lives on
    disk and every visited-check reads the block holding that vertex's
    slot — ~1 I/O per edge on a random graph, the ``Ω(E)`` baseline the
    survey's external BFS is measured against.  The frontier queues are
    disk streams.
    """
    from ..core.blockfile import BlockFile

    if not 0 <= source < adjacency.num_vertices:
        raise ConfigurationError(f"source {source} out of range")
    B = machine.block_size
    pool = machine.pool
    with BlockFile(
        machine, (adjacency.num_vertices + B - 1) // B, name="bfs/dist"
    ) as table:
        for index in range(table.num_blocks):
            table.write_block(index, [None] * B)

        def read_slot(vertex: int):
            return pool.get(table.block_id(vertex // B))[vertex % B]

        def write_slot(vertex: int, value: int) -> None:
            block_id = table.block_id(vertex // B)
            pool.get(block_id)[vertex % B] = value
            pool.mark_dirty(block_id)

        write_slot(source, 0)
        current = FileStream.from_records(machine, [source], name="bfs/q0")
        level = 0
        while len(current) > 0:
            level += 1
            next_level = FileStream(machine, name="bfs/queue")
            for vertex in current:
                for neighbor in adjacency.neighbors(vertex):
                    if read_slot(neighbor) is None:
                        write_slot(neighbor, level)
                        next_level.append(neighbor)
            current.delete()
            current = next_level.finalize()
        current.delete()

        # One clean scan to extract the result, batched half a pool at a
        # time: resident table blocks are served as hits, the rest in
        # parallel waves.
        pool.flush_all()
        distance: Dict[int, int] = {}
        position = 0
        chunk = max(1, pool.capacity // 2)
        for start in range(0, table.num_blocks, chunk):
            stop = min(start + chunk, table.num_blocks)
            block_ids = [table.block_id(i) for i in range(start, stop)]
            for payload in pool.get_many(block_ids):
                for value in payload:
                    if value is not None and \
                            position < adjacency.num_vertices:
                        distance[position] = value
                    position += 1
        table.delete()
    return distance


def _dedupe_sorted(stream_iter: Iterator[int]) -> Iterator[int]:
    previous = None
    for value in stream_iter:
        if value != previous:
            yield value
        previous = value


def _subtract_sorted(
    values: Iterator[int],
    exclude_a: Iterator[int],
    exclude_b: Iterator[int],
) -> Iterator[int]:
    """Yield ``values`` minus the two sorted exclusion lists (merge scan)."""
    a = next(exclude_a, None)
    b = next(exclude_b, None)
    for value in values:
        while a is not None and a < value:
            a = next(exclude_a, None)
        while b is not None and b < value:
            b = next(exclude_b, None)
        if value != a and value != b:
            yield value


def _mr_bfs_theory(machine: Machine, n: int) -> int:
    """``O(V + Sort(E))`` — per-level sorts sum to Sort(E), plus a few
    I/Os of stream bookkeeping per level (≤ V levels)."""
    return 4 * n + 2 * sort_io(n, machine.M, machine.B, machine.D)


@io_bound(_mr_bfs_theory, factor=6.0, n=_graph_n)
def mr_bfs(machine: Machine, adjacency: AdjacencyStore,
           source: int) -> Dict[int, int]:
    """Munagala–Ranade external BFS.

    Level ``t+1`` = sort(neighbors of level ``t``), de-duplicated, minus
    levels ``t`` and ``t-1`` — correct for undirected graphs because any
    neighbor of level ``t`` lies in level ``t-1``, ``t``, or ``t+1``.
    """
    if not 0 <= source < adjacency.num_vertices:
        raise ConfigurationError(f"source {source} out of range")
    distance: Dict[int, int] = {source: 0}
    previous = FileStream(machine, name="bfs/prev").finalize()
    current = FileStream.from_records(machine, [source], name="bfs/cur")
    level = 0
    while len(current) > 0:
        level += 1
        with machine.trace(f"bfs-level-{level}"):
            neighbor_stream = FileStream(machine, name="bfs/neighbors")
            for vertex in current:
                for neighbor in adjacency.neighbors(vertex):
                    neighbor_stream.append(neighbor)
            neighbor_stream.finalize()
            # em: ok(EM103) fusion candidate: single-scan consumer, future Sorter refactor
            ordered = external_merge_sort(
                machine, neighbor_stream, keep_input=False
            )
            next_level = FileStream(machine, name="bfs/next")
            for vertex in _subtract_sorted(
                _dedupe_sorted(iter(ordered)), iter(current), iter(previous)
            ):
                next_level.append(vertex)
                distance[vertex] = level
            next_level.finalize()
            ordered.delete()
            previous.delete()
            previous, current = current, next_level
    previous.delete()
    current.delete()
    return distance

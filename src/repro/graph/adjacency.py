"""On-disk adjacency storage for graphs.

Edges arrive as an unordered stream of ``(u, v)`` pairs; building the
store externally sorts the doubled (directed) edge list by source and
packs the adjacency lists contiguously into blocks.  Fetching vertex
``v``'s list then costs ``1 + ceil(deg(v)/B)`` I/Os — the access pattern
both the naive and the Munagala–Ranade BFS rely on.

The per-vertex offset index (two integers per vertex) is kept in memory,
the usual semi-external assumption; all bulk data stays on disk.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Tuple

from ..core.blockfile import BlockFile
from ..core.exceptions import ConfigurationError
from ..core.machine import Machine
from ..core.stream import FileStream
from ..sort.merge import external_merge_sort


class AdjacencyStore:
    """Packed adjacency lists of an undirected graph on vertices
    ``0..n-1``."""

    def __init__(self, machine: Machine, num_vertices: int,
                 blocks: BlockFile, index: Dict[int, Tuple[int, int]]):
        self.machine = machine
        self.num_vertices = num_vertices
        self._blocks = blocks
        self._index = index  # vertex -> (start record position, degree)

    @classmethod
    def from_edges(
        cls,
        machine: Machine,
        num_vertices: int,
        edges: Iterable[Tuple[int, int]],
    ) -> "AdjacencyStore":
        """Build the store from an iterable of undirected edges.

        Cost: one write pass over the doubled edges, one external sort,
        one packing pass — ``O(Sort(E))`` I/Os.
        """
        directed = FileStream(machine, name="adj/directed")
        num_edges = 0
        for u, v in edges:
            if not (0 <= u < num_vertices and 0 <= v < num_vertices):
                raise ConfigurationError(
                    f"edge ({u}, {v}) outside vertex range 0..{num_vertices - 1}"
                )
            if u == v:
                continue  # ignore self-loops
            directed.append((u, v))
            directed.append((v, u))
            num_edges += 1
        directed.finalize()
        # em: ok(EM103) fusion candidate: single-scan consumer, future Sorter refactor
        ordered = external_merge_sort(
            machine, directed, key=lambda e: e, keep_input=False
        )

        packed = FileStream(machine, name="adj/packed")
        index: Dict[int, Tuple[int, int]] = {}
        position = 0
        current = None
        start = 0
        previous_target = None
        for source, target in ordered:
            if source != current:
                if current is not None:
                    # em: ok(EM005) semi-external: the V-entry vertex
                    # index is RAM-resident (the survey's V ≤ M regime)
                    index[current] = (start, position - start)
                current = source
                start = position
                previous_target = None
            if target == previous_target:
                continue  # collapse duplicate edges
            packed.append(target)
            previous_target = target
            position += 1
        if current is not None:
            index[current] = (start, position - start)
        packed.finalize()
        ordered.delete()

        # Re-pack into a block file for random access by position.  The
        # staging frame is released once packing is done: all later
        # access goes through the buffer pool via block_id.
        with BlockFile(
            machine, max(1, packed.num_blocks), name="adj"
        ) as blocks:
            for block_index in range(packed.num_blocks):
                blocks.write_block(
                    block_index, packed.read_block(block_index)
                )
        packed.delete()
        return cls(machine, num_vertices, blocks, index)

    @classmethod
    def from_weighted_edges(
        cls,
        machine: Machine,
        num_vertices: int,
        edges: Iterable[Tuple[int, int, Any]],
    ) -> "AdjacencyStore":
        """Build a store whose adjacency records are ``(neighbor, weight)``
        pairs, from undirected weighted edges ``(u, v, w)``.

        :meth:`neighbors` then returns ``(neighbor, weight)`` tuples.
        Parallel edges are kept (a multigraph is fine for shortest paths).
        """
        directed = FileStream(machine, name="adj/directed")
        for u, v, w in edges:
            if not (0 <= u < num_vertices and 0 <= v < num_vertices):
                raise ConfigurationError(
                    f"edge ({u}, {v}) outside vertex range "
                    f"0..{num_vertices - 1}"
                )
            if u == v:
                continue
            directed.append((u, (v, w)))
            directed.append((v, (u, w)))
        directed.finalize()
        # em: ok(EM103) fusion candidate: single-scan consumer, future Sorter refactor
        ordered = external_merge_sort(
            machine, directed, key=lambda e: e, keep_input=False
        )
        packed = FileStream(machine, name="adj/packed")
        index: Dict[int, Tuple[int, int]] = {}
        position = 0
        current = None
        start = 0
        for source, record in ordered:
            if source != current:
                if current is not None:
                    # em: ok(EM005) semi-external: the V-entry vertex
                    # index is RAM-resident (the survey's V ≤ M regime)
                    index[current] = (start, position - start)
                current = source
                start = position
            packed.append(record)
            position += 1
        if current is not None:
            index[current] = (start, position - start)
        packed.finalize()
        ordered.delete()
        with BlockFile(
            machine, max(1, packed.num_blocks), name="adj"
        ) as blocks:
            for block_index in range(packed.num_blocks):
                blocks.write_block(
                    block_index, packed.read_block(block_index)
                )
        packed.delete()
        return cls(machine, num_vertices, blocks, index)

    def degree(self, vertex: int) -> int:
        """Degree of ``vertex`` (no I/O; index lookup)."""
        return self._index.get(vertex, (0, 0))[1]

    def span_blocks(self, vertex: int) -> List[int]:
        """Block ids covering ``vertex``'s adjacency span, in order
        (no I/O; index arithmetic).  Empty for an isolated vertex.

        This is the fetch plan a cooperative job yields as a
        :class:`~repro.core.intents.PoolRead` intent; decode the served
        payloads with :meth:`neighbors_from_payloads`.
        """
        if not 0 <= vertex < self.num_vertices:
            raise ConfigurationError(
                f"vertex {vertex} outside 0..{self.num_vertices - 1}"
            )
        start, degree = self._index.get(vertex, (0, 0))
        if degree == 0:
            return []
        B = self.machine.block_size
        first_block = start // B
        last_block = (start + degree - 1) // B
        return [
            self._blocks.block_id(block_index)
            for block_index in range(first_block, last_block + 1)
        ]

    def neighbors_from_payloads(self, vertex: int,
                                payloads: List[List[int]]) -> List[int]:
        """Decode ``vertex``'s adjacency list from the block payloads of
        its :meth:`span_blocks` (in the same order).  No I/O."""
        start, degree = self._index.get(vertex, (0, 0))
        if degree == 0:
            return []
        values: List[int] = []
        for payload in payloads:
            values.extend(payload)
        offset = start - (start // self.machine.block_size) \
            * self.machine.block_size
        return values[offset:offset + degree]

    def neighbors(self, vertex: int) -> List[int]:
        """Fetch ``vertex``'s adjacency list: ``ceil`` of its span in
        blocks cached reads, batched through the pool
        (:meth:`~repro.core.cache.BufferPool.get_many`) so a high-degree
        vertex's span arrives in parallel waves on ``D > 1`` disks."""
        if not 0 <= vertex < self.num_vertices:
            raise ConfigurationError(
                f"vertex {vertex} outside 0..{self.num_vertices - 1}"
            )
        start, degree = self._index.get(vertex, (0, 0))
        if degree == 0:
            return []
        B = self.machine.block_size
        first_block = start // B
        last_block = (start + degree - 1) // B
        block_ids = [
            self._blocks.block_id(block_index)
            for block_index in range(first_block, last_block + 1)
        ]
        values: List[int] = []
        for payload in self.machine.pool.get_many(block_ids):
            values.extend(payload)
        offset = start - first_block * B
        return values[offset:offset + degree]

    @property
    def num_edges(self) -> int:
        """Number of stored directed adjacency entries // 2."""
        return sum(deg for _, deg in self._index.values()) // 2

    def delete(self) -> None:
        """Free the adjacency blocks."""
        self._blocks.delete()

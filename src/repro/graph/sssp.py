"""Single-source shortest paths in external memory.

External Dijkstra as the survey sketches it: the tentative-distance
structure is an external priority queue, and the classic decrease-key is
replaced by *lazy deletion* — a vertex may be queued several times, and
all but its first (cheapest) extraction are discarded against the on-disk
settled table.  Per edge the cost is a batched PQ operation plus one
settled-table block access, versus the fully random I/O pattern of
running heap-based Dijkstra with its bookkeeping on disk.

Both functions return ``{vertex: distance}`` for reachable vertices.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict

from ..analysis.sanitizer import io_bound
from ..core.blockfile import BlockFile
from ..core.bounds import scan_io, sort_io
from ..core.exceptions import ConfigurationError
from ..core.machine import Machine
from ..pq.sequence_heap import ExternalPriorityQueue
from .adjacency import AdjacencyStore


def _graph_n(machine: Machine, adjacency: AdjacencyStore,
             source: int) -> int:
    return adjacency.num_vertices + adjacency.num_edges


def _external_dijkstra_theory(machine: Machine, n: int) -> int:
    """``O(V + E)`` settled-table block accesses plus ``O(Sort(E))``
    amortized priority-queue traffic."""
    return (2 * n
            + 2 * sort_io(max(1, n), machine.M, machine.B, machine.D)
            + 2 * scan_io(n, machine.B, machine.D))


@io_bound(_external_dijkstra_theory, factor=4.0, n=_graph_n)
def external_dijkstra(machine: Machine, adjacency: AdjacencyStore,
                      source: int) -> Dict[int, Any]:
    """Dijkstra with an external PQ and an on-disk settled table.

    Requires non-negative edge weights (checked as they stream by).
    Costs ``O(V + E)`` settled-table block accesses plus ``O(Sort(E))``
    amortized priority-queue I/Os.
    """
    if not 0 <= source < adjacency.num_vertices:
        raise ConfigurationError(f"source {source} out of range")
    B = machine.block_size
    pool = machine.pool
    with BlockFile(
        machine, (adjacency.num_vertices + B - 1) // B, name="sssp/dist"
    ) as table:
        for index in range(table.num_blocks):
            table.write_block(index, [None] * B)

        def settled(vertex: int):
            return pool.get(table.block_id(vertex // B))[vertex % B]

        def settle(vertex: int, distance) -> None:
            block_id = table.block_id(vertex // B)
            pool.get(block_id)[vertex % B] = distance
            pool.mark_dirty(block_id)

        with ExternalPriorityQueue(machine) as queue:
            queue.insert(0, source)
            while len(queue) > 0:
                distance, vertex = queue.delete_min()
                if settled(vertex) is not None:
                    continue  # lazy deletion of a stale entry
                settle(vertex, distance)
                for neighbor, weight in adjacency.neighbors(vertex):
                    if weight < 0:
                        raise ConfigurationError(
                            f"negative edge weight {weight} "
                            f"at vertex {vertex}"
                        )
                    if settled(neighbor) is None:
                        queue.insert(distance + weight, neighbor)

        pool.flush_all()
        result: Dict[int, Any] = {}
        position = 0
        chunk = max(1, pool.capacity // 2)
        for start in range(0, table.num_blocks, chunk):
            stop = min(start + chunk, table.num_blocks)
            block_ids = [table.block_id(i) for i in range(start, stop)]
            for payload in pool.get_many(block_ids):
                for value in payload:
                    if value is not None and \
                            position < adjacency.num_vertices:
                        result[position] = value
                    position += 1
        table.delete()
    return result


@io_bound(lambda machine, n: n + scan_io(n, machine.B, machine.D),
          factor=4.0, n=_graph_n)
def semi_external_dijkstra(machine: Machine, adjacency: AdjacencyStore,
                           source: int) -> Dict[int, Any]:
    """Baseline: binary-heap Dijkstra with all bookkeeping in memory;
    I/O cost is the adjacency fetches only (valid when V fits in RAM)."""
    if not 0 <= source < adjacency.num_vertices:
        raise ConfigurationError(f"source {source} out of range")
    distance: Dict[int, Any] = {}
    heap = [(0, source)]
    while heap:
        dist, vertex = heapq.heappop(heap)
        if vertex in distance:
            continue
        distance[vertex] = dist
        for neighbor, weight in adjacency.neighbors(vertex):
            if neighbor not in distance:
                heapq.heappush(heap, (dist + weight, neighbor))
    return distance

"""Time-forward processing: local DAG functions at sorting cost.

The survey's signature use of external priority queues: to evaluate, for
every vertex of a DAG, a function of its predecessors' values, process
vertices in topological order and *send each computed value forward in
time* — insert it into a priority queue keyed by the receiving vertex's
topological number.  When a vertex is processed, its incoming values are
exactly the queue's current minima.  Total cost: ``O(Sort(E))`` I/Os,
versus one random I/O per edge for pointer-chasing evaluation.

Applications implemented on top of the generic engine:

* :func:`dag_longest_paths` — longest path from any source, per vertex.
* :func:`evaluate_circuit` — boolean circuit evaluation (AND/OR/NOT
  gates over input literals).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..analysis.sanitizer import io_bound, sized
from ..core.bounds import scan_io, sort_io
from ..core.exceptions import ConfigurationError
from ..core.machine import Machine
from ..core.stream import FileStream
from ..pipeline.sorter import Sorter
from ..pq.sequence_heap import ExternalPriorityQueue
from ..sort.merge import external_merge_sort


def _tfp_theory(machine: Machine, n: int) -> float:
    """``O(Sort(E))`` for the edge sort and the batched priority-queue
    traffic, plus per-vertex bookkeeping.  Unsized edge iterables
    (n ≤ 0) have no static bound."""
    if n <= 0:
        return float("inf")
    return (n + 2 * sort_io(n, machine.M, machine.B, machine.D)
            + 4 * scan_io(n, machine.B, machine.D))


def _tfp_n(machine: Machine, num_vertices: int, edges, compute) -> int:
    e = sized(edges)
    return -1 if e < 0 else num_vertices + e


@io_bound(_tfp_theory, factor=6.0, n=_tfp_n)
def time_forward_process(
    machine: Machine,
    num_vertices: int,
    edges: Iterable[Tuple[int, int]],
    compute: Callable[[int, List[Any]], Any],
) -> Dict[int, Any]:
    """Evaluate ``compute(v, incoming_values)`` for every vertex of a DAG.

    Args:
        num_vertices: vertices are ``0..num_vertices-1`` **in topological
            order** (every edge ``(u, v)`` must have ``u < v``).
        edges: directed edges ``(u, v)``; ``u``'s computed value is
            delivered to ``v``.
        compute: called once per vertex, in order, with the values sent by
            its predecessors (in predecessor order); its return value is
            both recorded and forwarded along out-edges.

    Returns ``{vertex: value}``.  Cost: one external sort of the edges
    plus ``O(E)`` batched priority-queue operations — ``O(Sort(E))``.

    The edge sort is pipelined: validated edges are pushed straight
    into a :class:`~repro.pipeline.sorter.Sorter` (no edge stream is
    ever written) and the vertex loop pulls the sorted order straight
    out of its final merge (no sorted stream either) — ``~4·(N/DB)``
    I/Os saved over :func:`time_forward_process_materialized`.  The
    pull's reader frames stay held for the whole traversal, so the
    final merge width is capped to leave the priority queue its share
    of the frame budget.
    """

    def validated() -> Iterable[Tuple[int, int]]:
        for u, v in edges:
            if not (0 <= u < num_vertices and 0 <= v < num_vertices):
                raise ConfigurationError(
                    f"edge ({u}, {v}) outside vertex range"
                )
            if u >= v:
                raise ConfigurationError(
                    f"edge ({u}, {v}) violates topological numbering "
                    f"(u < v)"
                )
            yield (u, v)

    results: Dict[int, Any] = {}
    width = max(1, machine.m // 4)
    with Sorter(machine, name="tfp/edges", final_fan_in=width) as sorter:
        # finish() before the queue exists: it releases the push
        # phase's memoryload reservation, leaving the frame budget to
        # the pull readers and the queue.
        sorter.consume(validated())
        edge_iter = iter(sorter.finish())
        with ExternalPriorityQueue(machine) as queue:
            pending = next(edge_iter, None)
            for vertex in range(num_vertices):
                incoming: List[Any] = []
                while len(queue) > 0 and \
                        queue.peek_min()[0][0] == vertex:
                    (_, sender), value = queue.delete_min()
                    incoming.append(value)
                value = compute(vertex, incoming)
                results[vertex] = value
                while pending is not None and pending[0] == vertex:
                    queue.insert((pending[1], vertex), value)
                    pending = next(edge_iter, None)
    return results


@io_bound(_tfp_theory, factor=6.0, n=_tfp_n)
def time_forward_process_materialized(
    machine: Machine,
    num_vertices: int,
    edges: Iterable[Tuple[int, int]],
    compute: Callable[[int, List[Any]], Any],
) -> Dict[int, Any]:
    """The stream-to-stream variant: materialize the edge stream, sort
    it to disk, scan the sorted copy.

    Kept as the measured control for the pipelining experiment (F25)
    and the fused/materialized parity suite; new code should call
    :func:`time_forward_process`, which fuses both sort boundaries.
    """
    edge_stream = FileStream(machine, name="tfp/edges")
    for u, v in edges:
        if not (0 <= u < num_vertices and 0 <= v < num_vertices):
            raise ConfigurationError(
                f"edge ({u}, {v}) outside vertex range"
            )
        if u >= v:
            raise ConfigurationError(
                f"edge ({u}, {v}) violates topological numbering (u < v)"
            )
        edge_stream.append((u, v))
    edge_stream.finalize()
    # em: ok(EM103) materialized control for F25/parity
    by_source = external_merge_sort(
        machine, edge_stream, key=lambda e: e, keep_input=False
    )

    results: Dict[int, Any] = {}
    with ExternalPriorityQueue(machine) as queue:
        edge_iter = iter(by_source)
        pending = next(edge_iter, None)
        for vertex in range(num_vertices):
            incoming: List[Any] = []
            while len(queue) > 0 and queue.peek_min()[0][0] == vertex:
                (_, sender), value = queue.delete_min()
                incoming.append(value)
            value = compute(vertex, incoming)
            results[vertex] = value
            while pending is not None and pending[0] == vertex:
                queue.insert((pending[1], vertex), value)
                pending = next(edge_iter, None)
    by_source.delete()
    return results


@io_bound(_tfp_theory, factor=6.0,
          n=lambda machine, num_vertices, edges: _tfp_n(
              machine, num_vertices, edges, None))
def dag_longest_paths(
    machine: Machine,
    num_vertices: int,
    edges: Iterable[Tuple[int, int]],
) -> Dict[int, int]:
    """Longest-path length (in edges) ending at each vertex of a DAG in
    topological numbering — ``O(Sort(E))`` I/Os via time-forward
    processing."""

    def compute(vertex: int, incoming: List[int]) -> int:
        return 1 + max(incoming) if incoming else 0

    return time_forward_process(machine, num_vertices, edges, compute)


@io_bound(_tfp_theory, factor=6.0,
          n=lambda machine, gates, wires: _tfp_n(
              machine, len(gates), wires, None))
def evaluate_circuit(
    machine: Machine,
    gates: List[Tuple[str, Any]],
    wires: Iterable[Tuple[int, int]],
) -> Dict[int, bool]:
    """Evaluate a boolean circuit given in topological order at the
    ``O(Sort(E))`` time-forward processing cost.

    Args:
        gates: per vertex, ``("input", bool)``, ``("and", None)``,
            ``("or", None)``, or ``("not", None)``.
        wires: edges from producing gate to consuming gate (``u < v``).

    Returns the output value of every gate.
    """
    operations = {
        "and": all,
        "or": any,
    }

    def compute(vertex: int, incoming: List[bool]) -> bool:
        kind, payload = gates[vertex]
        if kind == "input":
            return bool(payload)
        if kind == "not":
            if len(incoming) != 1:
                raise ConfigurationError(
                    f"NOT gate {vertex} has {len(incoming)} inputs"
                )
            return not incoming[0]
        if kind in operations:
            if not incoming:
                raise ConfigurationError(
                    f"{kind.upper()} gate {vertex} has no inputs"
                )
            return operations[kind](incoming)
        raise ConfigurationError(f"unknown gate kind {kind!r}")

    return time_forward_process(machine, len(gates), wires, compute)

"""Euler tours: tree labelling via list ranking.

The survey's bridge from list ranking to tree problems: replace each
undirected tree edge by two opposing arcs, link the arcs into a single
Euler tour (at each vertex, the arc arriving from neighbor ``u`` is
followed by the arc leaving toward the cyclically next neighbor), and
*rank the tour*.  Tour positions orient every edge (the arc seen first is
the downward one), and a second, ±1-weighted ranking turns positions into
depths — all in ``O(Sort(N))`` I/Os, where a naive rooted traversal would
pay one random I/O per tree edge.

:func:`tree_depths` returns ``(depths, parents)`` for every vertex of a
tree given as an undirected edge list.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..analysis.sanitizer import io_bound
from ..core.bounds import scan_io, sort_io
from ..core.exceptions import ConfigurationError
from ..core.machine import Machine
from ..core.stream import FileStream
from ..sort.merge import external_merge_sort
from .list_ranking import list_ranking, weighted_list_ranking


def _tour_theory(machine: Machine, n: int) -> int:
    """``O(Sort(N))`` over the ``2(n-1)`` arcs plus constant scans."""
    arcs = max(1, 4 * n)
    return (2 * sort_io(arcs, machine.M, machine.B, machine.D)
            + 4 * scan_io(arcs, machine.B, machine.D))


@io_bound(_tour_theory, factor=4.0,
          n=lambda machine, num_vertices, edges, root: num_vertices)
def build_euler_tour(
    machine: Machine,
    num_vertices: int,
    edges: Iterable[Tuple[int, int]],
    root: int,
) -> Tuple[List[Tuple[int, int]], Dict[int, Tuple[int, int]]]:
    """Link the ``2(n-1)`` arcs of a tree into an Euler tour.

    Returns ``(successor_pairs, arc_endpoints)`` where arcs are numbered
    by their position in the ``(dst, src)``-sorted arc order,
    ``successor_pairs`` is the ``(arc_id, successor_arc_id)`` linked list
    (tour start: the arc leaving ``root`` toward its smallest neighbor;
    the arc closing the cycle gets successor ``-1``), and
    ``arc_endpoints[arc_id] = (src, dst)``.

    Per-vertex adjacency groups are processed in memory (max degree must
    fit), and the arc-id lookup table is held in memory like the other
    semi-external indexes in this package; the bulk arc traffic goes
    through sorted streams.
    """
    arcs = FileStream(machine, name="euler/arcs")
    edge_count = 0
    for u, v in edges:
        if not (0 <= u < num_vertices and 0 <= v < num_vertices):
            raise ConfigurationError(f"edge ({u}, {v}) outside vertex range")
        if u == v:
            raise ConfigurationError(f"self-loop ({u}, {v}) is not a tree")
        arcs.append((u, v))
        arcs.append((v, u))
        edge_count += 1
    arcs.finalize()
    if edge_count != num_vertices - 1:
        raise ConfigurationError(
            f"a tree on {num_vertices} vertices has {num_vertices - 1} "
            f"edges, got {edge_count}"
        )

    # Arc ids = position in the (dst, src) sort order.
    # em: ok(EM103) fusion candidate: single-scan consumer, future Sorter refactor
    by_head = external_merge_sort(
        machine, arcs, key=lambda a: (a[1], a[0]), keep_input=False
    )

    # For each head vertex, the arc arriving from `src` continues as the
    # arc leaving toward the cyclically next neighbor.
    links = FileStream(machine, name="euler/links")
    arc_endpoints: Dict[int, Tuple[int, int]] = {}
    arc_id = 0
    group_head: Optional[int] = None
    group: List[Tuple[int, int]] = []  # (src, arc_id) per arriving arc

    def emit_group() -> None:
        degree = len(group)
        for position, (src, this_id) in enumerate(group):
            next_src = group[(position + 1) % degree][0]
            # The arc arriving at group_head from src continues as the
            # arc leaving group_head toward the next neighbor.
            links.append((this_id, (group_head, next_src)))

    for src, dst in by_head:
        if dst != group_head:
            if group_head is not None:
                emit_group()
            group_head = dst
            group = []
        # em: ok(EM005) semi-external: the 2(V-1)-entry arc table is
        # RAM-resident like this package's vertex indexes
        arc_endpoints[arc_id] = (src, dst)
        # em: ok(EM005) one vertex's arriving-arc group (<= degree)
        group.append((src, arc_id))
        arc_id += 1
    if group_head is not None:
        emit_group()
    links.finalize()
    by_head.delete()

    # Resolve successor endpoint pairs to arc ids.  The id of arc
    # (s, d) is its rank in the (d, s) order; build the lookup by
    # sorting links on the successor's (dst, src) and walking in step
    # with the id order.
    # em: ok(EM004) sorts the RAM-resident arc-id table (2(V-1) ids)
    order = sorted(
        arc_endpoints, key=lambda a: (arc_endpoints[a][1],
                                      arc_endpoints[a][0])
    )
    # order[i] == i by construction, but recompute defensively.
    endpoint_to_id = {
        (arc_endpoints[a][0], arc_endpoints[a][1]): a for a in order
    }

    start_neighbor = min(
        d for s, d in arc_endpoints.values() if s == root
    )
    start_id = endpoint_to_id[(root, start_neighbor)]

    successor_pairs: List[Tuple[int, int]] = []
    for this_id, (succ_src, succ_dst) in links:
        succ_id = endpoint_to_id[(succ_src, succ_dst)]
        if succ_id == start_id:
            succ_id = -1  # break the cycle where it would re-enter start
        # em: ok(EM005) semi-external: the 2(V-1)-entry successor list
        successor_pairs.append((this_id, succ_id))
    links.delete()
    return successor_pairs, arc_endpoints


def _depths_theory(machine: Machine, n: int) -> int:
    """Tour build + two list rankings: ``O(Sort(N))`` expected, with a
    log-factor margin for the randomized contraction rounds."""
    arcs = max(1, 4 * n)
    rounds = max(1, arcs.bit_length())
    return rounds * (sort_io(arcs, machine.M, machine.B, machine.D)
                     + 2 * scan_io(arcs, machine.B, machine.D))


@io_bound(_depths_theory, factor=6.0,
          n=lambda machine, num_vertices, edges, root=0: num_vertices)
def tree_depths(
    machine: Machine,
    num_vertices: int,
    edges: Iterable[Tuple[int, int]],
    root: int = 0,
) -> Tuple[Dict[int, int], Dict[int, int]]:
    """Compute every vertex's depth and parent in the tree rooted at
    ``root`` via Euler tour + two list rankings.

    Returns ``(depths, parents)``; ``parents[root]`` is ``-1``.
    Expected cost ``O(Sort(N))`` I/Os.
    """
    if num_vertices == 1:
        return {root: 0}, {root: -1}
    successor_pairs, arc_endpoints = build_euler_tour(
        machine, num_vertices, edges, root
    )

    # First ranking: tour positions orient the edges.
    positions = list_ranking(machine, successor_pairs, seed=1)

    # The arc of an edge seen earlier in the tour is the downward arc.
    reverse_id: Dict[Tuple[int, int], int] = {}
    for arc_id, (src, dst) in arc_endpoints.items():
        reverse_id[(src, dst)] = arc_id
    weights = {}
    for arc_id, (src, dst) in arc_endpoints.items():
        twin = reverse_id[(dst, src)]
        weights[arc_id] = 1 if positions[arc_id] < positions[twin] else -1

    # Second ranking with ±1 weights: prefix sums along the tour are
    # depths.  depth(dst of a downward arc) = prefix before it + 1.
    prefix = weighted_list_ranking(
        machine,
        [(arc_id, succ, weights[arc_id])
         for arc_id, succ in successor_pairs],
        seed=2,
    )
    depths = {root: 0}
    parents = {root: -1}
    for arc_id, (src, dst) in arc_endpoints.items():
        if weights[arc_id] == 1:  # downward arc src -> dst
            depths[dst] = prefix[arc_id] + 1
            parents[dst] = src
    return depths, parents

"""Batched graph algorithms in external memory.

* :class:`~repro.graph.adjacency.AdjacencyStore` — packed on-disk
  adjacency lists.
* :func:`~repro.graph.bfs.mr_bfs` vs :func:`~repro.graph.bfs.naive_bfs`
  — Munagala–Ranade external BFS against the queue baseline.
* :func:`~repro.graph.list_ranking.list_ranking` vs
  :func:`~repro.graph.list_ranking.pointer_chase_ranking`.
* :func:`~repro.graph.connectivity.external_components` (hook &
  contract) vs DFS / semi-external union-find baselines.
"""

from .adjacency import AdjacencyStore
from .bfs import mr_bfs, naive_bfs, semi_external_bfs
from .steps import bfs_extract_steps
from .connectivity import (
    dfs_components,
    external_components,
    semi_external_components,
)
from .euler import build_euler_tour, tree_depths
from .mst import external_boruvka, semi_external_kruskal
from .sssp import external_dijkstra, semi_external_dijkstra
from .list_ranking import (
    list_ranking,
    list_ranking_materialized,
    pointer_chase_ranking,
    weighted_list_ranking,
)
from .timeforward import (
    dag_longest_paths,
    evaluate_circuit,
    time_forward_process,
    time_forward_process_materialized,
)

__all__ = [
    "AdjacencyStore",
    "mr_bfs",
    "naive_bfs",
    "semi_external_bfs",
    "bfs_extract_steps",
    "list_ranking",
    "list_ranking_materialized",
    "pointer_chase_ranking",
    "external_components",
    "semi_external_components",
    "dfs_components",
    "time_forward_process",
    "time_forward_process_materialized",
    "dag_longest_paths",
    "evaluate_circuit",
    "weighted_list_ranking",
    "build_euler_tour",
    "tree_depths",
    "external_dijkstra",
    "semi_external_dijkstra",
    "semi_external_kruskal",
    "external_boruvka",
]

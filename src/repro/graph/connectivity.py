"""Connected components in external memory.

The RAM approach (DFS/BFS with a visited bitmap) pays ~1 random I/O per
vertex on a disk-resident graph.  The survey's batched alternative is
*hook and contract*: every vertex hooks to its minimum neighbor, the
resulting pseudo-forest is collapsed to stars by pointer jumping, and the
edge list is relabelled through the star roots — all with external sorts
and merge joins, ``O(Sort(E))`` per round and ``O(log V)`` rounds.

Outputs label each vertex with the minimum vertex id of its component,
which makes results canonical and testable.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..analysis.sanitizer import io_bound
from ..core.bounds import scan_io, sort_io
from ..core.exceptions import ConfigurationError, MemoryLimitExceeded
from ..core.machine import Machine
from ..core.stream import FileStream
from ..sort.merge import external_merge_sort
from .adjacency import AdjacencyStore


@io_bound(lambda machine, n: n + scan_io(n, machine.B, machine.D),
          factor=4.0,
          n=lambda machine, adjacency: (adjacency.num_vertices
                                        + adjacency.num_edges))
def dfs_components(machine: Machine, adjacency: AdjacencyStore) -> Dict[int, int]:
    """Baseline: repeated DFS with in-memory visited set, fetching
    adjacency lists on demand (~1 I/O per vertex, unbatched)."""
    labels: Dict[int, int] = {}
    for start in range(adjacency.num_vertices):
        if start in labels:
            continue
        stack = [start]
        labels[start] = start
        while stack:
            vertex = stack.pop()
            for neighbor in adjacency.neighbors(vertex):
                if neighbor not in labels:
                    labels[neighbor] = start
                    stack.append(neighbor)
    return labels


@io_bound(lambda machine, n: scan_io(n, machine.B, machine.D),
          factor=3.0)
def semi_external_components(
    machine: Machine,
    num_vertices: int,
    edges: FileStream,
) -> Dict[int, int]:
    """Semi-external union-find: one scan of the edge list with an
    in-memory parent array (valid when ``V <= M``; the survey's
    semi-external regime)."""
    if num_vertices > machine.M:
        # Semi-external regime: the parent array must fit in memory.
        raise MemoryLimitExceeded(
            num_vertices, machine.budget.in_use, machine.M)
    with machine.budget.reserve(num_vertices):
        parent = list(range(num_vertices))

        def find(x: int) -> int:
            root = x
            while parent[root] != root:
                root = parent[root]
            while parent[x] != root:
                parent[x], x = root, parent[x]
            return root

        for u, v in edges:
            ru, rv = find(u), find(v)
            if ru != rv:
                if ru < rv:
                    parent[rv] = ru
                else:
                    parent[ru] = rv
        return {v: find(v) for v in range(num_vertices)}


def _external_cc_theory(machine: Machine, n: int) -> int:
    """``O(Sort(E) · log V)``: each hook-and-contract round pays a
    constant number of sorts and scans over the surviving edges, and
    the rounds (plus pointer-jump sub-rounds) are logarithmic."""
    rounds = max(1, n.bit_length())
    size = max(1, 2 * n)
    return rounds * (3 * sort_io(size, machine.M, machine.B, machine.D)
                     + 4 * scan_io(size, machine.B, machine.D))


@io_bound(_external_cc_theory, factor=8.0,
          n=lambda machine, num_vertices, edges, max_rounds=64: (
              num_vertices + len(edges)))
def external_components(
    machine: Machine,
    num_vertices: int,
    edges: FileStream,
    max_rounds: int = 64,
) -> Dict[int, int]:
    """Fully external hook-and-contract connected components, costing
    ``O(Sort(E))`` I/Os per round over ``O(log V)`` rounds.

    Args:
        num_vertices: vertices are ``0..num_vertices-1``.
        edges: finalized stream of undirected ``(u, v)`` pairs.

    Returns ``{vertex: component_min_id}``.
    """
    # labels maps original vertex -> current representative.
    labels = FileStream(machine, name="cc/labels")
    for v in range(num_vertices):
        labels.append((v, v))
    labels.finalize()

    current_edges = _normalize_edges(machine, edges, num_vertices)

    rounds = 0
    while len(current_edges) > 0:
        rounds += 1
        if rounds > max_rounds:
            raise ConfigurationError(
                "hook-and-contract did not converge; malformed edge input?"
            )
        parents = _hook_to_min_neighbor(machine, current_edges)
        roots = _pointer_jump_to_roots(machine, parents)
        labels = _relabel(machine, labels, roots)
        current_edges = _contract_edges(machine, current_edges, roots)
        roots.delete()
    current_edges.delete()

    result = {v: rep for v, rep in labels}
    labels.delete()
    return result


# ----------------------------------------------------------------------
# rounds
# ----------------------------------------------------------------------
def _normalize_edges(
    machine: Machine, edges: FileStream, num_vertices: int
) -> FileStream:
    """Drop self-loops, orient ``u < v``, sort, and de-duplicate."""
    oriented = FileStream(machine, name="cc/oriented")
    for u, v in edges:
        if not (0 <= u < num_vertices and 0 <= v < num_vertices):
            raise ConfigurationError(
                f"edge ({u}, {v}) outside vertex range"
            )
        if u == v:
            continue
        oriented.append((min(u, v), max(u, v)))
    oriented.finalize()
    # em: ok(EM103) fusion candidate: single-scan consumer, future Sorter refactor
    ordered = external_merge_sort(machine, oriented, keep_input=False)
    unique = FileStream(machine, name="cc/edges")
    previous = None
    for edge in ordered:
        if edge != previous:
            unique.append(edge)
        previous = edge
    ordered.delete()
    return unique.finalize()


def _hook_to_min_neighbor(
    machine: Machine, edges: FileStream
) -> FileStream:
    """For every endpoint, ``parent = min(vertex, min neighbor)``.

    Returns a stream of ``(vertex, parent)`` sorted by vertex, covering
    exactly the vertices incident to an edge."""
    directed = FileStream(machine, name="cc/directed")
    for u, v in edges:
        directed.append((u, v))
        directed.append((v, u))
    directed.finalize()
    # em: ok(EM103) fusion candidate: single-scan consumer, future Sorter refactor
    ordered = external_merge_sort(machine, directed, keep_input=False)
    parents = FileStream(machine, name="cc/parents")
    current = None
    best = None
    for source, target in ordered:
        if source != current:
            if current is not None:
                parents.append((current, min(current, best)))
            current, best = source, target
        else:
            best = min(best, target)
    if current is not None:
        parents.append((current, min(current, best)))
    ordered.delete()
    return parents.finalize()


def _pointer_jump_to_roots(
    machine: Machine, parents: FileStream
) -> FileStream:
    """Repeat ``p(v) <- p(p(v))`` until stable: every vertex points to its
    pseudo-tree root.  Each round is one sort + one merge join."""
    current = parents
    while True:
        # Join current (keyed by parent) with current (keyed by vertex).
        # em: ok(EM103) fusion candidate: single-scan consumer, future Sorter refactor
        by_parent = external_merge_sort(
            machine, current, key=lambda r: r[1]
        )
        jumped = FileStream(machine, name="cc/jumped")
        changed = False
        lookup = iter(current)  # sorted by vertex
        entry = next(lookup, None)
        for vertex, parent in by_parent:
            while entry is not None and entry[0] < parent:
                entry = next(lookup, None)
            if entry is not None and entry[0] == parent:
                grandparent = entry[1]
            else:
                grandparent = parent  # parent not incident: it is a root
            if grandparent != parent:
                changed = True
            jumped.append((vertex, grandparent))
        lookup.close()
        jumped.finalize()
        by_parent.delete()
        current.delete()
        current = external_merge_sort(
            machine, jumped, key=lambda r: r[0], keep_input=False
        )
        if not changed:
            return current


def _relabel(
    machine: Machine, labels: FileStream, roots: FileStream
) -> FileStream:
    """Map every original vertex through the round's root assignment."""
    # em: ok(EM103) fusion candidate: single-scan consumer, future Sorter refactor
    by_rep = external_merge_sort(
        machine, labels, key=lambda r: r[1], keep_input=False
    )
    updated = FileStream(machine, name="cc/labels")
    root_iter = iter(roots)
    root_entry = next(root_iter, None)
    for vertex, rep in by_rep:
        while root_entry is not None and root_entry[0] < rep:
            root_entry = next(root_iter, None)
        if root_entry is not None and root_entry[0] == rep:
            updated.append((vertex, root_entry[1]))
        else:
            updated.append((vertex, rep))
    root_iter.close()
    updated.finalize()
    by_rep.delete()
    return external_merge_sort(
        machine, updated, key=lambda r: r[0], keep_input=False
    )


def _contract_edges(
    machine: Machine, edges: FileStream, roots: FileStream
) -> FileStream:
    """Replace both endpoints by their roots; drop loops and duplicates."""

    def map_endpoint(stream: FileStream, index: int) -> FileStream:
        by_endpoint = external_merge_sort(
            machine, stream, key=lambda e: e[index], keep_input=False
        )
        mapped = FileStream(machine, name="cc/mapped")
        root_iter = iter(roots)
        root_entry = next(root_iter, None)
        for edge in by_endpoint:
            endpoint = edge[index]
            while root_entry is not None and root_entry[0] < endpoint:
                root_entry = next(root_iter, None)
            if root_entry is not None and root_entry[0] == endpoint:
                new_endpoint = root_entry[1]
            else:
                new_endpoint = endpoint
            if index == 0:
                mapped.append((new_endpoint, edge[1]))
            else:
                mapped.append((edge[0], new_endpoint))
        root_iter.close()
        by_endpoint.delete()
        return mapped.finalize()

    edges = map_endpoint(edges, 0)
    edges = map_endpoint(edges, 1)
    cleaned = FileStream(machine, name="cc/contracted")
    for u, v in edges:
        if u != v:
            cleaned.append((min(u, v), max(u, v)))
    edges.delete()
    cleaned.finalize()
    # em: ok(EM103) fusion candidate: single-scan consumer, future Sorter refactor
    ordered = external_merge_sort(machine, cleaned, keep_input=False)
    unique = FileStream(machine, name="cc/edges")
    previous = None
    for edge in ordered:
        if edge != previous:
            unique.append(edge)
        previous = edge
    ordered.delete()
    return unique.finalize()

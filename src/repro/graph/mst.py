"""Minimum spanning trees (forests) in external memory.

Two regimes from the survey's graph section:

* :func:`semi_external_kruskal` — when the vertices (but not the edges)
  fit in memory: externally sort the edges by weight and stream them
  through an in-memory union-find.  Cost ``O(Sort(E))``.
* :func:`external_boruvka` — fully external: each round every component
  selects its minimum incident edge (a sort + scan), the chosen edges
  are contracted with the hook-and-contract machinery, and the edge list
  is relabelled; ``O(log V)`` rounds of ``O(Sort(E))``.

Both return ``(total_weight, mst_edges)`` where ``mst_edges`` are the
chosen original ``(u, v, w)`` triples (a spanning forest if the graph is
disconnected).  Ties are broken by edge input position, so results are
deterministic and the two algorithms select the same forest weight.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from ..analysis.sanitizer import io_bound
from ..core.bounds import scan_io, sort_io
from ..core.exceptions import ConfigurationError, MemoryLimitExceeded
from ..core.machine import Machine
from ..core.stream import FileStream
from ..sort.merge import external_merge_sort
from .connectivity import _pointer_jump_to_roots


def _kruskal_theory(machine: Machine, n: int) -> float:
    """``Sort(E)`` plus a constant number of scans; unsized edge
    iterables (n ≤ 0) have no static bound."""
    if n <= 0:
        return float("inf")
    return (sort_io(n, machine.M, machine.B, machine.D)
            + 3 * scan_io(n, machine.B, machine.D))


def _boruvka_theory(machine: Machine, n: int) -> float:
    """``O(Sort(E) · log V)``: a constant number of sorts and scans over
    the doubled surviving edges per round, logarithmically many rounds."""
    if n <= 0:
        return float("inf")
    rounds = max(1, n.bit_length())
    size = 2 * n
    return rounds * (6 * sort_io(size, machine.M, machine.B, machine.D)
                     + 8 * scan_io(size, machine.B, machine.D))


def _load_edges(
    machine: Machine,
    num_vertices: int,
    edges: Iterable[Tuple[int, int, int]],
) -> FileStream:
    stream = FileStream(machine, name="mst/edges")
    for position, (u, v, w) in enumerate(edges):
        if not (0 <= u < num_vertices and 0 <= v < num_vertices):
            raise ConfigurationError(f"edge ({u}, {v}) outside vertex range")
        if u == v:
            continue
        stream.append((u, v, w, position))
    return stream.finalize()


@io_bound(_kruskal_theory, factor=4.0)
def semi_external_kruskal(
    machine: Machine,
    num_vertices: int,
    edges: Iterable[Tuple[int, int, int]],
) -> Tuple[int, List[Tuple[int, int, int]]]:
    """Kruskal with an in-memory union-find over the vertices.

    Cost: ``Sort(E)`` plus one scan.  Requires ``V <= M`` (the
    semi-external regime); the memory budget enforces it.
    """
    if num_vertices > machine.M:
        # Semi-external regime: the union-find array must fit in memory.
        raise MemoryLimitExceeded(
            num_vertices, machine.budget.in_use, machine.M)
    stream = _load_edges(machine, num_vertices, edges)
    # em: ok(EM103) fusion candidate: single-scan consumer, future Sorter refactor
    by_weight = external_merge_sort(
        machine, stream, key=lambda e: (e[2], e[3]), keep_input=False
    )
    with machine.budget.reserve(num_vertices):
        parent = list(range(num_vertices))

        def find(x: int) -> int:
            root = x
            while parent[root] != root:
                root = parent[root]
            while parent[x] != root:
                parent[x], x = root, parent[x]
            return root

        chosen: List[Tuple[int, int, int]] = []
        total = 0
        for u, v, w, _ in by_weight:
            ru, rv = find(u), find(v)
            if ru != rv:
                parent[max(ru, rv)] = min(ru, rv)
                chosen.append((u, v, w))
                total += w
    by_weight.delete()
    return total, chosen


@io_bound(_boruvka_theory, factor=6.0)
def external_boruvka(
    machine: Machine,
    num_vertices: int,
    edges: Iterable[Tuple[int, int, int]],
    max_rounds: int = 64,
) -> Tuple[int, List[Tuple[int, int, int]]]:
    """Fully external Borůvka: minimum-incident-edge selection plus
    hook-and-contract rounds, all by sorting.

    Each round at least halves the number of live components, so there
    are ``O(log V)`` rounds of ``O(Sort(E))`` each.  The set of chosen
    edge ids (≤ V−1 integers) is the one in-memory index, in line with
    the package's semi-external bookkeeping convention; all edge traffic
    is sorted streams.
    """
    current = _load_edges(machine, num_vertices, edges)
    # Keep original endpoints/weights addressable by edge position so
    # chosen ids can be reported; this index stays on disk.
    originals = FileStream(machine, name="mst/originals")
    for record in current:
        originals.append(record)
    originals.finalize()

    chosen_ids: set = set()
    rounds = 0
    while len(current) > 0:
        rounds += 1
        if rounds > max_rounds:
            raise ConfigurationError(
                "Borůvka did not converge; malformed edge input?"
            )
        # --- 1. minimum incident edge per live vertex ----------------
        directed = FileStream(machine, name="mst/directed")
        for u, v, w, eid in current:
            directed.append((u, v, w, eid))
            directed.append((v, u, w, eid))
        directed.finalize()
        # em: ok(EM103) fusion candidate: single-scan consumer, future Sorter refactor
        ordered = external_merge_sort(
            machine, directed,
            key=lambda e: (e[0], e[2], e[3]), keep_input=False
        )
        parents = FileStream(machine, name="mst/parents")
        last_vertex = None
        for src, dst, w, eid in ordered:
            if src != last_vertex:
                # em: ok(EM005) semi-external: ≤ V-1 chosen edge ids,
                # the package's RAM-resident index convention
                chosen_ids.add(eid)
                parents.append((src, dst))  # hook toward the chosen edge
                last_vertex = src
        ordered.delete()
        parents.finalize()

        # Two vertices that pick the same edge hook to each other,
        # forming a 2-cycle; make the smaller endpoint of each mutual
        # pair a root so hooks form a forest.
        lookup = external_merge_sort(
            machine, parents, key=lambda r: r[0]
        )
        # em: ok(EM103) fusion candidate: single-scan consumer, future Sorter refactor
        by_parent = external_merge_sort(
            machine, parents, key=lambda r: r[1], keep_input=False
        )
        mutual = FileStream(machine, name="mst/mutual")
        cursor = iter(lookup)
        cursor_entry = next(cursor, None)
        for vertex, parent in by_parent:
            while cursor_entry is not None and cursor_entry[0] < parent:
                cursor_entry = next(cursor, None)
            if (
                cursor_entry is not None
                and cursor_entry[0] == parent
                and cursor_entry[1] == vertex
                and vertex < parent
            ):
                mutual.append(vertex)
        cursor.close()
        by_parent.delete()
        # em: ok(EM103) fusion candidate: single-scan consumer, future Sorter refactor
        mutual_sorted = external_merge_sort(
            machine, mutual.finalize(), keep_input=False
        )
        resolved = FileStream(machine, name="mst/resolved")
        mutual_iter = iter(mutual_sorted)
        mutual_entry = next(mutual_iter, None)
        for vertex, parent in lookup:
            while mutual_entry is not None and mutual_entry < vertex:
                mutual_entry = next(mutual_iter, None)
            is_root = mutual_entry is not None and mutual_entry == vertex
            resolved.append((vertex, vertex if is_root else parent))
        mutual_iter.close()
        mutual_sorted.delete()
        lookup.delete()
        resolved.finalize()

        roots = _pointer_jump_to_roots(machine, resolved)

        # --- 2. contract: relabel endpoints, drop loops, keep minimum
        # weight per component pair. -----------------------------------
        def map_endpoint(stream: FileStream, index: int) -> FileStream:
            by_endpoint = external_merge_sort(
                machine, stream, key=lambda e: e[index], keep_input=False
            )
            mapped = FileStream(machine, name="mst/mapped")
            root_iter = iter(roots)
            root_entry = next(root_iter, None)
            for edge in by_endpoint:
                endpoint = edge[index]
                while root_entry is not None and root_entry[0] < endpoint:
                    root_entry = next(root_iter, None)
                new_endpoint = (
                    root_entry[1]
                    if root_entry is not None and root_entry[0] == endpoint
                    else endpoint
                )
                record = list(edge)
                # em: ok(EM005) one 4-field edge record, O(1) space
                record[index] = new_endpoint
                mapped.append(tuple(record))
            root_iter.close()
            by_endpoint.delete()
            return mapped.finalize()

        relabelled = map_endpoint(map_endpoint(current, 0), 1)
        cleaned = FileStream(machine, name="mst/cleaned")
        for u, v, w, eid in relabelled:
            if u != v:
                cleaned.append((min(u, v), max(u, v), w, eid))
        relabelled.delete()
        cleaned.finalize()
        # em: ok(EM103) fusion candidate: single-scan consumer, future Sorter refactor
        deduped = external_merge_sort(
            machine, cleaned,
            key=lambda e: (e[0], e[1], e[2], e[3]), keep_input=False
        )
        next_edges = FileStream(machine, name="mst/edges")
        last_pair = None
        for u, v, w, eid in deduped:
            if (u, v) != last_pair:
                next_edges.append((u, v, w, eid))
                last_pair = (u, v)
        deduped.delete()
        roots.delete()
        current = next_edges.finalize()
    current.delete()

    # Collect the chosen original edges.
    chosen: List[Tuple[int, int, int]] = []
    total = 0
    for u, v, w, eid in originals:
        if eid in chosen_ids:
            # em: ok(EM005) semi-external: the ≤ V-1 MST output edges
            chosen.append((u, v, w))
            total += w
    originals.delete()
    return total, chosen

"""Pass-granular checkpoint/restart for external merge sort.

External merge sort has a natural recovery grain: each pass (run
formation, then every merge pass) reads only the previous pass's output
and writes a new generation of runs.  :class:`SortManifest` records each
completed pass as a list of run descriptors (block ids plus record
count), and :func:`checkpointed_merge_sort` commits the manifest after
every pass — so a sort killed by a
:class:`~repro.core.exceptions.SimulatedCrash` (or any other error)
resumes from the last committed pass instead of restarting from the
input::

    manifest = SortManifest()
    try:
        result = checkpointed_merge_sort(machine, stream, manifest)
    except SimulatedCrash:
        result = checkpointed_merge_sort(machine, stream, manifest)

Resume costs no I/O by itself: committed runs are re-opened with
:meth:`~repro.core.stream.FileStream.adopt`, which only validates that
the recorded blocks are still allocated.  Unlike the plain sort, a
pass's inputs are deleted only *after* the next pass commits, so a pass
that dies mid-merge can always be re-run from its surviving inputs
(the partial outputs it left behind are recorded in the manifest and
deleted on resume).

Torn writes are silent at write time and surface as
:class:`~repro.core.exceptions.ChecksumError` when the block is next
read.  With ``verify_outputs=True`` every pass's fresh output is
re-read before its manifest commit (charged as ordinary read I/O) and a
corrupt pass is redone — so a committed pass is always intact and a
torn write can never poison a later pass's input.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Optional

from ..core.exceptions import ChecksumError, RetryExhaustedError
from ..core.machine import Machine
from ..core.stream import FileStream
from ..sort.merge import RUN_STRATEGIES, merge_pass, plan_merge_arity
from ..sort.runs import identity

_MANIFEST_VERSION = 1


def _describe(stream: FileStream) -> Dict[str, Any]:
    return {"blocks": list(stream.block_ids), "length": len(stream)}


def _sync_device(machine: Machine) -> None:
    """Make a manifest commit durable on a file-backed device: a
    :class:`~repro.core.filedisk.FileDiskArray` flushes its block table
    so a post-crash ``open()`` recovers exactly the committed blocks.
    In-memory devices have nothing to flush."""
    sync = getattr(machine.disk, "sync_metadata", None)
    if sync is not None:
        sync()


class SortManifest:
    """Durable record of a checkpointed sort's progress.

    Attributes:
        passes: one entry per committed pass (entry 0 is run formation),
            each a list of run descriptors ``{"blocks": [...],
            "length": n}``.
        partial_runs: descriptors of group outputs a crashed merge pass
            left behind; deleted on resume before the pass is re-run.
        arity: the merge arity fixed by the first invocation, so a
            resume reproduces the original pass structure even if the
            free memory budget differs slightly.
        done: whether the sort finished; ``result`` then describes the
            output stream.
        passes_redone: passes re-run because verification found a
            corrupt (torn) output block.
    """

    def __init__(self):
        self.passes: List[List[Dict[str, Any]]] = []
        self.partial_runs: List[Dict[str, Any]] = []
        self.arity: Optional[int] = None
        self.done = False
        self.result: Optional[Dict[str, Any]] = None
        self.passes_redone = 0

    # ------------------------------------------------------------------
    # progress recording
    # ------------------------------------------------------------------
    def commit_pass(self, streams: List[FileStream]) -> None:
        """Record one completed pass; clears any partial-pass debris."""
        self.passes.append([_describe(s) for s in streams])
        self.partial_runs = []

    def record_partial(self, streams: List[FileStream]) -> None:
        """Record the group outputs a dying pass already finished."""
        self.partial_runs = [_describe(s) for s in streams]

    def commit_result(self, stream: FileStream) -> None:
        """Mark the sort finished."""
        self.result = _describe(stream)
        self.done = True
        self.partial_runs = []

    @property
    def committed_passes(self) -> int:
        """Number of committed passes (run formation counts as one)."""
        return len(self.passes)

    # ------------------------------------------------------------------
    # serialization (round-trips through JSON for durable storage)
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps({
            "version": _MANIFEST_VERSION,
            "passes": self.passes,
            "partial_runs": self.partial_runs,
            "arity": self.arity,
            "done": self.done,
            "result": self.result,
            "passes_redone": self.passes_redone,
        })

    @classmethod
    def from_json(cls, text: str) -> "SortManifest":
        data = json.loads(text)
        manifest = cls()
        manifest.passes = data["passes"]
        manifest.partial_runs = data.get("partial_runs", [])
        manifest.arity = data.get("arity")
        manifest.done = data["done"]
        manifest.result = data.get("result")
        manifest.passes_redone = data.get("passes_redone", 0)
        return manifest


# ----------------------------------------------------------------------
# verification helpers
# ----------------------------------------------------------------------
def _scan_for_corruption(machine: Machine, stream: FileStream
                         ) -> Optional[ChecksumError]:
    """Re-read every block of ``stream`` (charged reads, with the
    scheduler's transient-fault retry) and report the first checksum
    mismatch, or ``None`` if the stream is intact."""
    for block_id in stream.block_ids:
        try:
            machine.runtime.read_block(block_id)
        except ChecksumError as error:
            return error
    return None


def _verify_or_none(machine: Machine, streams: List[FileStream]
                    ) -> Optional[ChecksumError]:
    for stream in streams:
        error = _scan_for_corruption(machine, stream)
        if error is not None:
            return error
    return None


# ----------------------------------------------------------------------
# the checkpointed sort
# ----------------------------------------------------------------------
def checkpointed_merge_sort(
    machine: Machine,
    stream: FileStream,
    manifest: SortManifest,
    key: Optional[Callable[[Any], Any]] = None,
    fan_in: Optional[int] = None,
    run_strategy: str = "load",
    stream_cls=FileStream,
    verify_outputs: bool = False,
    max_redos: int = 3,
) -> FileStream:
    """External merge sort that commits ``manifest`` after every pass.

    Semantics match :func:`~repro.sort.merge.external_merge_sort` (same
    passes, same trace labels, stable) with three differences: the input
    stream is never deleted, a pass's inputs outlive it until the next
    pass commits, and progress is recorded in ``manifest`` so a crashed
    sort re-invoked with the *same* manifest (or one rebuilt via
    :meth:`SortManifest.from_json`) resumes from the last committed
    pass.

    Args:
        verify_outputs: re-read each pass's fresh output before
            committing it; a pass whose output fails its checksum (torn
            write) is deleted and redone, up to ``max_redos`` times,
            after which :class:`~repro.core.exceptions.RetryExhaustedError`
            is raised.
        max_redos: redo budget per pass for ``verify_outputs``.

    Returns the finalized sorted stream (also recorded in
    ``manifest.result``).
    """
    key = key or identity
    if manifest.done:
        described = manifest.result
        return stream_cls.adopt(
            machine, described["blocks"], described["length"],
            name="sorted",
        )

    # Debris from a pass that died mid-merge: its completed group
    # outputs will be regenerated when the pass is re-run.
    for described in manifest.partial_runs:
        stream_cls.adopt(
            machine, described["blocks"], described["length"],
            name="ckpt-partial",
        ).delete()
    manifest.partial_runs = []

    if not manifest.passes:
        runs = _form_runs_checkpointed(
            machine, stream, key, run_strategy, stream_cls,
            verify_outputs, max_redos, manifest,
        )
        manifest.commit_pass(runs)
        _sync_device(machine)
    else:
        generation = manifest.committed_passes - 1
        runs = [
            stream_cls.adopt(
                machine, described["blocks"], described["length"],
                name=f"ckpt/{generation}/{index}",
            )
            for index, described in enumerate(manifest.passes[-1])
        ]

    if not runs:
        empty = stream_cls(machine, name="sorted").finalize()
        manifest.commit_result(empty)
        _sync_device(machine)
        return empty

    if manifest.arity is None:
        manifest.arity = plan_merge_arity(
            machine, len(runs), fan_in=fan_in, stream_cls=stream_cls
        )
    arity = manifest.arity

    while len(runs) > 1:
        level = manifest.committed_passes  # formation was pass 0
        next_runs = _merge_pass_checkpointed(
            machine, runs, arity, key, stream_cls, level,
            verify_outputs, max_redos, manifest,
        )
        manifest.commit_pass(next_runs)
        _sync_device(machine)
        # Only now is the previous generation safe to drop.  A lone
        # straggler is *carried forward* (same object in both lists) —
        # deleting it would destroy part of the committed pass.
        carried = {id(run) for run in next_runs}
        for run in runs:
            if id(run) not in carried:
                run.delete()
        runs = next_runs

    manifest.commit_result(runs[0])
    _sync_device(machine)
    return runs[0]


def _form_runs_checkpointed(
    machine: Machine,
    stream: FileStream,
    key: Callable[[Any], Any],
    run_strategy: str,
    stream_cls,
    verify_outputs: bool,
    max_redos: int,
    manifest: SortManifest,
) -> List[FileStream]:
    """Run formation with the verify-and-redo loop.  Run formation
    cleans up its own partial output on error, so a crash here leaves
    nothing for the manifest to track."""
    form = RUN_STRATEGIES[run_strategy]
    last_error: Optional[ChecksumError] = None
    for _ in range(max_redos + 1):
        runs = form(machine, stream, key=key, stream_cls=stream_cls)
        if not verify_outputs:
            return runs
        last_error = _verify_or_none(machine, runs)
        if last_error is None:
            return runs
        manifest.passes_redone += 1
        for run in runs:
            run.delete()
    raise RetryExhaustedError(max_redos + 1, last_error)


def _merge_pass_checkpointed(
    machine: Machine,
    runs: List[FileStream],
    arity: int,
    key: Callable[[Any], Any],
    stream_cls,
    level: int,
    verify_outputs: bool,
    max_redos: int,
    manifest: SortManifest,
) -> List[FileStream]:
    """One merge pass with crash bookkeeping and the verify-and-redo
    loop.  Inputs are never deleted here — the caller drops them after
    the pass commits."""
    inputs = {id(run) for run in runs}
    last_error: Optional[ChecksumError] = None
    for _ in range(max_redos + 1):
        landed: List[FileStream] = []
        try:
            next_runs = merge_pass(
                machine, runs, arity,
                key=key, stream_cls=stream_cls, level=level,
                delete_inputs=False, out=landed,
            )
        except BaseException:
            # The in-flight group's output was already deleted by
            # merge_streams; completed groups' outputs survive on disk.
            # Record them so resume can reclaim their blocks.
            manifest.record_partial(
                [run for run in landed if id(run) not in inputs]
            )
            raise
        if not verify_outputs:
            return next_runs
        fresh = [run for run in next_runs if id(run) not in inputs]
        last_error = _verify_or_none(machine, fresh)
        if last_error is None:
            return next_runs
        manifest.passes_redone += 1
        for run in fresh:
            run.delete()
    raise RetryExhaustedError(max_redos + 1, last_error)

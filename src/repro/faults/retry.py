"""Bounded-retry policy with exponential backoff in I/O steps.

A transient transfer failure costs wall-clock, not data; in the I/O
model the honest currency for that cost is the *parallel step*.  A
:class:`RetryPolicy` therefore expresses its backoff in stall steps:
retry ``i`` (1-based) waits ``backoff_base * 2**(i-1)`` steps, charged
to the device via :meth:`repro.core.disk.DiskArray.stall` so faulted
runs show their degradation in the same counters and traces as their
transfers.

The :class:`~repro.runtime.scheduler.IOScheduler` applies the policy to
every wave it issues (and :class:`~repro.runtime.Runtime` to its direct
single-block reads): a wave that raises
:class:`~repro.core.exceptions.TransientIOError` is re-issued whole
until it succeeds or the policy's attempts are exhausted, at which point
:class:`~repro.core.exceptions.RetryExhaustedError` propagates.  Cached
reads share this path — a :class:`~repro.core.cache.BufferPool` miss is
a runtime read — so a B+-tree lookup under a fault plan degrades into
retries and stall steps instead of a raw transient error.
Checksum mismatches are *not* retried — re-reading a torn block cannot
repair it; the pool's scrub path (rewrite-and-verify, bounded by
``max_attempts``) or the checkpoint layer repairs instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.exceptions import (
    ConfigurationError,
    RetryExhaustedError,
    TransientIOError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded attempts with exponential backoff counted as stall steps.

    Attributes:
        max_attempts: total attempts per transfer (first try included);
            1 disables retrying.
        backoff_base: stall steps before the first retry; each further
            retry doubles it.  0 retries immediately (still bounded).
    """

    max_attempts: int = 4
    backoff_base: int = 1

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0:
            raise ConfigurationError(
                f"backoff_base must be >= 0, got {self.backoff_base}"
            )

    def backoff_steps(self, retry_number: int) -> int:
        """Stall steps to charge before retry ``retry_number`` (1-based)."""
        return self.backoff_base * (2 ** (retry_number - 1))

    def run(self, disk, attempt):
        """Call ``attempt()`` until it succeeds or attempts run out.

        Transient failures are counted on ``disk.counter.retries``, their
        backoff charged as stall steps, and the device's listener (the
        tracer) told via ``on_retry``.  The last failure is wrapped in
        :class:`RetryExhaustedError`.
        """
        attempts = 0
        while True:
            try:
                return attempt()
            except TransientIOError as error:
                attempts += 1
                if attempts >= self.max_attempts:
                    raise RetryExhaustedError(attempts, error) from error
                disk.counter.retries += 1
                listener = disk.listener
                if listener is not None:
                    handler = getattr(listener, "on_retry", None)
                    if handler is not None:
                        handler(error.op, error.block_id, attempts)
                disk.stall(self.backoff_steps(attempts),
                           (error.disk,), "backoff")

"""Deterministic, seeded fault plans for the simulated disk array.

The I/O model assumes disks that never fail; every production descendant
of its toolbox (STXXL, TPIE, database sort engines) cannot.  A
:class:`FaultPlan` describes *which* failures a run should experience —
transient read/write errors, torn (partial) block writes, per-disk
stuck-slow latency, and a simulated crash — and a :class:`FaultInjector`
realizes the plan against a :class:`~repro.core.disk.DiskArray`, either
by exact transfer index (``read_errors={3}`` fails the fourth read
attempt) or by seeded rate (``read_error_rate=0.01``).  Given the same
plan and the same sequence of transfers, the injected faults are
identical, so every chaos test is reproducible.

Install a plan with :meth:`repro.core.machine.Machine.inject_faults`::

    plan = FaultPlan(seed=7, read_error_rate=0.01, slow_disks={2: 3})
    with machine.inject_faults(plan) as injector:
        result = external_merge_sort(machine, stream)
    print(machine.stats().faults, injector.summary())
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence

from ..core.exceptions import (
    ConfigurationError,
    SimulatedCrash,
    TransientReadError,
    TransientWriteError,
)
from ..core.records import copy_payload


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of the faults to inject.

    Indices are 0-based and count *attempts* in device order:
    ``read_errors``/``write_errors`` index read/write attempts (a retried
    transfer is a new attempt, so a scheduled error is transient by
    construction); ``torn_writes`` indexes *performed* writes — the torn
    block is stored truncated while its checksum records the intended
    payload, so the tear only surfaces on a later read.

    Attributes:
        seed: seed for the rate-based draws.
        read_error_rate: per-read-attempt probability of a transient
            error.
        write_error_rate: per-write-attempt probability of a transient
            error.
        torn_write_rate: per-performed-write probability of tearing.
        read_errors: exact read-attempt indices that fail.
        write_errors: exact write-attempt indices that fail.
        torn_writes: exact performed-write indices that tear.
        fail_block_reads: ``block_id -> count`` of reads of that block
            that fail (``None`` count = every read fails, for
            retry-exhaustion tests).
        slow_disks: ``disk -> stall steps`` charged whenever a transfer
            wave touches that disk (a "stuck-slow" device).
        crash_after_writes: raise
            :class:`~repro.core.exceptions.SimulatedCrash` once this
            many writes have been performed (fires exactly once).
        torn_keep: fraction of the intended payload a torn write
            actually stores (a prefix; default half, at least one record
            short of the full block).
    """

    seed: int = 0
    read_error_rate: float = 0.0
    write_error_rate: float = 0.0
    torn_write_rate: float = 0.0
    read_errors: FrozenSet[int] = frozenset()
    write_errors: FrozenSet[int] = frozenset()
    torn_writes: FrozenSet[int] = frozenset()
    fail_block_reads: Dict[int, Optional[int]] = field(default_factory=dict)
    slow_disks: Dict[int, int] = field(default_factory=dict)
    crash_after_writes: Optional[int] = None
    torn_keep: float = 0.5

    def __post_init__(self):
        for name in ("read_error_rate", "write_error_rate",
                     "torn_write_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"{name} must be in [0, 1], got {rate}"
                )
        if not 0.0 <= self.torn_keep < 1.0:
            raise ConfigurationError(
                f"torn_keep must be in [0, 1), got {self.torn_keep}"
            )
        # Normalize the index collections so callers may pass any iterable.
        object.__setattr__(self, "read_errors", frozenset(self.read_errors))
        object.__setattr__(self, "write_errors",
                           frozenset(self.write_errors))
        object.__setattr__(self, "torn_writes", frozenset(self.torn_writes))


class FaultInjector:
    """Stateful realization of a :class:`FaultPlan` against one device.

    Created by :meth:`repro.core.machine.Machine.inject_faults`; the
    :class:`~repro.core.disk.DiskArray` consults it on every transfer.
    The injector never performs I/O itself — it only decides, counts,
    and (for torn writes) rewrites the payload the device will store.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.reads_checked = 0
        self.writes_checked = 0
        self.writes_performed = 0
        self.injected: Dict[str, int] = {
            "read-error": 0, "write-error": 0, "torn-write": 0, "crash": 0,
        }
        self._rng = random.Random(plan.seed)
        self._block_read_failures = dict(plan.fail_block_reads)
        self._crashed = False

    # ------------------------------------------------------------------
    # decisions (called by DiskArray)
    # ------------------------------------------------------------------
    def read_fault(self, block_id: int, disk: int):
        """Return the error the next read attempt of ``block_id`` should
        raise, or None.  Advances the read-attempt index."""
        index = self.reads_checked
        self.reads_checked += 1
        fail = index in self.plan.read_errors
        if not fail and block_id in self._block_read_failures:
            remaining = self._block_read_failures[block_id]
            if remaining is None:
                fail = True
            elif remaining > 0:
                self._block_read_failures[block_id] = remaining - 1
                fail = True
        if not fail and self.plan.read_error_rate:
            fail = self._rng.random() < self.plan.read_error_rate
        if fail:
            self.injected["read-error"] += 1
            return TransientReadError(block_id, disk)
        return None

    def write_fault(self, block_id: int, disk: int):
        """Return the error the next write attempt should raise, or
        None.  Raises :class:`SimulatedCrash` (exactly once) when the
        plan's crash point has been reached."""
        crash_at = self.plan.crash_after_writes
        if (crash_at is not None and not self._crashed
                and self.writes_performed >= crash_at):
            self._crashed = True
            self.injected["crash"] += 1
            raise SimulatedCrash(self.writes_performed)
        index = self.writes_checked
        self.writes_checked += 1
        fail = index in self.plan.write_errors
        if not fail and self.plan.write_error_rate:
            fail = self._rng.random() < self.plan.write_error_rate
        if fail:
            self.injected["write-error"] += 1
            return TransientWriteError(block_id, disk)
        return None

    def tear(self, block_id: int, disk: int,
             records: Sequence[Any]) -> Optional[Sequence[Any]]:
        """Return the truncated payload to store instead of ``records``,
        or None for a clean write.  Advances the performed-write index."""
        index = self.writes_performed
        self.writes_performed += 1
        torn = index in self.plan.torn_writes
        if not torn and self.plan.torn_write_rate:
            torn = self._rng.random() < self.plan.torn_write_rate
        if not torn or len(records) == 0:  # ndarray-safe emptiness
            return None
        keep = min(len(records) - 1, int(len(records) * self.plan.torn_keep))
        self.injected["torn-write"] += 1
        # Type-preserving prefix: a torn numpy block stays a (short)
        # numpy block, so a real-file backend persists a compact torn
        # image whose decode succeeds but whose checksum disagrees.
        return copy_payload(records[:max(0, keep)])

    def stall_penalty(self, disks: Iterable[int]) -> int:
        """Extra stall steps for a wave that touched ``disks``."""
        slow = self.plan.slow_disks
        if not slow:
            return 0
        return sum(slow.get(disk, 0) for disk in set(disks))

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, int]:
        """Counts of injected faults by kind (read-error, write-error,
        torn-write, crash)."""
        return dict(self.injected)

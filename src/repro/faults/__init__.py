"""Deterministic fault injection and recovery (``repro.faults``).

Three layers, mirroring how real external-memory systems survive bad
disks:

* **Injection** — a seeded :class:`~repro.faults.plan.FaultPlan`
  installed via :meth:`~repro.core.machine.Machine.inject_faults` makes
  the :class:`~repro.core.disk.DiskArray` raise transient read/write
  errors, tear block writes (persist a prefix only), stall "stuck-slow"
  disks, and crash after a fixed number of writes — all reproducible
  from the seed.
* **Retry** — :class:`~repro.faults.retry.RetryPolicy` (wired into the
  runtime's :class:`~repro.runtime.scheduler.IOScheduler`) re-issues
  transiently-failed waves with exponential backoff; backoff is charged
  as stall steps, never hidden.  Torn writes are *not* transient: they
  surface as :class:`~repro.core.exceptions.ChecksumError` at read time
  and must be repaired by rewriting (see the checkpointed sort's
  ``verify_outputs``).
* **Checkpoint/restart** — :class:`~repro.faults.checkpoint.SortManifest`
  and :func:`~repro.faults.checkpoint.checkpointed_merge_sort` commit a
  merge sort pass-by-pass so a crashed sort resumes from the last
  completed pass instead of restarting.

The checkpoint names are exposed lazily (module ``__getattr__``): the
retry policy is imported by the runtime while ``repro.core`` is still
initialising, and the checkpoint module needs the fully-built sort
stack, so importing it eagerly here would close an import cycle.
"""

from __future__ import annotations

from .plan import FaultInjector, FaultPlan
from .retry import RetryPolicy

_LAZY = ("SortManifest", "checkpointed_merge_sort")

__all__ = ["FaultInjector", "FaultPlan", "RetryPolicy", *_LAZY]


def __getattr__(name: str):
    if name in _LAZY:
        from . import checkpoint
        return getattr(checkpoint, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )

"""Baseline workflow: fail CI only on *new* findings.

A baseline file is JSON: ``{"version": 1, "fingerprints": {fp: info}}``
where ``fp`` is the same stable fingerprint SARIF output carries in
``partialFingerprints`` (rule + path + number-masked message).  Known
findings are filtered out of the gate; fixing a finding simply leaves a
stale entry that ``--write-baseline`` prunes on the next refresh.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Tuple

from ..emlint import Finding
from .sarif import fingerprint

BASELINE_VERSION = 1


def write_baseline(findings: Iterable[Finding], path: str) -> int:
    """Record the given (unwaived) findings as accepted; returns the
    number of entries written."""
    entries: Dict[str, Dict[str, object]] = {}
    for finding in findings:
        entries[fingerprint(finding)] = {
            "rule": finding.rule,
            "path": finding.path.replace("\\", "/"),
            "message": finding.message,
        }
    payload = {"version": BASELINE_VERSION, "fingerprints": entries}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(entries)


def load_baseline(path: str) -> Dict[str, Dict[str, object]]:
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) \
            or payload.get("version") != BASELINE_VERSION:
        raise ValueError(f"unrecognized baseline file {path!r}")
    return dict(payload.get("fingerprints", {}))


def split_by_baseline(findings: Iterable[Finding], path: str
                      ) -> Tuple[List[Finding], List[Finding]]:
    """(new, known) partition of ``findings`` against the baseline."""
    known_fps = load_baseline(path)
    new: List[Finding] = []
    known: List[Finding] = []
    for finding in findings:
        if fingerprint(finding) in known_fps:
            known.append(finding)
        else:
            new.append(finding)
    return new, known

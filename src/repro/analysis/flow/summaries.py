"""Project model: function index, call graph and taint summaries.

The flow engine works on a :class:`Project`: every function in the
analyzed tree gets a :class:`FunctionInfo` with syntactic facts
(budget ``acquire``/``release`` sites, stream-typed locals, call
sites), and a fixpoint pass turns those into per-function *summaries*
that the EM100-series rules consume:

* ``scans_params`` — parameter indexes the function fully iterates
  (directly, or by passing them on to a callee that does);
* ``materializes_params`` — parameter indexes that reach a RAM
  materializer (``list``/``sorted``/... , EM001's sinks) in this
  function or transitively in a callee;
* ``returns_stream`` — the return value is a (finalized) stream;
* ``net_hold_params`` — parameter indexes whose memory budget is still
  held when the function returns (ownership transfers to the caller);
* per-class: ``instance_holds`` (the constructor acquires budget that
  only ``close``/``delete``/... releases later) and the set of
  releasing method names.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..emlint import classify
from ..rules import MATERIALIZERS, STREAM_CLASSES, STREAM_RETURNING
from .cfg import CFG, build_cfg

#: methods that produce a full scan of the receiver's stream
STREAM_METHODS = {"scan", "rows", "stream", "records", "entries"}

#: method names that conventionally give budget back
RELEASING_NAMES = {"close", "delete", "finalize", "release", "clear",
                   "sync", "shutdown", "__exit__"}


def expr_key(node: ast.AST) -> str:
    """Canonical text for an attribute chain (``machine.budget``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return f"{expr_key(node.value)}.{node.attr}"
    if isinstance(node, ast.Call):
        return f"{expr_key(node.func)}()"
    return ast.dump(node)


class AcquireSite:
    __slots__ = ("node_index", "key", "amount", "lineno", "kind")

    def __init__(self, node_index: int, key: str, amount: Optional[ast.AST],
                 lineno: int, kind: str) -> None:
        self.node_index = node_index
        self.key = key          # canonical budget expression
        self.amount = amount    # first argument AST (may be None)
        self.lineno = lineno
        self.kind = kind        # "acquire" | "reserve"


class ReleaseSite:
    __slots__ = ("node_index", "key", "lineno")

    def __init__(self, node_index: int, key: str, lineno: int) -> None:
        self.node_index = node_index
        self.key = key
        self.lineno = lineno


class CallSite:
    __slots__ = ("node_index", "call", "lineno", "callee", "bound_self")

    def __init__(self, node_index: int, call: ast.Call, lineno: int,
                 callee: Optional["FunctionInfo"],
                 bound_self: Optional[str]) -> None:
        self.node_index = node_index
        self.call = call
        self.lineno = lineno
        self.callee = callee          # resolved project function, if any
        self.bound_self = bound_self  # receiver text for method calls


class ClassInfo:
    def __init__(self, name: str, module: "ModuleInfo") -> None:
        self.name = name
        self.module = module
        self.methods: Dict[str, FunctionInfo] = {}
        self.instance_holds = False
        self.releasing_methods: Set[str] = set()
        self.is_context_manager = False
        #: instance attribute -> project class name, from constructor
        #: assignments like ``self.blocks = BlockFile(...)``
        self.attr_types: Dict[str, str] = {}


class FunctionInfo:
    def __init__(self, node: ast.AST, module: "ModuleInfo",
                 cls: Optional[ClassInfo]) -> None:
        self.node = node
        self.module = module
        self.cls = cls
        self.name = node.name
        self.qualname = (f"{cls.name}.{node.name}" if cls else node.name)
        self.path = module.path
        args = node.args
        self.params: List[str] = (
            [a.arg for a in getattr(args, "posonlyargs", [])]
            + [a.arg for a in args.args])
        self.decorators: Set[str] = {
            _decorator_name(d) for d in node.decorator_list}
        self._cfg: Optional[CFG] = None
        # syntactic facts, filled by Project._index_function
        self.acquires: List[AcquireSite] = []
        #: ``with budget.reserve(n):`` sites — safe for EM101 (released
        #: by construction) but still inspected by EM104
        self.with_reserves: List[AcquireSite] = []
        self.releases: List[ReleaseSite] = []
        self.calls: List[CallSite] = []
        self.aliases: Dict[str, str] = {}      # name -> attribute chain
        self.stream_names: Set[str] = set()
        self.local_types: Dict[str, str] = {}  # name -> class name
        #: subset of local_types that are *constructed here* (not
        #: annotated parameters): what EM105 cares about
        self.constructed_types: Dict[str, str] = {}
        # summaries (fixpoint)
        self.scans_params: Set[int] = set()
        self.materializes_params: Set[int] = set()
        self.returns_stream = False
        self.net_hold_params: Set[int] = set()
        #: param index -> human-readable evidence ("list() at x.py:12",
        #: possibly a chain through further callees)
        self.materialize_evidence: Dict[int, str] = {}
        self.scan_evidence: Dict[int, str] = {}

    @property
    def cfg(self) -> CFG:
        if self._cfg is None:
            self._cfg = build_cfg(self.node)
        return self._cfg

    def display(self) -> str:
        return f"{self.module.name}.{self.qualname}"

    def canonical_key(self, key: str) -> str:
        """Expand one level of local aliasing: ``budget`` assigned from
        ``machine.budget`` canonicalizes to the attribute chain."""
        root = key.split(".", 1)
        if root[0] in self.aliases:
            rest = ("." + root[1]) if len(root) > 1 else ""
            return self.aliases[root[0]] + rest
        return key


def _decorator_name(node: ast.AST) -> str:
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


class ModuleInfo:
    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.kind = classify(path)
        self.name = path.replace("\\", "/").rsplit("/", 1)[-1][:-3]
        self.functions: Dict[str, FunctionInfo] = {}  # qualname -> info
        self.classes: Dict[str, ClassInfo] = {}
        self.imports: Dict[str, str] = {}  # local name -> imported name


class Project:
    """Everything the EM100 rules need about the analyzed tree."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        #: bare function name -> infos across modules (for import-based
        #: resolution; project-wide names are effectively unique)
        self.functions_by_name: Dict[str, List[FunctionInfo]] = {}
        self.classes_by_name: Dict[str, List[ClassInfo]] = {}

    # -- construction -------------------------------------------------

    @classmethod
    def build(cls, sources: Iterable[Tuple[str, str]]) -> "Project":
        """``sources`` is (path, source text) pairs."""
        project = cls()
        for path, source in sources:
            try:
                tree = ast.parse(source)
            except SyntaxError:
                continue
            module = ModuleInfo(path, source, tree)
            project.modules[path] = module
            project._collect_defs(module)
        for module in project.modules.values():
            for func in module.functions.values():
                project._index_function(func)
        for module in project.modules.values():
            for func in module.functions.values():
                project._resolve_calls(func)
        project._class_protocols()
        project._fixpoint()
        return project

    def _collect_defs(self, module: ModuleInfo) -> None:
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.Import, ast.ImportFrom)):
                for alias in stmt.names:
                    local = alias.asname or alias.name.split(".")[0]
                    module.imports[local] = alias.name
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(stmt, module, None)
                module.functions[info.qualname] = info
                self.functions_by_name.setdefault(
                    info.name, []).append(info)
            elif isinstance(stmt, ast.ClassDef):
                cinfo = ClassInfo(stmt.name, module)
                module.classes[stmt.name] = cinfo
                self.classes_by_name.setdefault(
                    stmt.name, []).append(cinfo)
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)):
                        finfo = FunctionInfo(sub, module, cinfo)
                        module.functions[finfo.qualname] = finfo
                        cinfo.methods[finfo.name] = finfo

    # -- per-function facts -------------------------------------------

    def _index_function(self, func: FunctionInfo) -> None:
        cfg = func.cfg
        # aliases / stream names / local constructor types first, from
        # plain assignments anywhere in the body
        for node in walk_shallow(func.node):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                # ``with C(...) as name`` binds ``name`` to a C for the
                # block's duration; record the type so receiver-based
                # contracts (cost tier) resolve.  Deliberately *not*
                # added to constructed_types: __exit__ owns the
                # cleanup, so lifecycle rules have nothing to track.
                for item in node.items:
                    var = item.optional_vars
                    expr = item.context_expr
                    if (isinstance(var, ast.Name)
                            and isinstance(expr, ast.Call)):
                        head = _call_head(expr)
                        if head and head in self.classes_by_name:
                            func.local_types.setdefault(var.id, head)
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                value = node.value
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and func.cls is not None
                        and isinstance(value, ast.Call)):
                    head = _call_head(value)
                    if head and head in self.classes_by_name:
                        func.cls.attr_types[target.attr] = head
                if not isinstance(target, ast.Name):
                    continue
                if isinstance(value, ast.Attribute):
                    func.aliases[target.id] = expr_key(value)
                elif isinstance(value, ast.Call):
                    head = _call_head(value)
                    if head in STREAM_CLASSES or head in STREAM_RETURNING:
                        func.stream_names.add(target.id)
                    if head == "finalize":
                        func.stream_names.add(target.id)
                    if head and head in self.classes_by_name:
                        func.local_types[target.id] = head
                        func.constructed_types[target.id] = head
        for param in func.params:
            if param == "stream" or param.endswith("_stream"):
                func.stream_names.add(param)
        # annotation-driven types and streams
        for arg in (getattr(func.node.args, "posonlyargs", [])
                    + func.node.args.args):
            ann = arg.annotation
            head = None
            if isinstance(ann, ast.Name):
                head = ann.id
            elif isinstance(ann, ast.Attribute):
                head = ann.attr
            elif isinstance(ann, ast.Constant) and isinstance(
                    ann.value, str):
                head = ann.value.split("[")[0].split(".")[-1].strip()
            if head in STREAM_CLASSES:
                func.stream_names.add(arg.arg)
            if head and head in self.classes_by_name:
                func.local_types[arg.arg] = head

        # CFG-anchored facts: budget operations and call sites.  Nested
        # function/class definitions are separate units — their bodies
        # must not be attributed to this function's CFG node.
        for node in cfg.stmt_nodes():
            if node.stmt is None or isinstance(
                    node.stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.ClassDef)):
                continue
            for call in _calls_in(node.stmt):
                fn = call.func
                if isinstance(fn, ast.Attribute):
                    key = func.canonical_key(expr_key(fn.value))
                    if fn.attr in ("acquire", "reserve"):
                        amount = call.args[0] if call.args else None
                        site = AcquireSite(node.index, key, amount,
                                           call.lineno, fn.attr)
                        if fn.attr == "reserve" and _inside_with_item(
                                func.node, call):
                            # ``with budget.reserve(n):`` releases by
                            # construction; not an EM101 acquire site
                            func.with_reserves.append(site)
                        else:
                            func.acquires.append(site)
                    elif fn.attr == "release":
                        func.releases.append(ReleaseSite(
                            node.index, key, call.lineno))
                func.calls.append(CallSite(
                    node.index, call, call.lineno, None, None))

    def _resolve_calls(self, func: FunctionInfo) -> None:
        module = func.module
        for site in func.calls:
            fn = site.call.func
            if isinstance(fn, ast.Name):
                site.callee = self._resolve_name(fn.id, module)
            elif isinstance(fn, ast.Attribute):
                site.bound_self = expr_key(fn.value)
                receiver_cls = self._receiver_class(func, fn.value)
                if receiver_cls is not None:
                    site.callee = receiver_cls.methods.get(fn.attr)

    def _resolve_name(self, name: str,
                      module: ModuleInfo) -> Optional[FunctionInfo]:
        if name in module.functions:
            return module.functions[name]
        if name in module.classes:
            return module.classes[name].methods.get("__init__")
        if name in module.imports or name in self.functions_by_name \
                or name in self.classes_by_name:
            infos = self.functions_by_name.get(name, [])
            if len(infos) == 1:
                return infos[0]
            classes = self.classes_by_name.get(name, [])
            if len(classes) == 1:
                return classes[0].methods.get("__init__")
        return None

    def _receiver_class(self, func: FunctionInfo,
                        receiver: ast.AST) -> Optional[ClassInfo]:
        if isinstance(receiver, ast.Name):
            if receiver.id == "self" and func.cls is not None:
                return func.cls
            cls_name = func.local_types.get(receiver.id)
            if cls_name:
                classes = self.classes_by_name.get(cls_name, [])
                if len(classes) == 1:
                    return classes[0]
            if receiver.id in self.classes_by_name:
                classes = self.classes_by_name[receiver.id]
                if len(classes) == 1:
                    return classes[0]
        if (isinstance(receiver, ast.Attribute)
                and isinstance(receiver.value, ast.Name)
                and receiver.value.id == "self"
                and func.cls is not None):
            cls_name = func.cls.attr_types.get(receiver.attr)
            if cls_name:
                classes = self.classes_by_name.get(cls_name, [])
                if len(classes) == 1:
                    return classes[0]
        return None

    # -- class protocols ----------------------------------------------

    def _class_protocols(self) -> None:
        for classes in self.classes_by_name.values():
            for cinfo in classes:
                for name, method in cinfo.methods.items():
                    if method.releases:
                        cinfo.releasing_methods.add(name)
                if "__exit__" in cinfo.methods:
                    self_exit = cinfo.methods["__exit__"]
                    cinfo.is_context_manager = True
                    # __exit__ that calls a releasing method counts
                    for site in self_exit.calls:
                        fnc = site.call.func
                        if (isinstance(fnc, ast.Attribute)
                                and fnc.attr in cinfo.releasing_methods):
                            cinfo.releasing_methods.add("__exit__")
                init = cinfo.methods.get("__init__")
                if init is not None and init.acquires:
                    # held at the end of __init__ if no matching release
                    # runs inside __init__ itself
                    released = {r.key for r in init.releases}
                    for site in init.acquires:
                        if site.key not in released:
                            cinfo.instance_holds = True

    # -- fixpoint summaries -------------------------------------------

    def _fixpoint(self) -> None:
        all_funcs = [f for m in self.modules.values()
                     for f in m.functions.values()]
        for func in all_funcs:
            self._seed_summary(func)
        changed = True
        rounds = 0
        while changed and rounds < 20:
            changed = False
            rounds += 1
            for func in all_funcs:
                if self._propagate(func):
                    changed = True

    def _seed_summary(self, func: FunctionInfo) -> None:
        params = {name: i for i, name in enumerate(func.params)}
        for node in walk_shallow(func.node):
            # direct scans: for x in P / comprehensions over P
            targets: List[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                targets.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.DictComp, ast.GeneratorExp)):
                targets.extend(g.iter for g in node.generators)
            for it in targets:
                name = it.id if isinstance(it, ast.Name) else None
                if name in params:
                    func.scans_params.add(params[name])
                    func.scan_evidence.setdefault(
                        params[name],
                        f"loop at {func.path}:{node.lineno}")
            # direct materialization: list(P), sorted(P), ...
            if isinstance(node, ast.Call):
                head = _call_head(node)
                if head in MATERIALIZERS and node.args:
                    arg = node.args[0]
                    if isinstance(arg, ast.Name) and arg.id in params:
                        func.materializes_params.add(params[arg.id])
                        func.materialize_evidence.setdefault(
                            params[arg.id],
                            f"{head}() at {func.path}:{node.lineno}")
            # returns_stream seed
            if isinstance(node, ast.Return) and node.value is not None:
                value = node.value
                if isinstance(value, ast.Call):
                    head = _call_head(value)
                    if head in STREAM_RETURNING or head in STREAM_CLASSES:
                        func.returns_stream = True
                if isinstance(value, ast.Name) \
                        and value.id in func.stream_names:
                    func.returns_stream = True
        # net budget holder: acquires a param's budget, no release of
        # that key anywhere in the function (or its class)
        class_release_keys: Set[str] = set()
        if func.cls is not None:
            for method in func.cls.methods.values():
                class_release_keys.update(r.key for r in method.releases)
        local_release_keys = {r.key for r in func.releases}
        for site in func.acquires:
            if site.key in local_release_keys \
                    or site.key in class_release_keys:
                continue
            root = site.key.split(".")[0]
            if root in params:
                func.net_hold_params.add(params[root])

    def _propagate(self, func: FunctionInfo) -> bool:
        """One round of interprocedural propagation through call sites."""
        changed = False
        params = {name: i for i, name in enumerate(func.params)}
        for site in func.calls:
            callee = site.callee
            if callee is None:
                continue
            for j, arg in enumerate(_positional_args(site)):
                if not isinstance(arg, ast.Name) or arg.id not in params:
                    continue
                i = params[arg.id]
                if j in callee.scans_params \
                        and i not in func.scans_params:
                    func.scans_params.add(i)
                    func.scan_evidence[i] = (
                        f"via {callee.display()}() at "
                        f"{func.path}:{site.lineno} -> "
                        + callee.scan_evidence.get(j, "scan"))
                    changed = True
                if j in callee.materializes_params \
                        and i not in func.materializes_params:
                    func.materializes_params.add(i)
                    func.materialize_evidence[i] = (
                        f"via {callee.display()}() at "
                        f"{func.path}:{site.lineno} -> "
                        + callee.materialize_evidence.get(
                            j, "materialization"))
                    changed = True
            # returns_stream through project calls
        for node in walk_shallow(func.node):
            if isinstance(node, ast.Return) and isinstance(
                    node.value, ast.Call):
                callee = self._callee_of_call(func, node.value)
                if callee is not None and callee.returns_stream \
                        and not func.returns_stream:
                    func.returns_stream = True
                    changed = True
        return changed

    def _callee_of_call(self, func: FunctionInfo,
                        call: ast.Call) -> Optional[FunctionInfo]:
        for site in func.calls:
            if site.call is call:
                return site.callee
        return None


def _call_head(call: ast.Call) -> Optional[str]:
    fn = call.func
    if isinstance(fn, ast.Name):
        return fn.id
    if isinstance(fn, ast.Attribute):
        return fn.attr
    return None


def walk_shallow(node: ast.AST) -> List[ast.AST]:
    """Like ``ast.walk`` but does not descend into nested function or
    class definitions (which are their own analysis units)."""
    out: List[ast.AST] = []
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.ClassDef, ast.Lambda)):
            continue
        out.append(child)
        stack.extend(ast.iter_child_nodes(child))
    return out


def _calls_in(stmt: ast.stmt) -> List[ast.Call]:
    """Calls belonging to *this* CFG node.  Compound statements only
    own their header expressions — their bodies have their own nodes."""
    roots: List[ast.AST]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        roots = [stmt.iter]
    elif isinstance(stmt, (ast.While, ast.If)):
        roots = [stmt.test]
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        roots = [item.context_expr for item in stmt.items]
    elif isinstance(stmt, (ast.Try, ast.FunctionDef,
                           ast.AsyncFunctionDef, ast.ClassDef)):
        return []
    else:
        roots = [stmt]
    calls: List[ast.Call] = []
    for root in roots:
        if isinstance(root, ast.Call):
            calls.append(root)
        calls += [n for n in walk_shallow(root)
                  if isinstance(n, ast.Call)]
    return calls


def _positional_args(site: CallSite) -> List[Optional[ast.AST]]:
    """Positional args aligned to the callee's parameter list (the
    method receiver — explicit or implied by a constructor call —
    becomes parameter 0; keyword args land at their parameter index)."""
    callee = site.callee
    args: List[Optional[ast.AST]] = list(site.call.args)
    if callee is not None and callee.params \
            and callee.params[0] == "self":
        if site.bound_self is not None and "." not in site.bound_self:
            recv: Optional[ast.AST] = ast.Name(id=site.bound_self)
        else:
            recv = None
        args = [recv] + args
    if callee is not None:
        index = {name: i for i, name in enumerate(callee.params)}
        for kw in site.call.keywords:
            if kw.arg in index:
                i = index[kw.arg]
                while len(args) <= i:
                    args.append(None)
                args[i] = kw.value
    return args


def _inside_with_item(func_node: ast.AST, call: ast.Call) -> bool:
    """Is ``call`` the context expression of a ``with`` item?"""
    for node in ast.walk(func_node):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.context_expr is call:
                    return True
    return False

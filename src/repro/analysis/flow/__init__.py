"""Interprocedural budget- and stream-dataflow analysis (EM100 rules).

Public surface:

* :func:`lint_paths_flow` / :func:`lint_sources_flow` — run the
  combined per-line + whole-program lint;
* :func:`build_cfg` — per-function control-flow graphs;
* :class:`Project` — call graph + taint summaries;
* :func:`to_sarif` — SARIF 2.1.0 output;
* baseline helpers (:func:`write_baseline`, :func:`split_by_baseline`).
"""

from .baseline import load_baseline, split_by_baseline, write_baseline
from .cfg import CFG, build_cfg
from .engine import lint_paths_flow, lint_sources_flow
from .sarif import fingerprint, to_sarif
from .summaries import Project

__all__ = [
    "CFG",
    "Project",
    "build_cfg",
    "fingerprint",
    "lint_paths_flow",
    "lint_sources_flow",
    "load_baseline",
    "split_by_baseline",
    "to_sarif",
    "write_baseline",
]

"""Driver for ``emlint --flow``: whole-program lint over a file set.

Runs the per-line rules (EM001-EM007) per file, builds the
:class:`~repro.analysis.flow.summaries.Project` once over every file,
runs the EM100-series checks, then applies waivers across the combined
finding set.  Waiver *usage* is judged against the full rule universe
here, so a waiver that only suppresses a flow rule is not flagged as
dead during a flow run (and is left alone during per-line-only runs).

The per-file stage (parse + per-line rules + waiver extraction) is
embarrassingly parallel; ``jobs > 1`` fans it out over a process pool
(``emlint --jobs N``).  The project build and the interprocedural
checks stay whole-program and single-process.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from ..emlint import (
    Finding, Waiver, classify, finish_findings, iter_python_files,
    parse_waivers, static_findings,
)
from ..rules import FLOW_RULES, RULES
from .checks import run_checks
from .summaries import Project

#: per-file result triple: (findings, waivers, waiver findings)
PerFile = Tuple[List[Finding], List[Waiver], List[Finding]]


def _per_file(item: Tuple[str, str]) -> Tuple[str, PerFile]:
    path, source = item
    findings = static_findings(source, path)
    waivers, waiver_findings = parse_waivers(source, path)
    return path, (findings, waivers, waiver_findings)


def collect_per_file(sources: List[Tuple[str, str]],
                     jobs: int = 1) -> Dict[str, PerFile]:
    """The per-file stage for every non-exempt source, optionally over
    a process pool."""
    work = [(path, source) for path, source in sources
            if classify(path) != "exempt"]
    if jobs > 1 and len(work) > 1:
        import multiprocessing

        with multiprocessing.Pool(min(jobs, len(work))) as pool:
            results = pool.map(_per_file, work)
    else:
        results = [_per_file(item) for item in work]
    return dict(results)


def lint_paths_flow(paths: Iterable[str],
                    jobs: int = 1) -> List[Finding]:
    """Lint with both rule families; returns all findings with waived
    ones marked, sorted by (path, line, col, rule)."""
    files = list(iter_python_files(paths))
    sources: List[Tuple[str, str]] = []
    for path in files:
        with open(path, "r", encoding="utf-8") as handle:
            sources.append((path, handle.read()))
    return lint_sources_flow(sources, jobs=jobs)


def lint_sources_flow(sources: List[Tuple[str, str]],
                      jobs: int = 1) -> List[Finding]:
    """Same as :func:`lint_paths_flow` for in-memory (path, source)
    pairs — the unit tests' entry point."""
    per_file = collect_per_file(sources, jobs=jobs)

    project = Project.build(
        [(path, source) for path, source in sources
         if classify(path) != "exempt"])
    for finding in run_checks(project):
        if finding.path in per_file:
            per_file[finding.path][0].append(finding)
        else:  # pragma: no cover - checks only emit for known files
            per_file.setdefault(
                finding.path, ([], [], []))[0].append(finding)

    active_rules = set(RULES) | set(FLOW_RULES)
    combined: List[Finding] = []
    for path, (findings, waivers, waiver_findings) in per_file.items():
        combined.extend(finish_findings(
            findings, waivers, waiver_findings, path, active_rules))
    combined.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return combined

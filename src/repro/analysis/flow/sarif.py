"""SARIF 2.1.0 output for emlint findings.

One run, one driver (``emlint``), full rule metadata, one result per
finding.  Waived findings are emitted as suppressed results
(``suppressions: [{kind: inSource}]``) so SARIF viewers show the
documented exceptions without failing the gate.  Interprocedural
traces land both in the message and as ``codeFlows`` locations when
line information can be recovered from the trace text.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List

from ..emlint import Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")

_TRACE_LOC_RE = re.compile(r"([\w./\\-]+\.py):(\d+)")


def _rule_metadata(rules: Dict[str, str]) -> List[Dict[str, object]]:
    out = []
    for rule_id in sorted(rules):
        out.append({
            "id": rule_id,
            "shortDescription": {"text": rules[rule_id]},
            "defaultConfiguration": {"level": "error"},
        })
    return out


def _result(finding: Finding) -> Dict[str, object]:
    result: Dict[str, object] = {
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": finding.path.replace("\\", "/"),
                },
                "region": {
                    "startLine": max(finding.line, 1),
                    "startColumn": max(finding.col, 1),
                    "endLine": max(finding.end_line, finding.line, 1),
                },
            },
        }],
        "partialFingerprints": {
            "emlintFingerprint/v1": fingerprint(finding),
        },
    }
    if finding.waived:
        result["suppressions"] = [{
            "kind": "inSource",
            "justification": finding.waiver_reason,
        }]
    if finding.trace:
        locations = []
        for hop in finding.trace:
            match = _TRACE_LOC_RE.search(hop)
            if not match:
                continue
            locations.append({
                "location": {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": match.group(1).replace("\\", "/"),
                        },
                        "region": {
                            "startLine": int(match.group(2)),
                        },
                    },
                    "message": {"text": hop},
                },
            })
        if locations:
            result["codeFlows"] = [{
                "threadFlows": [{"locations": locations}],
            }]
    return result


def to_sarif(findings: Iterable[Finding],
             rules: Dict[str, str],
             tool_version: str = "0.2.0") -> Dict[str, object]:
    """Assemble the SARIF 2.1.0 log object (JSON-serializable dict)."""
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "emlint",
                    "informationUri": (
                        "https://example.invalid/emlint"),
                    "version": tool_version,
                    "rules": _rule_metadata(rules),
                },
            },
            "results": [_result(f) for f in findings],
        }],
    }


def fingerprint(finding: Finding) -> str:
    """Stable identity for baselining: rule + path + the message with
    line/column numbers masked, so findings survive unrelated edits
    that shift line numbers."""
    import hashlib

    masked = re.sub(r"\d+", "#", finding.message)
    payload = "|".join((finding.rule,
                        finding.path.replace("\\", "/"), masked))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]

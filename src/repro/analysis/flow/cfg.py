"""Per-function control-flow graphs built from ``ast``.

The graph is statement-granular: every simple statement and every
compound-statement header (``if`` test, ``for`` iterator, ``while``
test, ``with`` items) becomes one node.  Three synthetic nodes frame the
function: ENTRY, EXIT (normal return / fall-off) and EXC_EXIT (an
exception escaping the function).

Exception edges are what make the graph useful for leak analysis: any
statement that contains a call (or ``raise`` / ``assert``) gets an edge
to the innermost enclosing handler chain, threading through ``finally``
bodies, and ultimately to EXC_EXIT when nothing catches.  ``finally``
bodies are duplicated per continuation kind (normal, exceptional,
return/break/continue) so a ``release`` in a ``finally`` absorbs the
exceptional path without creating false normal-to-exceptional paths.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

ENTRY = "entry"
EXIT = "exit"
EXC_EXIT = "exc_exit"
STMT = "stmt"
JUNCTION = "junction"  # synthetic per-try exception collector


class Node:
    __slots__ = ("index", "kind", "stmt", "lineno", "label")

    def __init__(self, index: int, kind: str,
                 stmt: Optional[ast.AST] = None, label: str = "") -> None:
        self.index = index
        self.kind = kind
        self.stmt = stmt
        self.lineno = getattr(stmt, "lineno", 0)
        self.label = label or kind

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.index} {self.label} L{self.lineno}>"


class CFG:
    """A statement-level control-flow graph for one function body."""

    def __init__(self) -> None:
        self.nodes: List[Node] = []
        self.succ: Dict[int, Set[int]] = {}
        #: subset of ``succ`` edges that model exception propagation
        self.exc_succ: Dict[int, Set[int]] = {}
        self.entry = self._new(ENTRY).index
        self.exit = self._new(EXIT).index
        self.exc_exit = self._new(EXC_EXIT).index

    def _new(self, kind: str, stmt: Optional[ast.AST] = None,
             label: str = "") -> Node:
        node = Node(len(self.nodes), kind, stmt, label)
        self.nodes.append(node)
        self.succ[node.index] = set()
        self.exc_succ[node.index] = set()
        return node

    def add_edge(self, src: int, dst: int, exceptional: bool = False) -> None:
        self.succ[src].add(dst)
        if exceptional:
            self.exc_succ[src].add(dst)

    def stmt_nodes(self) -> List[Node]:
        return [n for n in self.nodes if n.kind == STMT]

    def reachable(self, starts: Sequence[int],
                  removed: Set[int]) -> Set[int]:
        """Nodes reachable from ``starts`` when ``removed`` nodes (and
        their outgoing edges) are deleted from the graph."""
        seen: Set[int] = set()
        stack = [s for s in starts if s not in removed]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            for nxt in self.succ[node]:
                if nxt not in removed and nxt not in seen:
                    stack.append(nxt)
        return seen

    def find_path(self, start: int, goal: int,
                  removed: Set[int]) -> List[int]:
        """One concrete path from ``start`` to ``goal`` avoiding
        ``removed`` nodes, for finding traces.  Empty when unreachable."""
        if start in removed:
            return []
        parents: Dict[int, int] = {start: start}
        queue = [start]
        while queue:
            node = queue.pop(0)
            if node == goal:
                path = [node]
                while parents[node] != node:
                    node = parents[node]
                    path.append(node)
                return list(reversed(path))
            for nxt in sorted(self.succ[node]):
                if nxt not in removed and nxt not in parents:
                    parents[nxt] = node
                    queue.append(nxt)
        return []


def _can_raise(stmt: ast.stmt) -> bool:
    """Conservative: statements that may transfer to a handler."""
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call):
            return True
        # yield hands control out; the generator may never be resumed,
        # but GC-driven close() runs finally blocks, which is the same
        # path an exception would take.
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
    return False


class _Scope:
    """One entry of the builder's lexical stack."""

    TRY = "try"
    LOOP = "loop"

    def __init__(self, kind: str) -> None:
        self.kind = kind
        # TRY fields
        self.junction: int = -1          # exception collector node
        self.finally_body: List[ast.stmt] = []
        # LOOP fields
        self.header: int = -1
        self.after_frontier: List[int] = []


class Builder:
    """Builds a :class:`CFG` from a function definition."""

    def __init__(self, func: ast.AST) -> None:
        self.func = func
        self.cfg = CFG()
        self.scopes: List[_Scope] = []

    def build(self) -> CFG:
        body = list(getattr(self.func, "body", []))
        frontier = self._block(body, [self.cfg.entry])
        for node in frontier:
            self.cfg.add_edge(node, self.cfg.exit)
        return self.cfg

    # -- scope helpers ------------------------------------------------

    def _exception_target(self, from_scope: int) -> int:
        """Where an exception raised at scope depth ``from_scope`` goes:
        the innermost try junction below that depth, else EXC_EXIT."""
        for scope in reversed(self.scopes[:from_scope]):
            if scope.kind == _Scope.TRY:
                return scope.junction
        return self.cfg.exc_exit

    # -- statement dispatch -------------------------------------------

    def _block(self, stmts: Sequence[ast.stmt],
               frontier: List[int]) -> List[int]:
        """Wire ``stmts`` sequentially.  ``frontier`` is the set of
        predecessor nodes flowing in.  Returns the outgoing frontier
        (empty when the block cannot fall through)."""
        current: Optional[List[int]] = list(frontier)
        for stmt in stmts:
            _entry, current = self._stmt(stmt, current)
            if current is None:
                # unreachable code after return/raise/...: still build
                # nodes (they may hold waivable constructs) but with no
                # incoming edges
                current = []
        return current if current is not None else []

    def _stmt(self, stmt: ast.stmt,
              frontier: Optional[List[int]]
              ) -> Tuple[List[int], Optional[List[int]]]:
        """Wire one statement.  Returns (entry nodes, out frontier);
        out frontier ``None`` means control never falls through."""
        handler = getattr(self, f"_stmt_{type(stmt).__name__}", None)
        if handler is not None:
            return handler(stmt, frontier)
        return self._simple(stmt, frontier)

    def _join(self, node: Node, frontier: Optional[List[int]]) -> None:
        for pred in frontier or []:
            self.cfg.add_edge(pred, node.index)

    def _wire_raise(self, node: Node) -> None:
        target = self._exception_target(len(self.scopes))
        self.cfg.add_edge(node.index, target, exceptional=True)

    def _simple(self, stmt: ast.stmt,
                frontier: Optional[List[int]]
                ) -> Tuple[List[int], Optional[List[int]]]:
        node = self.cfg._new(STMT, stmt, type(stmt).__name__)
        self._join(node, frontier)
        if _can_raise(stmt):
            self._wire_raise(node)
        return [node.index], [node.index]

    # simple statements with special continuations -------------------

    def _stmt_Return(self, stmt: ast.Return, frontier):
        node = self.cfg._new(STMT, stmt, "Return")
        self._join(node, frontier)
        if _can_raise(stmt):
            self._wire_raise(node)
        self._finish_unwind(node.index, "func")
        return [node.index], None

    def _finish_unwind(self, from_node: int, stop: str,
                       loop_target: str = "") -> None:
        """Wire ``from_node`` through finally copies to its target."""
        frontier: List[int] = [from_node]
        for i in range(len(self.scopes) - 1, -1, -1):
            scope = self.scopes[i]
            if scope.kind == _Scope.LOOP and stop == "loop":
                for node in frontier:
                    if loop_target == "break":
                        scope.after_frontier.append(node)
                    else:
                        self.cfg.add_edge(node, scope.header)
                return
            if scope.kind == _Scope.TRY and scope.finally_body:
                saved = self.scopes
                self.scopes = self.scopes[:i]
                frontier = self._block(scope.finally_body, frontier)
                self.scopes = saved
                if not frontier:
                    return  # finally body itself never falls through
        if stop == "func":
            for node in frontier:
                self.cfg.add_edge(node, self.cfg.exit)

    def _stmt_Raise(self, stmt: ast.Raise, frontier):
        node = self.cfg._new(STMT, stmt, "Raise")
        self._join(node, frontier)
        self._wire_raise(node)
        return [node.index], None

    def _stmt_Break(self, stmt: ast.Break, frontier):
        node = self.cfg._new(STMT, stmt, "Break")
        self._join(node, frontier)
        self._finish_unwind(node.index, "loop", "break")
        return [node.index], None

    def _stmt_Continue(self, stmt: ast.Continue, frontier):
        node = self.cfg._new(STMT, stmt, "Continue")
        self._join(node, frontier)
        self._finish_unwind(node.index, "loop", "continue")
        return [node.index], None

    # compound statements --------------------------------------------

    def _stmt_If(self, stmt: ast.If, frontier):
        node = self.cfg._new(STMT, stmt, "If")
        self._join(node, frontier)
        if _can_raise(ast.Expr(value=stmt.test)):
            self._wire_raise(node)
        then_out = self._block(stmt.body, [node.index])
        if stmt.orelse:
            else_out = self._block(stmt.orelse, [node.index])
        else:
            else_out = [node.index]
        return [node.index], then_out + else_out

    def _loop(self, stmt, header_label: str, frontier):
        node = self.cfg._new(STMT, stmt, header_label)
        self._join(node, frontier)
        self._wire_raise(node)  # iterator / test may raise
        scope = _Scope(_Scope.LOOP)
        scope.header = node.index
        self.scopes.append(scope)
        body_out = self._block(stmt.body, [node.index])
        self.scopes.pop()
        for pred in body_out:
            self.cfg.add_edge(pred, node.index)
        after = [node.index] + scope.after_frontier
        if stmt.orelse:
            after = self._block(stmt.orelse, [node.index]) \
                + scope.after_frontier
        return [node.index], after

    def _stmt_For(self, stmt: ast.For, frontier):
        return self._loop(stmt, "For", frontier)

    def _stmt_AsyncFor(self, stmt, frontier):  # pragma: no cover
        return self._loop(stmt, "For", frontier)

    def _stmt_While(self, stmt: ast.While, frontier):
        return self._loop(stmt, "While", frontier)

    def _stmt_With(self, stmt, frontier):
        node = self.cfg._new(STMT, stmt, "With")
        self._join(node, frontier)
        self._wire_raise(node)  # __enter__ may raise
        body_out = self._block(stmt.body, [node.index])
        return [node.index], body_out

    _stmt_AsyncWith = _stmt_With

    def _stmt_Try(self, stmt: ast.Try, frontier):
        junction = self.cfg._new(JUNCTION, stmt, "TryJunction")
        scope = _Scope(_Scope.TRY)
        scope.junction = junction.index
        scope.finally_body = list(stmt.finalbody)
        self.scopes.append(scope)
        body_out = self._block(stmt.body, list(frontier or []))
        if stmt.orelse:
            body_out = self._block(stmt.orelse, body_out)
        self.scopes.pop()

        # handlers run outside the try scope (their own raises go to the
        # next enclosing handler, threading this finally)
        handler_out: List[int] = []
        for handler in stmt.handlers:
            handler_out += self._block(handler.body, [junction.index])

        # exceptional finally copy: uncaught exceptions (or exceptions
        # with no handler at all) run finally then keep propagating
        propagate_target = self._exception_target(len(self.scopes))
        if scope.finally_body:
            pad = self.cfg._new(JUNCTION, stmt, "FinallyPad")
            self.cfg.add_edge(junction.index, pad.index,
                              exceptional=True)
            copy_out = self._block(scope.finally_body, [pad.index])
            for node in copy_out:
                self.cfg.add_edge(node, propagate_target,
                                  exceptional=True)
        else:
            self.cfg.add_edge(junction.index, propagate_target,
                              exceptional=True)

        # normal continuation: body (and else) fall-through plus handler
        # fall-throughs run finally then continue after the try
        normal_in = body_out + handler_out
        if scope.finally_body:
            after = self._block(scope.finally_body, normal_in)
        else:
            after = normal_in
        return [junction.index], after

    # nested definitions: a node, but no descent (separate CFGs)

    def _stmt_FunctionDef(self, stmt, frontier):
        return self._simple_no_raise(stmt, frontier)

    _stmt_AsyncFunctionDef = _stmt_FunctionDef
    _stmt_ClassDef = _stmt_FunctionDef

    def _simple_no_raise(self, stmt, frontier):
        node = self.cfg._new(STMT, stmt, type(stmt).__name__)
        self._join(node, frontier)
        return [node.index], [node.index]


def build_cfg(func: ast.AST) -> CFG:
    """Build the control-flow graph for one function definition."""
    return Builder(func).build()

"""The EM100-series rules, evaluated over a :class:`Project`.

Each check returns :class:`~repro.analysis.emlint.Finding` objects whose
``trace`` carries the interprocedural evidence: one entry per hop (call
chain) plus the offending path through the CFG, so a finding reads like

    EM101 budget acquired at blockfile.py:52 leaks on the exception
    path; trace: sssp.py:54 external_dijkstra -> BlockFile.__init__
    acquires machine.budget; path: 54 -> 77 (raise) -> exit
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..emlint import Finding
from ..rules import MATERIALIZERS, STREAM_RETURNING
from .cfg import CFG
from .summaries import (
    AcquireSite, CallSite, ClassInfo, FunctionInfo, Project,
    RELEASING_NAMES, STREAM_METHODS, expr_key, walk_shallow,
)

#: attributes of the machine/model that define the memory envelope;
#: amounts and guards built from these are "M-derived"
MODEL_ATTRS = {"M", "m", "B", "D", "memory_blocks", "block_size",
               "available", "capacity", "num_disks"}


def run_checks(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    for module in project.modules.values():
        if module.kind == "exempt":
            continue
        for func in module.functions.values():
            findings.extend(_em101_intra(func))
            findings.extend(_em101_ownership(project, func))
            if module.kind == "algorithm":
                findings.extend(_em102(project, func))
                findings.extend(_em103(project, func))
                findings.extend(_em103_fusion(func))
                findings.extend(_em104(func))
                findings.extend(_em105(project, func))
    findings.extend(_em101_transfers(project))
    return findings


# ---------------------------------------------------------------------
# EM101: budget leaks
# ---------------------------------------------------------------------

def _path_lines(cfg: CFG, start: int, goal: int,
                removed: Set[int]) -> str:
    path = cfg.find_path(start, goal, removed)
    if not path:
        return ""
    shown: List[str] = []
    for idx in path:
        node = cfg.nodes[idx]
        if node.kind == "exit":
            shown.append("return")
        elif node.kind == "exc_exit":
            shown.append("unhandled exception")
        elif node.lineno and node.kind == "stmt":
            entry = f"line {node.lineno}"
            if node.label in ("Raise", "Return"):
                entry += f" ({node.label.lower()})"
            if not shown or shown[-1] != entry:
                shown.append(entry)
    return " -> ".join(shown)


def _leak_exits(func: FunctionInfo, node_index: int,
                removed: Set[int],
                chain: Sequence[str]) -> List[Tuple[str, Tuple[str, ...]]]:
    """Exit kinds reachable from ``node_index`` with the releasing
    nodes removed: [] means every path releases.  Each entry is
    (exit label, trace with the leaking path appended)."""
    cfg = func.cfg
    starts = sorted(cfg.succ[node_index] - cfg.exc_succ[node_index])
    reach = cfg.reachable(starts, removed)
    leaks: List[Tuple[str, Tuple[str, ...]]] = []
    for exit_node, label in ((cfg.exit, "return"),
                             (cfg.exc_exit, "exception")):
        if exit_node not in reach:
            continue
        best = ""
        for start in starts:
            best = _path_lines(cfg, start, exit_node, removed)
            if best:
                break
        trace = tuple(chain) + (
            (f"leaking path: {best}",) if best else ())
        leaks.append((label, trace))
    return leaks


def _leak_findings(func: FunctionInfo, site: AcquireSite,
                   removed: Set[int],
                   chain: Sequence[str]) -> List[Finding]:
    """One EM101 finding per leaking exit kind for an acquire site."""
    findings: List[Finding] = []
    for label, trace in _leak_exits(func, site.node_index, removed,
                                    chain):
        findings.append(Finding(
            rule="EM101", path=func.path, line=site.lineno, col=1,
            message=f"budget {site.kind}d on {site.key!r} in "
                    f"{func.display()} may not be released on a "
                    f"{label} path"
                    + (f" [{'; '.join(trace)}]" if trace else ""),
            trace=trace,
        ))
    return findings


def _release_nodes(func: FunctionInfo, key: str) -> Set[int]:
    """CFG nodes in ``func`` that release ``key``.  When the function
    only ever touches one budget object, key matching is relaxed."""
    exact = {r.node_index for r in func.releases if r.key == key}
    if exact:
        return exact
    acquire_keys = {a.key for a in func.acquires}
    release_keys = {r.key for r in func.releases}
    if len(acquire_keys) == 1 and len(release_keys) == 1:
        return {r.node_index for r in func.releases}
    return set()


def _em101_intra(func: FunctionInfo) -> List[Finding]:
    findings: List[Finding] = []
    for site in func.acquires:
        removed = _release_nodes(func, site.key)
        if not removed:
            continue  # holder protocol / transfer: handled elsewhere
        findings.extend(_leak_findings(
            func, site, removed,
            [f"acquired at {func.path}:{site.lineno}"]))
    return findings


def _class_release_keys(func: FunctionInfo) -> Set[str]:
    keys: Set[str] = set()
    if func.cls is not None:
        for method in func.cls.methods.values():
            keys.update(r.key for r in method.releases)
    return keys


def _em101_transfers(project: Project) -> List[Finding]:
    """Module-level functions that net-acquire a parameter's budget
    transfer the release obligation to their callers; callers that can
    exit without releasing leak.  A chain that reaches a function
    nobody calls (and that never releases) is flagged at the origin."""
    findings: List[Finding] = []
    holders: List[Tuple[FunctionInfo, AcquireSite]] = []
    for module in project.modules.values():
        if module.kind == "exempt":
            continue
        for func in module.functions.values():
            if func.cls is not None:
                continue  # methods use the class holder protocol
            for site in func.acquires:
                if _release_nodes(func, site.key):
                    continue
                holders.append((func, site))

    callers = _caller_index(project)
    for origin, site in holders:
        # (function holding the obligation, key in its frame, chain,
        #  path/line to anchor a finding on)
        work: List[Tuple[FunctionInfo, str, Tuple[str, ...],
                         str, int]] = [(
            origin, site.key,
            (f"{origin.display()} acquires {site.key!r} at "
             f"{origin.path}:{site.lineno}",),
            origin.path, site.lineno)]
        seen: Set[Tuple[str, str]] = set()
        depth = 0
        while work and depth < 64:
            depth += 1
            func, key, chain, flag_path, flag_line = work.pop()
            if (func.display(), key) in seen:
                continue
            seen.add((func.display(), key))
            call_sites = callers.get(func.display(), [])
            if not call_sites:
                # The obligation dead-ends here: nobody above can
                # release what the origin acquired.
                if func is origin:
                    message = (f"budget acquired on {key!r} in "
                               f"{origin.display()} is never released "
                               "(no releasing counterpart found)")
                else:
                    message = (f"budget acquired in {origin.display()} "
                               f"at {origin.path}:{site.lineno} is "
                               f"transferred to {func.display()} but "
                               "never released "
                               f"[{'; '.join(chain)}]")
                findings.append(Finding(
                    rule="EM101", path=flag_path, line=flag_line,
                    col=1, message=message, trace=chain,
                ))
                continue
            for caller, cs in call_sites:
                caller_key = _rebase_key(func, key, cs)
                if caller_key is None:
                    continue
                hop = (f"called from {caller.display()} at "
                       f"{caller.path}:{cs.lineno}",)
                removed = _release_nodes(caller, caller_key)
                if removed:
                    pseudo = AcquireSite(cs.node_index, caller_key,
                                         None, cs.lineno, "acquire")
                    findings.extend(_leak_findings(
                        caller, pseudo, removed, chain + hop))
                elif caller_key in _class_release_keys(caller):
                    continue  # caller's class protocol owns it now
                else:
                    work.append((caller, caller_key, chain + hop,
                                 caller.path, cs.lineno))
        if depth >= 64:  # pragma: no cover - defensive
            pass
    return findings


def _caller_index(project: Project) -> Dict[
        str, List[Tuple[FunctionInfo, CallSite]]]:
    index: Dict[str, List[Tuple[FunctionInfo, CallSite]]] = {}
    for module in project.modules.values():
        for func in module.functions.values():
            for cs in func.calls:
                if cs.callee is not None:
                    index.setdefault(cs.callee.display(), []).append(
                        (func, cs))
    return index


def _rebase_key(callee: FunctionInfo, key: str,
                site: CallSite) -> Optional[str]:
    """Translate a budget key rooted at a callee parameter into the
    caller's frame using the argument expression at ``site``."""
    parts = key.split(".", 1)
    if parts[0] not in callee.params:
        return None
    idx = callee.params.index(parts[0])
    from .summaries import _positional_args
    args = _positional_args(site)
    if idx >= len(args) or args[idx] is None:
        return None
    base = expr_key(args[idx])
    return base + ("." + parts[1] if len(parts) > 1 else "")


# -- ownership of constructed holder objects --------------------------

def _em101_ownership(project: Project,
                     func: FunctionInfo) -> List[Finding]:
    """``x = HolderClass(...)`` whose constructor acquires budget: some
    path from the construction to an exit must not skip every releasing
    operation on ``x`` (close/delete/with/escape)."""
    findings: List[Finding] = []
    cfg = func.cfg
    for cs in func.calls:
        callee = cs.callee
        if callee is None or callee.name != "__init__" \
                or callee.cls is None:
            continue
        cinfo = callee.cls
        if not cinfo.instance_holds:
            continue
        owner_stmt = cfg.nodes[cs.node_index].stmt
        name = _binding_name(owner_stmt, cs.call)
        if name is None:
            continue  # with-item, escape or expression use: not owned
        removed = _releasing_nodes_for(func, cinfo, name)
        acquire_lines = ", ".join(
            f"{callee.path}:{a.lineno}"
            for a in cinfo.methods["__init__"].acquires) or "?"
        chain = [
            f"{func.display()} constructs {cinfo.name} at "
            f"{func.path}:{cs.lineno}",
            f"{cinfo.name}.__init__ acquires the budget at "
            f"{acquire_lines}",
        ]
        for label, trace in _leak_exits(func, cs.node_index, removed,
                                        chain):
            findings.append(Finding(
                rule="EM101", path=func.path, line=cs.lineno, col=1,
                message=f"{cinfo.name} {name!r} constructed at "
                        f"{func.path}:{cs.lineno} holds budget "
                        f"acquired in its __init__ ({acquire_lines}) "
                        f"but may not be closed/released on a {label} "
                        f"path [{'; '.join(trace)}]",
                trace=trace,
            ))
    return findings


def _binding_name(stmt: Optional[ast.AST],
                  call: ast.Call) -> Optional[str]:
    """The local name a constructor call is bound to, or None when the
    object immediately escapes (with-item, return, argument, ...)."""
    if stmt is None:
        return None
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.context_expr is call:
                return None  # context manager releases on exit
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
            and stmt.value is call \
            and isinstance(stmt.targets[0], ast.Name):
        return stmt.targets[0].id
    return None


def _releasing_nodes_for(func: FunctionInfo, cinfo: ClassInfo,
                         name: str) -> Set[int]:
    """CFG nodes that release or transfer ownership of local ``name``."""
    removed: Set[int] = set()
    releasing = cinfo.releasing_methods | RELEASING_NAMES
    for node in func.cfg.stmt_nodes():
        stmt = node.stmt
        if stmt is None:
            continue
        if _releases_or_escapes(stmt, name, releasing):
            removed.add(node.index)
    return removed


def _releases_or_escapes(stmt: ast.AST, name: str,
                         releasing: Set[str]) -> bool:
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            expr = item.context_expr
            if isinstance(expr, ast.Name) and expr.id == name:
                return True
        return False
    if isinstance(stmt, ast.Return):
        return stmt.value is not None and _mentions(stmt.value, name)
    if isinstance(stmt, ast.Assign):
        target = stmt.targets[0]
        # storing into an attribute/container transfers ownership
        if isinstance(target, (ast.Attribute, ast.Subscript)) \
                and _mentions(stmt.value, name):
            return True
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        return False
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call):
            fn = node.func
            if (isinstance(fn, ast.Attribute)
                    and isinstance(fn.value, ast.Name)
                    and fn.value.id == name and fn.attr in releasing):
                return True
            # passing the object onward is an ownership escape
            for arg in list(node.args) + [k.value for k in node.keywords]:
                if isinstance(arg, ast.Name) and arg.id == name:
                    return True
        if isinstance(node, (ast.Yield, ast.YieldFrom)) \
                and node.value is not None \
                and _mentions(node.value, name):
            return True
    return False


def _mentions(node: ast.AST, name: str) -> bool:
    return any(isinstance(n, ast.Name) and n.id == name
               for n in ast.walk(node))


# ---------------------------------------------------------------------
# EM102: nested full scans
# ---------------------------------------------------------------------

def _em102(project: Project, func: FunctionInfo) -> List[Finding]:
    findings: List[Finding] = []
    loops = [n for n in walk_shallow(func.node)
             if isinstance(n, (ast.For, ast.AsyncFor, ast.While))]
    for outer in loops:
        assigned = _assigned_names(outer)
        for node in _loop_body_nodes(outer):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                desc = _stream_scan_desc(func, node.iter, assigned)
                if desc:
                    findings.append(Finding(
                        rule="EM102", path=func.path,
                        line=node.lineno, col=node.col_offset + 1,
                        message=f"full scan of {desc} inside the loop "
                                f"at line {outer.lineno}: re-reading a "
                                "loop-invariant stream costs "
                                "Theta(N^2/B) I/Os",
                        trace=(f"outer loop at {func.path}:"
                               f"{outer.lineno}",),
                    ))
            elif isinstance(node, ast.Call):
                finding = _scan_via_callee(project, func, node, outer,
                                           assigned)
                if finding is not None:
                    findings.append(finding)
    return findings


def _loop_body_nodes(outer: ast.AST) -> List[ast.AST]:
    nodes: List[ast.AST] = []
    for stmt in outer.body:
        nodes.extend([stmt] + walk_shallow(stmt))
    return nodes


def _assigned_names(outer: ast.AST) -> Set[str]:
    """Names (re)bound anywhere inside the loop, including its target:
    iterating values derived from these is not a re-scan."""
    assigned: Set[str] = set()
    targets: List[ast.AST] = []
    if isinstance(outer, (ast.For, ast.AsyncFor)):
        targets.append(outer.target)
    for node in _loop_body_nodes(outer):
        if isinstance(node, ast.Assign):
            targets.extend(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets.append(node.target)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            targets.append(node.target)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    targets.append(item.optional_vars)
    for target in targets:
        for name_node in ast.walk(target):
            if isinstance(name_node, ast.Name):
                assigned.add(name_node.id)
    return assigned


def _stream_scan_desc(func: FunctionInfo, iter_expr: ast.AST,
                      assigned: Set[str]) -> Optional[str]:
    """Describe ``iter_expr`` when it fully scans a loop-invariant
    stream; None otherwise."""
    expr = iter_expr
    # unwrap enumerate()/iter()/zip-of-one trivial wrappers
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name) \
            and expr.func.id in ("enumerate", "iter") and expr.args:
        expr = expr.args[0]
    if isinstance(expr, ast.Name):
        if expr.id in func.stream_names and expr.id not in assigned:
            return f"stream {expr.id!r}"
        return None
    if isinstance(expr, ast.Call) and isinstance(
            expr.func, ast.Attribute):
        recv = expr.func.value
        if expr.func.attr in STREAM_METHODS \
                and not _names_overlap(recv, assigned):
            return f"{expr_key(recv)}.{expr.func.attr}()"
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name) \
            and expr.func.id in STREAM_RETURNING:
        if not any(_names_overlap(a, assigned) for a in expr.args):
            return f"{expr.func.id}(...)"
    return None


def _names_overlap(node: ast.AST, names: Set[str]) -> bool:
    return any(isinstance(n, ast.Name) and n.id in names
               for n in ast.walk(node))


def _scan_via_callee(project: Project, func: FunctionInfo,
                     call: ast.Call, outer: ast.AST,
                     assigned: Set[str]) -> Optional[Finding]:
    site = None
    for cs in func.calls:
        if cs.call is call:
            site = cs
            break
    if site is None or site.callee is None \
            or not site.callee.scans_params:
        return None
    from .summaries import _positional_args
    args = _positional_args(site)
    for j in sorted(site.callee.scans_params):
        if j >= len(args) or args[j] is None:
            continue
        arg = args[j]
        if isinstance(arg, ast.Name) and arg.id in func.stream_names \
                and arg.id not in assigned:
            callee = site.callee
            return Finding(
                rule="EM102", path=func.path, line=call.lineno,
                col=call.col_offset + 1,
                message=f"stream {arg.id!r} is fully scanned by "
                        f"{callee.display()}() inside the loop at line "
                        f"{outer.lineno}: Theta(N^2/B) I/Os",
                trace=(f"outer loop at {func.path}:{outer.lineno}",
                       f"{callee.display()} scans parameter "
                       f"{callee.params[j]!r} at "
                       f"{callee.path}:{callee.node.lineno}"),
            )
    return None


# ---------------------------------------------------------------------
# EM103: interprocedural stream materialization
# ---------------------------------------------------------------------

def _em103(project: Project, func: FunctionInfo) -> List[Finding]:
    findings: List[Finding] = []
    from .summaries import _positional_args
    for site in func.calls:
        callee = site.callee
        if callee is None or not callee.materializes_params:
            continue
        args = _positional_args(site)
        for j in sorted(callee.materializes_params):
            if j >= len(args) or args[j] is None:
                continue
            arg = args[j]
            if not (isinstance(arg, ast.Name)
                    and arg.id in func.stream_names):
                continue
            evidence = callee.materialize_evidence.get(
                j, f"parameter {callee.params[j]!r}")
            findings.append(Finding(
                rule="EM103", path=func.path, line=site.lineno,
                col=site.call.col_offset + 1,
                message=f"stream {arg.id!r} escapes into "
                        f"{callee.display()}() which materializes it "
                        f"into RAM ({evidence})",
                trace=(f"call at {func.path}:{site.lineno}",
                       f"{callee.display()} materializes "
                       f"{callee.params[j]!r}: {evidence}"),
            ))
    return findings


#: sorts that materialize their output as a stream on disk; when that
#: output is consumed by exactly one sequential scan, a pipelined
#: Sorter boundary elides the materialization
_MATERIALIZING_SORTS = {
    "external_merge_sort", "two_way_merge_sort", "distribution_sort",
    "external_string_sort", "buffer_tree_sort",
}

#: stream methods that manage the object rather than read its records
_LIFECYCLE_METHODS = {"delete", "close", "finalize"}


def _em103_fusion(func: FunctionInfo) -> List[Finding]:
    """Materialized sort outputs read exactly once.

    ``x = external_merge_sort(...)`` followed by a single sequential
    scan of ``x`` (plus lifecycle calls) pays ``2·(N/DB)`` I/Os to park
    the sorted order on disk for one read; a pipelined
    :class:`~repro.pipeline.sorter.Sorter` pulls the final merge
    straight into the consumer and skips the round trip.
    """
    findings: List[Finding] = []
    sorted_streams: Dict[str, Tuple[ast.Assign, str]] = {}
    for node in walk_shallow(func.node):
        if (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)):
            head = node.value.func
            head_name = head.id if isinstance(head, ast.Name) else \
                head.attr if isinstance(head, ast.Attribute) else None
            if head_name in _MATERIALIZING_SORTS:
                target = node.targets[0].id
                if target in sorted_streams:
                    sorted_streams.pop(target)  # rebound: ambiguous
                else:
                    sorted_streams[target] = (node, head_name)

    parents: Dict[ast.AST, ast.AST] = {}
    for node in walk_shallow(func.node):
        for child in ast.iter_child_nodes(node):
            parents[child] = node

    for name, (assign, sort_fn) in sorted_streams.items():
        scans = 0
        other = 0
        for node in walk_shallow(func.node):
            if not (isinstance(node, ast.Name) and node.id == name
                    and isinstance(node.ctx, ast.Load)):
                continue
            parent = parents.get(node)
            if isinstance(parent, ast.For) and parent.iter is node:
                scans += 1
            elif (isinstance(parent, ast.Call)
                    and isinstance(parent.func, ast.Name)
                    and parent.func.id == "iter"
                    and node in parent.args):
                scans += 1
            elif (isinstance(parent, ast.Call)
                    and isinstance(parent.func, ast.Name)
                    and parent.func.id == "len"):
                pass  # size probe, not a read
            elif isinstance(parent, ast.Attribute) \
                    and parent.attr in _LIFECYCLE_METHODS:
                pass
            elif parent is assign.value:
                pass  # ``x = sort(machine, x, ...)`` rebinding read
            else:
                other += 1
        if scans == 1 and other == 0:
            findings.append(Finding(
                rule="EM103", path=func.path, line=assign.lineno,
                col=assign.col_offset + 1,
                message=f"sorted stream {name!r} is materialized by "
                        f"{sort_fn}() and then consumed by a single "
                        "sequential scan: a pipelined Sorter boundary "
                        "skips the ~2·(N/DB) I/O round trip through "
                        "disk",
                trace=(f"{sort_fn}() at {func.path}:{assign.lineno}",
                       f"sole sequential scan of {name!r}"),
            ))
    return findings


# ---------------------------------------------------------------------
# EM104: reservation/bound mismatch
# ---------------------------------------------------------------------

def _em104(func: FunctionInfo) -> List[Finding]:
    findings: List[Finding] = []
    m_tainted = _model_tainted_names(func)
    guarded = _guarded_names(func, m_tainted)
    for site in func.acquires + func.with_reserves:
        if site.amount is None:
            continue
        if _expr_model_derived(site.amount, m_tainted):
            continue  # amount itself computed from the envelope
        data = _data_names(func, site.amount, m_tainted)
        if not data:
            continue  # constant / block-granular amount
        if data <= guarded:
            continue
        loose = ", ".join(sorted(data - guarded))
        findings.append(Finding(
            rule="EM104", path=func.path, line=site.lineno, col=1,
            message=f"{site.kind}({_src(site.amount)}) in "
                    f"{func.display()} is data-dependent ({loose}) "
                    "with no guard against the declared memory "
                    "envelope M",
            trace=(f"unguarded amount at {func.path}:{site.lineno}",),
        ))
    return findings


def _src(node: ast.AST) -> str:
    try:
        return ast.unparse(node)  # py3.9+
    except Exception:  # pragma: no cover
        return "<expr>"


def _model_tainted_names(func: FunctionInfo) -> Set[str]:
    """Local names whose value derives from the machine envelope
    (M, B, m, available, ...), transitively through assignments."""
    tainted: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for node in walk_shallow(func.node):
            if not (isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)):
                continue
            name = node.targets[0].id
            if name in tainted:
                continue
            if _expr_model_derived(node.value, tainted):
                tainted.add(name)
                changed = True
    return tainted


def _expr_model_derived(node: ast.AST, tainted: Set[str]) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr in MODEL_ATTRS:
            return True
        if isinstance(sub, ast.Name) and sub.id in tainted:
            return True
        if isinstance(sub, ast.Name) and sub.id in MODEL_ATTRS:
            return True
    return False


def _data_names(func: FunctionInfo, amount: ast.AST,
                m_tainted: Set[str]) -> Set[str]:
    """Names in the amount that carry data-dependent magnitude: len()
    results, stream sizes, plain (non-model) parameters."""
    skip = {"self", "machine"} | m_tainted
    data: Set[str] = set()
    len_derived = _len_derived_names(func)
    for sub in ast.walk(amount):
        if isinstance(sub, ast.Call) and isinstance(
                sub.func, ast.Name) and sub.func.id == "len":
            for inner in ast.walk(sub):
                if isinstance(inner, ast.Name) and inner.id != "len":
                    data.add(inner.id)
                    break
            else:
                data.add("len()")
        elif isinstance(sub, ast.Name):
            if sub.id in skip or sub.id in MODEL_ATTRS:
                continue
            if sub.id in func.params or sub.id in len_derived:
                data.add(sub.id)
    return data


def _len_derived_names(func: FunctionInfo) -> Set[str]:
    out: Set[str] = set()
    for node in walk_shallow(func.node):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Call) and isinstance(
                        sub.func, ast.Name) and sub.func.id == "len":
                    out.add(node.targets[0].id)
    return out


def _guarded_names(func: FunctionInfo,
                   m_tainted: Set[str]) -> Set[str]:
    """Names whose magnitude is checked against the envelope: compared
    to an M-derived expression, or passed through ``min``/``max`` with
    an M-derived arm."""
    guarded: Set[str] = set()
    for node in walk_shallow(func.node):
        if isinstance(node, ast.Compare):
            sides = [node.left] + list(node.comparators)
            has_model = any(
                _expr_model_derived(s, m_tainted) for s in sides)
            if not has_model:
                continue
            for side in sides:
                for sub in ast.walk(side):
                    if isinstance(sub, ast.Name):
                        guarded.add(sub.id)
        if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Name) and node.func.id in ("min", "max"):
            if any(_expr_model_derived(a, m_tainted)
                   for a in node.args):
                for arg in node.args:
                    for sub in ast.walk(arg):
                        if isinstance(sub, ast.Name):
                            guarded.add(sub.id)
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            # x = min(data, envelope) makes x guarded as well
            if isinstance(node.value, ast.Call) and isinstance(
                    node.value.func, ast.Name) \
                    and node.value.func.id in ("min", "max") \
                    and any(_expr_model_derived(a, m_tainted)
                            for a in node.value.args):
                guarded.add(node.targets[0].id)
    # len(x) guarded implies x guarded and vice versa: comparisons are
    # usually written on the len while the reserve uses the container
    return guarded


# ---------------------------------------------------------------------
# EM105: machine aliasing
# ---------------------------------------------------------------------

def _em105(project: Project, func: FunctionInfo) -> List[Finding]:
    findings: List[Finding] = []
    from .summaries import _positional_args
    own_machines = {p for p in func.params if "machine" in p}
    for site in func.calls:
        callee = site.callee
        if callee is None or callee.cls is not None:
            continue
        args = _positional_args(site)
        for j, param in enumerate(callee.params):
            if "machine" not in param or j >= len(args) \
                    or args[j] is None:
                continue
            arg = args[j]
            aliased = None
            if isinstance(arg, ast.Name) \
                    and func.constructed_types.get(arg.id) == "Machine":
                aliased = f"locally constructed machine {arg.id!r}"
            elif isinstance(arg, ast.Call) \
                    and isinstance(arg.func, ast.Name) \
                    and arg.func.id == "Machine":
                aliased = "an inline Machine(...) construction"
            if aliased and own_machines:
                findings.append(Finding(
                    rule="EM105", path=func.path, line=site.lineno,
                    col=site.call.col_offset + 1,
                    message=f"{func.display()} passes {aliased} to "
                            f"{callee.display()}() where the caller's "
                            "accounting machine is expected: I/Os and "
                            "budget charged there escape this "
                            "machine's books",
                    trace=(f"call at {func.path}:{site.lineno}",
                           f"{callee.display()} charges parameter "
                           f"{param!r}"),
                ))
    return findings

"""``emlint`` command-line interface.

Usage::

    python tools/emlint.py src/repro          # lint the library
    emlint --list-rules                       # what each rule means
    emlint --format json src/repro            # machine-readable output
    emlint --show-waived src/repro            # audit documented waivers

Exit status: 0 when every finding is waived, 1 when unwaived findings
remain, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .emlint import lint_paths, unwaived
from .rules import RULES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="emlint",
        description="AST-based I/O-model compliance linter for the "
                    "external-memory algorithm library",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format")
    parser.add_argument(
        "--show-waived", action="store_true",
        help="also print findings documented by waivers")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, description in sorted(RULES.items()):
            print(f"{rule}  {description}")
        return 0

    for path in args.paths:
        if not os.path.exists(path):
            parser.error(f"no such file or directory: {path}")

    findings = lint_paths(args.paths)
    open_findings = unwaived(findings)
    waived_count = len(findings) - len(open_findings)

    if args.format == "json":
        print(json.dumps(
            [f.to_dict() for f in
             (findings if args.show_waived else open_findings)],
            indent=2))
    else:
        shown = findings if args.show_waived else open_findings
        for finding in shown:
            print(finding.render())
        print(
            f"emlint: {len(open_findings)} unwaived finding(s), "
            f"{waived_count} waived"
        )
    return 1 if open_findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())

"""``emlint`` command-line interface.

Usage::

    python tools/emlint.py src/repro          # per-line rules
    emlint --flow src/repro                   # + EM100 flow rules
    emlint --cost src/repro                   # + EM200 cost rules
    emlint --cost --cost-report costs.json src/repro  # expr table
    emlint --state src/repro                  # + EM300 typestate rules
    emlint --flow --sarif out.sarif src/repro # SARIF 2.1.0 log
    emlint --flow --baseline em.json src/repro  # fail only on NEW
    emlint --flow --write-baseline em.json src/repro  # accept current
    emlint --jobs 8 src/repro                 # parallel per-file stage
    emlint --list-rules                       # what each rule means
    emlint --format json src/repro            # machine-readable output
    emlint --show-waived src/repro            # audit documented waivers

Exit status: 0 when every finding is waived (or baselined), 1 when
unwaived findings remain, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .emlint import lint_paths, unwaived
from .rules import COST_RULES, FLOW_RULES, RULES, STATE_RULES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="emlint",
        description="AST-based I/O-model compliance linter for the "
                    "external-memory algorithm library",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format")
    parser.add_argument(
        "--show-waived", action="store_true",
        help="also print findings documented by waivers")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit")
    parser.add_argument(
        "--flow", action="store_true",
        help="also run the interprocedural EM100-series rules "
             "(CFG + call-graph dataflow)")
    parser.add_argument(
        "--cost", action="store_true",
        help="also run the EM200-series cost-certification rules "
             "(symbolic I/O-complexity inference)")
    parser.add_argument(
        "--state", action="store_true",
        help="also run the EM300-series typestate rules (resource "
             "lifecycles and fault-safety protocols)")
    parser.add_argument(
        "--cost-report", metavar="FILE",
        help="with --cost: write the inferred/declared cost "
             "expression table as JSON to FILE")
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run the per-file analysis stage over N processes "
             "(default: 1)")
    parser.add_argument(
        "--sarif", metavar="FILE",
        help="write a SARIF 2.1.0 log of all findings to FILE")
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="suppress findings recorded in this baseline file; only "
             "new findings fail the run")
    parser.add_argument(
        "--write-baseline", metavar="FILE",
        help="record the current unwaived findings as the accepted "
             "baseline and exit 0")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        catalogue = dict(RULES)
        catalogue.update(FLOW_RULES)
        catalogue.update(COST_RULES)
        catalogue.update(STATE_RULES)
        for rule, description in sorted(catalogue.items()):
            print(f"{rule}  {description}")
        return 0

    for path in args.paths:
        if not os.path.exists(path):
            parser.error(f"no such file or directory: {path}")

    if args.cost_report and not args.cost:
        parser.error("--cost-report requires --cost")

    jobs = max(1, args.jobs)
    report = None
    if args.state:
        from .state import lint_paths_state
        if args.cost:
            report = {}
        findings = lint_paths_state(args.paths, with_flow=args.flow,
                                    with_cost=args.cost,
                                    report=report, jobs=jobs)
    elif args.cost:
        from .cost import lint_paths_cost
        report = {}
        findings = lint_paths_cost(args.paths, with_flow=args.flow,
                                   report=report, jobs=jobs)
    elif args.flow:
        from .flow import lint_paths_flow
        findings = lint_paths_flow(args.paths, jobs=jobs)
    else:
        findings = lint_paths(args.paths, jobs=jobs)
    open_findings = unwaived(findings)
    waived_count = len(findings) - len(open_findings)

    if args.cost_report and report is not None:
        with open(args.cost_report, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")

    if args.sarif:
        from .flow.sarif import to_sarif
        catalogue = dict(RULES)
        if args.flow:
            catalogue.update(FLOW_RULES)
        if args.cost:
            catalogue.update(COST_RULES)
        if args.state:
            catalogue.update(STATE_RULES)
        with open(args.sarif, "w", encoding="utf-8") as handle:
            json.dump(to_sarif(findings, catalogue), handle, indent=2)
            handle.write("\n")

    if args.write_baseline:
        from .flow.baseline import write_baseline
        count = write_baseline(open_findings, args.write_baseline)
        print(f"emlint: baseline written to {args.write_baseline} "
              f"({count} finding(s) accepted)")
        return 0

    known_count = 0
    if args.baseline:
        from .flow.baseline import split_by_baseline
        open_findings, known = split_by_baseline(
            open_findings, args.baseline)
        known_count = len(known)

    if args.format == "json":
        print(json.dumps(
            [f.to_dict() for f in
             (findings if args.show_waived else open_findings)],
            indent=2))
    else:
        shown = findings if args.show_waived else open_findings
        for finding in shown:
            print(finding.render())
        summary = (f"emlint: {len(open_findings)} unwaived finding(s), "
                   f"{waived_count} waived")
        if args.baseline:
            summary += f", {known_count} baselined"
        print(summary)
    return 1 if open_findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())

"""Symbolic I/O-cost inference over the flow project's call graph.

For each function the inferencer walks the statement tree, charges the
model's primitives (stream iteration and appends, block reads/writes,
``get_many`` waves, amortized structure operations), multiplies through
recognized loop shapes, and inlines callee summaries bottom-up through
the call graph.  The result is an aggregate :class:`Cost` over the
whole input — the quantity the EM201/EM202 certification compares with
the declared bound.

Loop recognition (the heart of the analysis):

* ``for`` over a stream (or reader/combinator of streams) — trip ``N``
  records plus one ``Scan(N)`` read charge;
* ``for`` over ``range(...)`` — trip evaluated symbolically from the
  tracked local environment (``num_blocks`` ~ ``N/B`` etc.);
* ``for`` over an unknown container — trip bounded by ``N`` (a single
  Python loop touches each element once);
* ``while len(x) > 1`` with ``x`` reassigned from a call — a merge
  *pass loop*: trip ``log_{M/B}(N/B)``;
* ``while worklist`` drain loops — a *refinement* loop (re-inserts
  partitions produced by a project callee: trip ``log_{M/B}``) or a
  *record* drain (re-inserts plain records: trip ``N``);
* doubling/halving loops — trip ``log_2 N``;
* anything else carrying I/O — the unknown factor ``K`` (EM203).

Within a loop, *aggregate* costs whose subject is loop-variant (a
callee processing the loop's own partition) obey linearity — the parts
sum to the whole, so they are charged once at full ``N`` instead of
being multiplied by the trip count.  Everything else multiplies.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..rules import MATERIALIZERS, STREAM_CLASSES, STREAM_RETURNING
from .declared import MACHINE, SymEval
from .expr import Cost, Term, mul, normalized
from ..flow.summaries import (
    STREAM_METHODS, FunctionInfo, Project, _calls_in, expr_key,
)

#: per-call single-block transfers
_BLOCK_METHODS = {"read_block", "write_block", "append_block", "put",
                  "load", "store"}
#: per-record amortized writes on stream-like receivers
_RECORD_WRITES = {"append", "push", "add", "appendleft"}
#: block-payload iterators — one block per trip, N/B trips total.
#: ``iter_blocks`` scans a stream (its reads are charged here);
#: ``blocks`` re-emits payloads from readers charged at their source.
_BLOCK_STREAM_ITERS = {"iter_blocks", "blocks"}
#: distributive (already whole-input) transfers
_BATCHED_METHODS = {"get_many", "read_many", "read_block_range",
                    "write_block_range", "extend", "append_blocks",
                    "put_batch"}
#: free bookkeeping on model objects
_FREE_METHODS = {"finalize", "delete", "close", "sync", "flush",
                 "flush_all", "drop_all", "clear", "reset_stats",
                 "reserve", "acquire", "release", "trace", "measure",
                 "stats", "block_id", "is_finalized", "sort", "pop",
                 "popleft", "remove", "keys", "values", "get",
                 "setdefault", "reader", "block_ids", "tick",
                 "register", "unregister", "checkpoint"}

#: data structures charged by their certified amortized contract
#: instead of descending into their method bodies
_STRUCTURE_COSTS: Dict[str, Dict[str, Cost]] = {
    "BPlusTree": {
        "get": [Term(1, {"logB": 1})],
        "insert": [Term(1, {"logB": 1})],
        "delete": [Term(1, {"logB": 1})],
        "range_query": [Term(1, {"logB": 1}), Term(1, {"Z": 1, "B": -1})],
    },
    "ExtendibleHashTable": {
        "get": [Term(2.0)],
        "insert": [Term(2.0)],
        "delete": [Term(2.0)],
    },
    "ExternalPriorityQueue": {
        "insert": [Term(1, {"B": -1, "logm": 1})],
        "delete_min": [Term(1, {"B": -1, "logm": 1})],
        "push": [Term(1, {"B": -1, "logm": 1})],
        "pop": [Term(1, {"B": -1, "logm": 1})],
    },
    "BTreePriorityQueue": {
        "insert": [Term(1, {"logB": 1})],
        "delete_min": [Term(1, {"logB": 1})],
    },
    "BufferTree": {
        "insert": [Term(1, {"B": -1, "logm": 1})],
        "delete": [Term(1, {"B": -1, "logm": 1})],
        "flush": [Term(1, {"N": 1, "B": -1, "logm": 1})],
    },
    "Sorter": {
        # pipelined sort: push amortizes the run write plus this
        # record's share of the intermediate merge passes; finish
        # reads the final merge back through the pull iterator.
        "push": [Term(1, {"B": -1, "logm": 1})],
        "consume": [Term(1, {"N": 1, "B": -1, "logm": 1})],
        "finish": [Term(1, {"N": 1, "B": -1})],
    },
    "BlockBuilder": {
        # re-blocking plumbing, not a device: the blocks it emits are
        # charged at its sink's append_block (or by the enclosing
        # block-loop's trip count), so push/flush themselves are free.
        "push": [],
        "flush": [],
    },
    "ExternalStack": {
        "push": [Term(1, {"B": -1})],
        "pop": [Term(1, {"B": -1})],
    },
    "ExternalQueue": {
        "push": [Term(1, {"B": -1})],
        "pop": [Term(1, {"B": -1})],
        "append": [Term(1, {"B": -1})],
        "popleft": [Term(1, {"B": -1})],
    },
}

_SCAN = Term(1, {"N": 1, "B": -1})
_N = Term(1, {"N": 1})
_PER_RECORD_WRITE = Term(1, {"B": -1})


class Item:
    """One charged monomial in flight through the loop-nest walk."""

    __slots__ = ("term", "aggregate", "subjects", "origin", "batch",
                 "once")

    def __init__(self, term: Term, aggregate: bool,
                 subjects: FrozenSet[str], origin: str,
                 batch: bool = False, once: bool = False) -> None:
        self.term = term
        self.aggregate = aggregate
        self.subjects = subjects
        self.origin = origin
        self.batch = batch      # EM204 candidate: unbatched block read
        self.once = once        # whole-run total: never loop-multiplied


class Summary:
    """Aggregate cost of one function plus the loop sites that fed it."""

    __slots__ = ("cost", "ksites", "bsites", "origins")

    def __init__(self, cost: Cost,
                 ksites: FrozenSet[Tuple[str, int, str]],
                 bsites: FrozenSet[Tuple[str, int, str]],
                 origins: Tuple[str, ...] = ()) -> None:
        self.cost = cost
        self.ksites = ksites
        self.bsites = bsites
        self.origins = origins


class _Ctx:
    __slots__ = ("func", "streams", "stream_lists", "readers", "env",
                 "callsites", "ksites", "bsites")

    def __init__(self, func: FunctionInfo) -> None:
        self.func = func
        self.streams: Set[str] = set(func.stream_names)
        self.stream_lists: Set[str] = set()
        #: one-shot iterators (``iter(stream)``): consumed, not restarted
        self.readers: Set[str] = set()
        self.env: Dict[str, object] = {}
        self.callsites = {id(site.call): site for site in func.calls}
        self.ksites: Set[Tuple[str, int, str]] = set()
        self.bsites: Set[Tuple[str, int, str]] = set()


class _AlgoEval(SymEval):
    """Expression evaluator bound to a function's tracked locals."""

    def __init__(self, ctx: _Ctx) -> None:
        super().__init__(module=None)
        self.ctx = ctx

    def resolve_name(self, name: str) -> object:
        if name == "machine":
            return MACHINE
        value = self.ctx.env.get(name)
        if value is not None:
            return value
        if name in self.ctx.streams:
            return [Term(1, {"N": 1})]
        return None

    def resolve_attribute(self, node: ast.Attribute) -> object:
        if node.attr == "num_blocks":
            inner = self.eval(node.value)
            if isinstance(inner, list) and any(
                    "N" in t.powers for t in inner):
                return mul(inner, [Term(1, {"B": -1})])
        return super().resolve_attribute(node)


def _names_in(node: ast.AST) -> FrozenSet[str]:
    return frozenset(n.id for n in ast.walk(node)
                     if isinstance(n, ast.Name))


def _assigned_names(stmts: Iterable[ast.stmt]) -> Set[str]:
    names: Set[str] = set()
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign,
                                   ast.NamedExpr)):
                targets = [node.target]
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                targets = [node.target]
            elif isinstance(node, ast.withitem) \
                    and node.optional_vars is not None:
                targets = [node.optional_vars]
            for target in targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        names.add(sub.id)
    return names


def _target_names(target: ast.AST) -> Set[str]:
    return {n.id for n in ast.walk(target) if isinstance(n, ast.Name)}


class Inferencer:
    """Bottom-up symbolic cost summaries over a flow :class:`Project`."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self._cache: Dict[int, Summary] = {}
        self._stack: Set[int] = set()

    # -- public --------------------------------------------------------

    def summary(self, func: FunctionInfo) -> Summary:
        key = id(func)
        if key in self._cache:
            return self._cache[key]
        if key in self._stack:
            # recursion: the loop structure at the outermost call is
            # what carries the trip count; the back edge adds nothing
            return Summary([], frozenset(), frozenset())
        self._stack.add(key)
        try:
            summary = self._infer(func)
        finally:
            self._stack.discard(key)
        self._cache[key] = summary
        return summary

    # -- function body -------------------------------------------------

    def _infer(self, func: FunctionInfo) -> Summary:
        ctx = _Ctx(func)
        items = self._block(func.node.body, ctx, frozenset())
        cost = normalized([it.term for it in items])
        origins = tuple(dict.fromkeys(
            it.origin for it in items if it.origin))[:6]
        return Summary(cost, frozenset(ctx.ksites),
                       frozenset(ctx.bsites), origins)

    def _block(self, stmts: Iterable[ast.stmt], ctx: _Ctx,
               variant: FrozenSet[str]) -> List[Item]:
        items: List[Item] = []
        for stmt in stmts:
            items.extend(self._stmt(stmt, ctx, variant))
        return items

    def _stmt(self, stmt: ast.stmt, ctx: _Ctx,
              variant: FrozenSet[str]) -> List[Item]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return []
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, ctx, variant)
        if isinstance(stmt, ast.While):
            return self._while(stmt, ctx, variant)
        if isinstance(stmt, ast.If):
            header = self._charge_calls(stmt, ctx, variant)
            body = self._block(stmt.body, ctx, variant)
            if self._is_flush_guard(stmt.test, ctx):
                # ``if len(buffer) == B: write_block(...)`` — the body
                # runs once every B loop iterations, not every one.
                inv_b = Term(1, {"B": -1})
                body = [Item(it.term.times(inv_b), it.aggregate,
                             it.subjects, it.origin, it.batch)
                        for it in body]
            return header + _join_branches([
                body,
                self._block(stmt.orelse, ctx, variant),
            ])
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            header = self._charge_calls(stmt, ctx, variant)
            for item in stmt.items:
                self._track_with_item(item, ctx)
            return header + self._block(stmt.body, ctx, variant)
        if isinstance(stmt, ast.Try):
            items = self._block(stmt.body, ctx, variant)
            for handler in stmt.handlers:
                items.extend(self._block(handler.body, ctx, variant))
            items.extend(self._block(stmt.orelse, ctx, variant))
            items.extend(self._block(stmt.finalbody, ctx, variant))
            return items
        # simple statement: track locals, then charge its calls
        self._track_assign(stmt, ctx)
        return self._charge_calls(stmt, ctx, variant)

    # -- local environment --------------------------------------------

    def _track_assign(self, stmt: ast.stmt, ctx: _Ctx) -> None:
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            return
        target = stmt.targets[0]
        value = stmt.value
        if isinstance(target, ast.Tuple):
            for sub in target.elts:
                if isinstance(sub, ast.Name):
                    ctx.env.pop(sub.id, None)
            return
        if not isinstance(target, ast.Name):
            return
        name = target.id
        # stream tracking
        if isinstance(value, ast.Call):
            head = _call_head(value)
            if head in STREAM_CLASSES or head in STREAM_RETURNING \
                    or head == "finalize":
                ctx.streams.add(name)
            elif head in ("iter", "enumerate", "reversed") and value.args:
                inner = value.args[0]
                if isinstance(inner, ast.Name) \
                        and inner.id in ctx.streams:
                    ctx.streams.add(name)
                    if head == "iter":
                        ctx.readers.add(name)
            else:
                site = ctx.callsites.get(id(value))
                callee = site.callee if site is not None else None
                if callee is not None:
                    kind = _returns_kind(callee)
                    if kind == "stream":
                        ctx.streams.add(name)
                    elif kind == "stream_list":
                        ctx.stream_lists.add(name)
        elif isinstance(value, (ast.ListComp, ast.GeneratorExp)):
            head = _comp_elt_head(value)
            if head in STREAM_CLASSES:
                ctx.stream_lists.add(name)
        ctx.env[name] = _AlgoEval(ctx).eval(value)

    def _track_with_item(self, item: ast.withitem, ctx: _Ctx) -> None:
        """``with closing(iter(stream)) as reader:`` binds ``reader``
        exactly like ``reader = iter(stream)`` — unwrap the release
        guard and reuse the assignment tracking."""
        if not isinstance(item.optional_vars, ast.Name):
            return
        value = item.context_expr
        if isinstance(value, ast.Call) and len(value.args) == 1 \
                and _call_head(value) == "closing":
            value = value.args[0]
        self._track_assign(
            ast.Assign(targets=[item.optional_vars], value=value), ctx)

    # -- charging calls ------------------------------------------------

    def _charge_calls(self, stmt: ast.stmt, ctx: _Ctx,
                      variant: FrozenSet[str]) -> List[Item]:
        items: List[Item] = []
        for call in _calls_in(stmt):
            items.extend(self._charge_call(call, ctx, variant))
        return items

    def _charge_call(self, call: ast.Call, ctx: _Ctx,
                     variant: FrozenSet[str]) -> List[Item]:
        fn = call.func
        origin = f"{ctx.func.path}:{call.lineno}"
        subjects = _names_in(call)

        if isinstance(fn, ast.Name):
            if fn.id in MATERIALIZERS and call.args:
                arg = call.args[0]
                if _is_stream_expr(arg, ctx):
                    return [Item(_SCAN, True, _names_in(arg),
                                 f"{fn.id}() scan at {origin}")]
            if fn.id == "next" and call.args:
                arg = call.args[0]
                if _is_reader_expr(arg, ctx):
                    return [Item(_PER_RECORD_WRITE, False, subjects,
                                 f"next() read at {origin}")]
            site = ctx.callsites.get(id(call))
            callee = site.callee if site is not None else None
            return self._charge_callee(callee, subjects, origin, ctx)

        if isinstance(fn, ast.Attribute):
            attr = fn.attr
            recv = fn.value
            recv_key = expr_key(recv)
            # structure contracts first (BPlusTree.get, pq.insert, ...)
            cls = self.project._receiver_class(ctx.func, recv)
            if cls is not None and cls.name in _STRUCTURE_COSTS:
                contract = _STRUCTURE_COSTS[cls.name].get(attr)
                if contract is not None:
                    return [Item(t, False, subjects,
                                 f"{cls.name}.{attr}() at {origin}")
                            for t in contract]
            pool_like = recv_key.endswith("pool") or (
                cls is not None and cls.name == "BufferPool")
            if attr in _BLOCK_METHODS or (attr == "get" and pool_like):
                return [Item(Term(1.0), False, subjects,
                             f"{attr}() at {origin}",
                             batch=pool_like)]
            if attr in _BATCHED_METHODS:
                if _is_charged_receiver(recv, ctx) or pool_like \
                        or attr in ("get_many", "read_many",
                                    "read_block_range",
                                    "write_block_range"):
                    return [Item(_SCAN, True, subjects,
                                 f"{attr}() wave at {origin}")]
                return []
            if attr in _RECORD_WRITES and _is_charged_receiver(recv, ctx):
                return [Item(_PER_RECORD_WRITE, False, subjects,
                             f"{attr}() at {origin}")]
            if attr in STREAM_METHODS:
                # header-position scans are charged by the loop walker;
                # a bare ``x.scan()`` expression charges here
                return []
            if attr in _FREE_METHODS:
                return []
            site = ctx.callsites.get(id(call))
            callee = site.callee if site is not None else None
            return self._charge_callee(callee, subjects, origin, ctx)
        return []

    def _charge_callee(self, callee: Optional[FunctionInfo],
                       subjects: FrozenSet[str], origin: str,
                       ctx: _Ctx) -> List[Item]:
        if callee is None or callee.module.kind != "algorithm":
            return []
        summary = self.summary(callee)
        ctx.ksites |= summary.ksites
        ctx.bsites |= summary.bsites
        return [Item(t, True, subjects,
                     f"{callee.display()}() at {origin}")
                for t in summary.cost]

    # -- loops ---------------------------------------------------------

    def _for(self, stmt: ast.For, ctx: _Ctx,
             variant: FrozenSet[str]) -> List[Item]:
        kind, trip, iter_subjects, charge_scan = \
            self._classify_iter(stmt.iter, ctx)
        local = frozenset(_assigned_names(stmt.body)
                          | _target_names(stmt.target))
        header = self._charge_calls(stmt, ctx, variant | local)
        body = self._block(list(stmt.body) + list(stmt.orelse),
                           ctx, variant | local)
        out: List[Item] = list(header)
        if charge_scan:
            out.append(Item(_SCAN, True, iter_subjects,
                            f"stream loop at {ctx.func.path}:"
                            f"{stmt.lineno}"))
        for it in body:
            if it.once:
                out.append(it)
                continue
            if it.aggregate and (it.subjects & local):
                # linearity: the iterations partition the data
                out.append(_remap(it, local, iter_subjects))
                continue
            if it.batch and (it.subjects & local):
                ctx.bsites.add((
                    ctx.func.path, stmt.lineno,
                    "per-block read issued one-at-a-time in a loop "
                    "over precomputed indices; a get_many() wave "
                    "batch is available "
                    f"(read at {it.origin})"))
            out.extend(_multiply(it, trip, local, iter_subjects))
        return out

    def _while(self, stmt: ast.While, ctx: _Ctx,
               variant: FrozenSet[str]) -> List[Item]:
        local = frozenset(_assigned_names(stmt.body))
        header = self._charge_calls(stmt, ctx, variant | local)
        body = self._block(list(stmt.body) + list(stmt.orelse),
                           ctx, variant | local)
        if not body:
            return header
        kind, payload = self._classify_while(stmt, ctx)
        test_subjects = _names_in(stmt.test)
        out: List[Item] = list(header)
        if kind == "cursor":
            # a merge-join cursor: ``entry = next(it, None)`` advances a
            # monotone iterator, so across the whole run the body
            # executes once per record of the underlying stream — an
            # amortized total, immune to the enclosing loop's trip.
            for it in body:
                out.append(Item(
                    it.term.times(Term(1, {"N": 1})), True,
                    (it.subjects - local) | payload, it.origin,
                    once=True))
        elif kind in ("pass_logm", "refine"):
            factor: Cost = [Term(1, {"logm": 1})]
            for it in body:
                if it.once:
                    out.append(it)
                    continue
                out.extend(_multiply(it, factor, local, test_subjects,
                                     force=True))
        elif kind == "pass_logN":
            factor = [Term(1, {"logN": 1})]
            for it in body:
                if it.once:
                    out.append(it)
                    continue
                out.extend(_multiply(it, factor, local, test_subjects,
                                     force=True))
        elif kind in ("drain", "worklist"):
            # linearity: per-round aggregates over a round-local stream
            # partition the data, so their whole-run total is one pass
            for it in body:
                if it.once:
                    out.append(it)
                elif it.aggregate and (it.subjects & local):
                    out.append(_remap(it, local, test_subjects))
                else:
                    out.extend(_multiply(it, [_N], local, test_subjects))
        elif kind == "chunked":
            # a reader consumed one memoryload per round: N/M rounds.
            # A one-shot iterator's scan is spread across the rounds
            # (each round reads fresh records), so it is charged once.
            for it in body:
                if it.once or (it.aggregate
                               and it.subjects & ctx.readers):
                    out.append(it)
                else:
                    out.extend(_multiply(it, payload, local,
                                         test_subjects, force=True))
        else:
            ctx.ksites.add((
                ctx.func.path, stmt.lineno,
                "loop-carried I/O with a data-dependent trip count "
                "and no recognizable clamp to N/B or M/B"))
            factor = [Term(1, {"K": 1})]
            for it in body:
                if it.once:
                    out.append(it)
                    continue
                out.extend(_multiply(it, factor, local, test_subjects,
                                     force=True))
        return out

    # -- classification ------------------------------------------------

    def _classify_iter(
            self, node: ast.AST, ctx: _Ctx,
    ) -> Tuple[str, Cost, FrozenSet[str], bool]:
        """-> (kind, trip cost, subjects, charge a Scan read?)"""
        subjects = _names_in(node)
        if isinstance(node, ast.Name):
            if node.id in ctx.streams:
                return "stream", [_N], subjects, True
            if node.id in ctx.stream_lists:
                return "container", [_N], subjects, False
            value = ctx.env.get(node.id)
            if isinstance(value, list) and value \
                    and all(isinstance(t, Term) for t in value):
                return "count", value, subjects, False
            return "container", [_N], subjects, False
        if isinstance(node, ast.Call):
            head = _call_head(node)
            if head == "range":
                trip = self._range_trip(node, ctx)
                return "count", trip, subjects, False
            if head in ("enumerate", "iter", "reversed", "sorted",
                        "zip"):
                for arg in node.args:
                    kind, trip, inner, scan_it = \
                        self._classify_iter(arg, ctx)
                    if kind == "stream":
                        return kind, trip, subjects, scan_it
                return "container", [_N], subjects, False
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _BLOCK_METHODS:
                # one block's payload: B records (the read itself is
                # charged at the call site, not here)
                return "count", [Term(1, {"B": 1})], subjects, False
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _BLOCK_STREAM_ITERS:
                # whole-payload loop: N/B trips.  A stream's own
                # ``iter_blocks`` performs the reads (charge the scan);
                # a merger's ``blocks`` replays payloads whose reads
                # were charged where its readers were opened.
                return ("count", [Term(1, {"N": 1, "B": -1})], subjects,
                        node.func.attr == "iter_blocks")
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr in STREAM_METHODS:
                return "stream", [_N], subjects, True
            # stream combinators (LoserTree over run readers etc.):
            # any stream-ish argument makes this a merged record loop
            for arg in ast.walk(node):
                if isinstance(arg, ast.Name) and (
                        arg.id in ctx.streams
                        or arg.id in ctx.stream_lists):
                    return "stream", [_N], subjects, True
            return "container", [_N], subjects, False
        if isinstance(node, (ast.Tuple, ast.List)):
            return "count", [Term(float(len(node.elts)))], subjects, \
                False
        if isinstance(node, ast.Attribute) or isinstance(
                node, ast.Subscript):
            if _is_stream_expr(node, ctx):
                return "stream", [_N], subjects, True
            value = _AlgoEval(ctx).eval(node)
            if isinstance(value, list) and value \
                    and all(isinstance(t, Term) for t in value):
                return "count", value, subjects, False
            return "container", [_N], subjects, False
        return "container", [_N], subjects, False

    def _is_flush_guard(self, test: ast.expr, ctx: _Ctx) -> bool:
        """``len(buffer) == B`` (or ``>= B``) — a block-flush guard."""
        if not (isinstance(test, ast.Compare) and len(test.ops) == 1
                and isinstance(test.ops[0], (ast.Eq, ast.GtE))):
            return False
        left, right = test.left, test.comparators[0]
        if not (isinstance(left, ast.Call)
                and _call_head(left) == "len"):
            left, right = right, left
        if not (isinstance(left, ast.Call)
                and _call_head(left) == "len"):
            return False
        cost = _AlgoEval(ctx).eval(right)
        return (isinstance(cost, list) and len(cost) == 1
                and cost[0].coeff >= 1
                and cost[0].powers == {"B": 1})

    def _range_trip(self, node: ast.Call, ctx: _Ctx) -> Cost:
        evaluator = _AlgoEval(ctx)
        args = node.args
        if len(args) == 1:
            start, stop, step = None, args[0], None
        elif len(args) >= 2:
            start, stop = args[0], args[1]
            step = args[2] if len(args) > 2 else None
        else:
            return [_N]
        stop_cost = evaluator.eval(stop)
        # An unevaluable stop is still at most N records; a symbolic
        # step (e.g. ``range(0, len(chunk), B)``) divides the trip.
        span = stop_cost if isinstance(stop_cost, list) else [_N]
        step_cost = evaluator.eval(step) if step is not None else None
        if isinstance(step_cost, list) and len(step_cost) == 1 \
                and not step_cost[0].is_constant:
            span = normalized([t.over(step_cost[0]) for t in span])
        elif isinstance(step_cost, list) and len(step_cost) == 1 \
                and step_cost[0].coeff > 1:
            span = normalized([t.over(step_cost[0]) for t in span])
        return span

    def _classify_while(self, stmt: ast.While,
                        ctx: _Ctx) -> Tuple[str, object]:
        test_names = _names_in(stmt.test)
        # merge-join cursor: the body (no nested loops) advances a test
        # variable with ``entry = next(it, default)`` — amortized over
        # the iterator's stream
        cursor = self._cursor_subjects(stmt)
        if cursor is not None:
            return "cursor", cursor
        # ``while len(x) > limit`` + x reassigned in the body: limit >= 1
        # is a reduction pass loop (merge until one run remains); limit 0
        # is a frontier/worklist loop (run until empty), whose per-round
        # streams partition the data (linearity)
        if isinstance(stmt.test, ast.Compare):
            for node in ast.walk(stmt.test):
                if isinstance(node, ast.Call) \
                        and _call_head(node) == "len" and node.args \
                        and isinstance(node.args[0], ast.Name):
                    shrunk = node.args[0].id
                    reassigned = any(
                        isinstance(sub, ast.Assign)
                        and len(sub.targets) == 1
                        and shrunk in _target_names(sub.targets[0])
                        for sub in ast.walk(stmt))
                    limit = None
                    for comp in ast.walk(stmt.test):
                        if isinstance(comp, ast.Constant) \
                                and isinstance(comp.value, (int, float)):
                            limit = comp.value
                    if reassigned and limit is not None:
                        if limit >= 1:
                            return "pass_logm", None
                        return "worklist", None
        # geometric doubling/halving of a counter
        for node in ast.walk(stmt):
            if isinstance(node, ast.AugAssign) and isinstance(
                    node.op, (ast.Mult, ast.FloorDiv, ast.RShift,
                              ast.LShift)):
                value = node.value
                shift = isinstance(node.op, (ast.RShift, ast.LShift))
                if isinstance(value, ast.Constant) and (
                        value.value in (2, 4)
                        or (shift and value.value in (1, 2))):
                    return "pass_logN", None
        # flag-terminated chunk loop over a reader: N/M rounds
        rounds = self._chunk_rounds(stmt, ctx)
        if rounds is not None:
            return "chunked", rounds
        # ``while True`` with an exit and a reassigned stream: treated
        # as a worklist round loop (per-round totals, linearity)
        if isinstance(stmt.test, ast.Constant) \
                and stmt.test.value is True:
            has_exit = any(isinstance(n, (ast.Break, ast.Return))
                           for n in ast.walk(stmt))
            reassigns_call = any(
                isinstance(sub, ast.Assign) and len(sub.targets) == 1
                and isinstance(sub.targets[0], ast.Name)
                and isinstance(sub.value, (ast.Call, ast.Name))
                for sub in ast.walk(stmt))
            if has_exit and reassigns_call:
                return "worklist", None
        # pointer chase: the test variable is reassigned from a
        # subscript each round (linked-list walk) — at most N hops
        if isinstance(stmt.test, ast.Compare):
            for node in ast.walk(stmt):
                if isinstance(node, ast.Assign) \
                        and len(node.targets) == 1 \
                        and isinstance(node.targets[0], ast.Name) \
                        and node.targets[0].id in test_names \
                        and isinstance(node.value, ast.Subscript):
                    return "drain", None
        # drain loops: the tested container is popped in the body
        popped = False
        refill_exprs: List[ast.AST] = []
        project_call_names: Set[str] = set()
        for node in ast.walk(stmt):
            if isinstance(node, ast.Assign) \
                    and len(node.targets) == 1 \
                    and isinstance(node.value, ast.Call):
                site = ctx.callsites.get(id(node.value))
                if site is not None and site.callee is not None \
                        and site.callee.module.kind == "algorithm":
                    for name in _target_names(node.targets[0]):
                        project_call_names.add(name)
            if isinstance(node, ast.Call):
                fn = node.func
                if isinstance(fn, ast.Attribute) \
                        and fn.attr in ("pop", "popleft", "delete_min") \
                        and isinstance(fn.value, ast.Name) \
                        and fn.value.id in test_names:
                    popped = True
                if self._head_of(fn) == "heappop" and node.args \
                        and isinstance(node.args[0], ast.Name) \
                        and node.args[0].id in test_names:
                    popped = True
                if isinstance(fn, ast.Attribute) \
                        and fn.attr in ("append", "extend", "insert") \
                        and isinstance(fn.value, ast.Name) \
                        and fn.value.id in test_names:
                    refill_exprs.extend(node.args)
                if self._head_of(fn) == "heappush" and node.args \
                        and isinstance(node.args[0], ast.Name) \
                        and node.args[0].id in test_names:
                    refill_exprs.extend(node.args[1:])
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Subscript) \
                            and isinstance(target.value, ast.Name) \
                            and target.value.id in test_names:
                        refill_exprs.append(node.value)
        if popped:
            for expr in refill_exprs:
                names = _names_in(expr)
                if names & project_call_names:
                    return "refine", None
                for sub in ast.walk(expr):
                    if isinstance(sub, ast.Call):
                        site = ctx.callsites.get(id(sub))
                        if site is not None and site.callee is not None \
                                and site.callee.module.kind \
                                == "algorithm":
                            return "refine", None
            return "drain", None
        return "unknown", None

    @staticmethod
    def _head_of(fn: ast.expr) -> str:
        """Bare or module-qualified function name (``heapq.heappop``)."""
        if isinstance(fn, ast.Name):
            return fn.id
        if isinstance(fn, ast.Attribute):
            return fn.attr
        return ""

    def _cursor_subjects(
            self, stmt: ast.While) -> Optional[FrozenSet[str]]:
        test_names = _names_in(stmt.test)
        for sub in stmt.body:
            for node in ast.walk(sub):
                if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                    return None
        subjects: Set[str] = set()
        for node in ast.walk(stmt):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name) \
                    and node.targets[0].id in test_names \
                    and isinstance(node.value, ast.Call) \
                    and _call_head(node.value) == "next" \
                    and node.value.args:
                subjects |= _names_in(node.value.args[0])
        return frozenset(subjects) if subjects else None

    def _chunk_rounds(self, stmt: ast.While,
                      ctx: _Ctx) -> Optional[Cost]:
        """``while not exhausted:`` filling a memoryload-sized chunk per
        round (``if len(chunk) == cap: break`` with an M-class cap):
        the round count is N/cap."""
        if not (isinstance(stmt.test, ast.UnaryOp)
                and isinstance(stmt.test.op, ast.Not)):
            return None
        for node in ast.walk(stmt):
            if isinstance(node, ast.Compare) and len(node.ops) == 1 \
                    and isinstance(node.ops[0], ast.Eq):
                cap = _AlgoEval(ctx).eval(node.comparators[0])
                if isinstance(cap, list) and len(cap) == 1 \
                        and cap[0].powers.get("M", 0) > 0:
                    return normalized([_N.over(cap[0])])
        return None


# ---------------------------------------------------------------------
# item plumbing
# ---------------------------------------------------------------------

def _remap(it: Item, local: FrozenSet[str],
           outer_subjects: FrozenSet[str]) -> Item:
    return Item(it.term, True,
                (it.subjects - local) | outer_subjects, it.origin)


def _multiply(it: Item, trip: Cost, local: FrozenSet[str],
              outer_subjects: FrozenSet[str],
              force: bool = False) -> List[Item]:
    if it.once:
        return [it]
    subjects = (it.subjects - local) | outer_subjects
    return [Item(t, True, subjects, it.origin)
            for t in mul([it.term], trip)]


def _join_branches(branches: List[List[Item]]) -> List[Item]:
    """Exclusive branches: groupwise coefficient max, not sum — a
    record flows through one branch, so same-shaped charges across
    branches must not double-count."""
    joined: Dict[Tuple, Item] = {}
    for items in branches:
        acc: Dict[Tuple, Item] = {}
        for it in items:
            key = (it.term.key(), it.aggregate)
            if key in acc:
                prev = acc[key]
                acc[key] = Item(
                    Term(prev.term.coeff + it.term.coeff,
                         dict(it.term.powers)),
                    it.aggregate, prev.subjects | it.subjects,
                    prev.origin, prev.batch or it.batch)
            else:
                acc[key] = it
        for key, it in acc.items():
            if key in joined:
                prev = joined[key]
                coeff = max(prev.term.coeff, it.term.coeff)
                joined[key] = Item(
                    Term(coeff, dict(it.term.powers)), it.aggregate,
                    prev.subjects | it.subjects, prev.origin,
                    prev.batch or it.batch)
            else:
                joined[key] = it
    return list(joined.values())


def _call_head(call: ast.Call) -> Optional[str]:
    fn = call.func
    if isinstance(fn, ast.Name):
        return fn.id
    if isinstance(fn, ast.Attribute):
        return fn.attr
    return None


def _comp_elt_head(node: ast.AST) -> Optional[str]:
    elt = getattr(node, "elt", None)
    if isinstance(elt, ast.Call):
        return _call_head(elt)
    if isinstance(elt, ast.Tuple):
        for sub in elt.elts:
            if isinstance(sub, ast.Call):
                head = _call_head(sub)
                if head in STREAM_CLASSES:
                    return head
    return None


def _returns_kind(callee: FunctionInfo) -> Optional[str]:
    returns = getattr(callee.node, "returns", None)
    text = ""
    if returns is not None:
        try:
            text = ast.unparse(returns)
        except Exception:  # pragma: no cover - exotic annotations
            text = ""
    if "Stream" in text or "BlockFile" in text:
        if "List" in text or "list" in text or "Tuple" in text:
            return "stream_list"
        return "stream"
    if callee.returns_stream:
        return "stream"
    return None


def _is_stream_expr(node: ast.AST, ctx: _Ctx) -> bool:
    if isinstance(node, ast.Name):
        return node.id in ctx.streams
    if isinstance(node, ast.Subscript) \
            and isinstance(node.value, ast.Name):
        return node.value.id in ctx.stream_lists
    if isinstance(node, ast.Call):
        head = _call_head(node)
        if head in STREAM_METHODS:
            return True
    return False


def _is_reader_expr(node: ast.AST, ctx: _Ctx) -> bool:
    if isinstance(node, ast.Name):
        return node.id in ctx.streams or "reader" in node.id
    return _is_stream_expr(node, ctx)


def _is_charged_receiver(node: ast.AST, ctx: _Ctx) -> bool:
    if isinstance(node, ast.Name):
        return node.id in ctx.streams \
            or node.id in ctx.func.local_types \
            or node.id in ctx.stream_lists
    if isinstance(node, ast.Subscript):
        return _is_charged_receiver(node.value, ctx) \
            or (isinstance(node.value, ast.Name)
                and node.value.id in ctx.stream_lists)
    if isinstance(node, ast.Attribute):
        # self.runs / machine-owned containers: charged
        return True
    return False

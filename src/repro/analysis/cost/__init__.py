"""EM-cost: symbolic I/O-complexity inference and bound certification.

The EM200-series tier sits between the per-line rules (EM001-EM007) and
the dynamic sanitizer envelope: it *statically* derives a symbolic I/O
cost for every ``@io_bound``-decorated algorithm by composing
per-statement transfer counts through loop nests and callee summaries,
then certifies the declared bound (the theory callable and the docstring
form) against the inferred expression.

Entry points mirror :mod:`repro.analysis.flow`:

* :func:`lint_paths_cost` / :func:`lint_sources_cost` — run the
  per-line rules plus the EM200-series (optionally the EM100 flow rules
  too) and return :class:`~repro.analysis.emlint.Finding` lists;
* :func:`cost_report` — the inferred/declared expression table, for
  cross-checking sanitizer envelopes.
"""

from .engine import cost_report, lint_paths_cost, lint_sources_cost
from .expr import Cost, Term, render

__all__ = [
    "Cost",
    "Term",
    "cost_report",
    "lint_paths_cost",
    "lint_sources_cost",
    "render",
]

"""Extract the *declared* I/O bound of an ``@io_bound`` function.

Two declaration channels are read:

* the **theory callable** — the decorator's first argument, a lambda or
  a module-level ``_xxx_theory`` helper.  A tiny abstract interpreter
  evaluates its body symbolically: ``scan_io``/``sort_io``/... map to
  their closed forms, ``machine.M``/``machine.m``/``machine.B`` to
  atoms, ``n.bit_length()`` to a ``log2 N`` round count, geometric
  shrink loops to pass counts, and ``min(...)`` to alternative arms;
* the **docstring** — classified into a coarse bound *class* (sort /
  scan / linear / search / quadratic) from the survey notation the
  EM003 rule already requires, for the EM205 cross-check.

The result is a :class:`DeclaredBound`: a list of arms (one for plain
bounds, several for ``min(...)`` dispatcher bounds), each a sum of
:class:`~repro.analysis.cost.expr.Term`.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from ..flow.summaries import FunctionInfo, ModuleInfo
from .expr import Cost, Term, add, mul, normalized, sort_terms

#: sentinel abstract values
MACHINE = object()    # the machine parameter
RESULT = object()     # the sanitizer's ``result`` parameter (Z records)
CALLDATA = object()   # the sanitizer's ``call`` dict (input-sized data)
INFINITY = object()   # float("inf") guard returns


class MinBound:
    """``min(arm, arm, ...)`` — alternatives, not a sum."""

    def __init__(self, arms: List[Cost]) -> None:
        self.arms = arms


class DeclaredBound:
    def __init__(self, arms: List[Cost]) -> None:
        self.arms = [normalized(arm) for arm in arms]

    @property
    def is_min(self) -> bool:
        return len(self.arms) > 1

    def flat(self) -> Cost:
        """All arms' terms together (the *loosest* reading; used only
        for rendering and class extraction)."""
        return add(*self.arms)


def _as_cost(value: object) -> Optional[Cost]:
    if isinstance(value, list):
        return value
    return None


class SymEval:
    """Symbolic evaluator for bound-flavoured arithmetic expressions.

    Subclasses override :meth:`resolve_name` / :meth:`resolve_attribute`
    to bind free names; unknown subexpressions evaluate to ``None`` and
    poison only the term they appear in, not the whole bound.
    """

    def __init__(self, module: Optional[ModuleInfo] = None,
                 depth: int = 0) -> None:
        self.module = module
        self.env: Dict[str, object] = {}
        self.depth = depth

    # -- name binding --------------------------------------------------

    def resolve_name(self, name: str) -> object:
        return self.env.get(name)

    def resolve_attribute(self, node: ast.Attribute) -> object:
        value = self.eval(node.value)
        if value is MACHINE:
            if node.attr in ("M", "memory"):
                return [Term(1, {"M": 1})]
            if node.attr in ("B", "block_size"):
                return [Term(1, {"B": 1})]
            if node.attr in ("m", "memory_blocks"):
                return [Term(1, {"M": 1, "B": -1})]
            if node.attr in ("D", "num_disks"):
                # transfers, not parallel steps: D contributes no term
                return [Term(1.0)]
            return None
        if value is RESULT or value is CALLDATA:
            # attribute hops (``call["left"].stream``) keep the token
            return value
        return None

    # -- the evaluator -------------------------------------------------

    def eval(self, node: ast.AST) -> object:
        method = getattr(self, f"_eval_{type(node).__name__}", None)
        if method is None:
            return None
        return method(node)

    def _eval_Constant(self, node: ast.Constant) -> object:
        if isinstance(node.value, bool):
            return None
        if isinstance(node.value, (int, float)):
            if node.value == float("inf"):
                return INFINITY
            return [Term(float(node.value))]
        return None

    def _eval_Name(self, node: ast.Name) -> object:
        return self.resolve_name(node.id)

    def _eval_Attribute(self, node: ast.Attribute) -> object:
        return self.resolve_attribute(node)

    def _eval_Subscript(self, node: ast.Subscript) -> object:
        value = self.eval(node.value)
        if value in (RESULT, CALLDATA):
            return value
        if isinstance(node.slice, ast.Slice):
            # a slice keeps the container's count class (upper bound)
            return _as_cost(value)
        return None

    def _eval_UnaryOp(self, node: ast.UnaryOp) -> object:
        # ``-(-a // b)`` ceiling division: evaluate the magnitude
        return self.eval(node.operand)

    def _eval_BinOp(self, node: ast.BinOp) -> object:
        left = self.eval(node.left)
        right = self.eval(node.right)
        if left is INFINITY or right is INFINITY:
            return INFINITY
        lc, rc = _as_cost(left), _as_cost(right)
        if isinstance(node.op, ast.Add):
            if lc is None or rc is None:
                return lc if rc is None else rc
            return add(lc, rc)
        if isinstance(node.op, ast.Sub):
            # upper bound: ``m - spare`` ~ m, ``n - 1`` ~ n
            return lc
        if isinstance(node.op, (ast.Mult,)):
            if isinstance(left, MinBound) and rc is not None:
                return MinBound([mul(arm, rc) for arm in left.arms])
            if isinstance(right, MinBound) and lc is not None:
                return MinBound([mul(lc, arm) for arm in right.arms])
            if lc is None or rc is None:
                return None
            return mul(lc, rc)
        if isinstance(node.op, (ast.Div, ast.FloorDiv)):
            if lc is None or rc is None or len(rc) != 1:
                return None
            return normalized([t.over(rc[0]) for t in lc])
        if isinstance(node.op, ast.Pow):
            if lc is None or rc is None or len(rc) != 1 \
                    or not rc[0].is_constant:
                return None
            exp = int(rc[0].coeff)
            if not 0 <= exp <= 4:
                return None
            out: Cost = [Term(1.0)]
            for _ in range(exp):
                out = mul(out, lc)
            return out
        return None

    def _eval_BoolOp(self, node: ast.BoolOp) -> object:
        # ``call.get("fan_in") or machine.m - 1``: the last arm is the
        # default; prefer the last evaluable arm
        for value in reversed([self.eval(v) for v in node.values]):
            if value is not None:
                return value
        return None

    def _eval_IfExp(self, node: ast.IfExp) -> object:
        body = self.eval(node.body)
        orelse = self.eval(node.orelse)
        bc, oc = _as_cost(body), _as_cost(orelse)
        if bc is not None and oc is not None:
            return add(bc, oc)  # upper bound over both branches
        return bc if bc is not None else oc

    def _eval_Call(self, node: ast.Call) -> object:
        fn = node.func
        # method calls ------------------------------------------------
        if isinstance(fn, ast.Attribute):
            if fn.attr == "bit_length":
                inner = _as_cost(self.eval(fn.value))
                if inner is not None and any(
                        "N" in t.powers or "Z" in t.powers
                        for t in inner):
                    return [Term(1, {"logN": 1})]
                return None
            if fn.attr == "get":
                return self.eval_subscript_of(fn.value)
            return None
        if not isinstance(fn, ast.Name):
            return None
        name = fn.id
        args = [self.eval(a) for a in node.args]
        costs = [_as_cost(a) for a in args]

        if name in ("int", "float", "round", "ceil", "floor", "abs",
                    "list", "tuple", "sorted"):
            return args[0] if args else None
        if name == "range":
            return self.range_span(node)
        if name == "len":
            return self.eval_len(node.args[0]) if node.args else None
        if name == "sized":
            if args and args[0] is RESULT:
                return [Term(1, {"Z": 1})]
            return [Term(1, {"N": 1})]
        if name == "max":
            symbolic = [c for c in costs
                        if c is not None
                        and any(not t.is_constant for t in c)]
            if symbolic:
                # sum >= max: a safe upper bound, same asymptotics
                return add(*symbolic)
            known = [c for c in costs if c is not None]
            if known:
                return max(known, key=lambda c: sum(t.coeff for t in c))
            return None
        if name == "min":
            arms: List[Cost] = []
            for a in args:
                if isinstance(a, MinBound):
                    arms.extend(a.arms)
                else:
                    c = _as_cost(a)
                    if c is not None and any(
                            not t.is_constant for t in c):
                        arms.append(c)
            if len(arms) > 1:
                return MinBound(arms)
            if arms:
                return arms[0]
            known = [c for c in costs if c is not None]
            if known:
                return min(known, key=lambda c: sum(t.coeff for t in c))
            return None

        # the closed-form vocabulary ----------------------------------
        size = costs[0] if costs else None
        if name == "scan_io":
            if size is None:
                return None
            return mul(size, [Term(1, {"B": -1})])
        if name == "sort_io":
            if size is None:
                return None
            return mul(size, [Term(1, {"B": -1}),
                              Term(1, {"B": -1, "logm": 1})])
        if name == "merge_passes":
            return [Term(1.0), Term(1, {"logm": 1})]
        if name == "search_io":
            return [Term(1, {"logB": 1})]
        if name == "output_io":
            z = costs[1] if len(costs) > 1 else [Term(1, {"Z": 1})]
            return add([Term(1, {"logB": 1})],
                       mul(z or [Term(1, {"Z": 1})],
                           [Term(1, {"B": -1})]))
        if name == "permute_io":
            if size is None:
                return None
            return MinBound([size,
                             mul(size, [Term(1, {"B": -1}),
                                        Term(1, {"B": -1, "logm": 1})])])
        if name in ("transpose_io", "list_ranking_io"):
            if size is None:
                size = [Term(1, {"N": 1})]
            return mul(size, [Term(1, {"B": -1}),
                              Term(1, {"B": -1, "logm": 1})])
        if name == "buffer_tree_amortized_io":
            return [Term(1, {"B": -1, "logm": 1})]

        # a sibling theory helper (``_by_sort_theory(machine, n)``) ----
        if self.module is not None and self.depth < 4:
            callee = self.module.functions.get(name)
            if callee is not None and callee.cls is None:
                return eval_theory_function(
                    callee.node, self.module, args, self.depth + 1)
        return None

    # -- hooks ---------------------------------------------------------

    def range_span(self, node: ast.Call) -> object:
        """``range(start, stop, step)`` -> symbolic trip count."""
        args = node.args
        if not args:
            return None
        stop = args[1] if len(args) >= 2 else args[0]
        step = args[2] if len(args) >= 3 else None
        span = _as_cost(self.eval(stop))
        if span is None:
            return None
        if step is not None:
            step_cost = _as_cost(self.eval(step))
            if step_cost is not None and len(step_cost) == 1 and (
                    not step_cost[0].is_constant
                    or step_cost[0].coeff > 1):
                span = normalized([t.over(step_cost[0]) for t in span])
        return span

    def eval_len(self, node: ast.AST) -> object:
        value = self.eval(node)
        if value is RESULT:
            return [Term(1, {"Z": 1})]
        if value is CALLDATA:
            return [Term(1, {"N": 1})]
        return _as_cost(value)

    def eval_subscript_of(self, node: ast.AST) -> object:
        value = self.eval(node)
        if value is CALLDATA:
            return CALLDATA
        return None


# ---------------------------------------------------------------------
# Theory function bodies
# ---------------------------------------------------------------------

def _recognize_level_loop(loop: ast.While,
                          evaluator: SymEval) -> Optional[str]:
    """``while size > base: size = ceil(size / fan); levels += 1`` —
    the counter is a pass count: ``logm`` for an m-derived fan,
    ``logN`` for a constant fan."""
    counter = None
    fan_class = None
    for stmt in loop.body:
        if isinstance(stmt, ast.AugAssign) \
                and isinstance(stmt.target, ast.Name) \
                and isinstance(stmt.op, ast.Add):
            counter = stmt.target.id
        shrink = None
        if isinstance(stmt, ast.AugAssign) \
                and isinstance(stmt.op, ast.FloorDiv):
            shrink = stmt.value
        elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            for sub in ast.walk(stmt.value):
                if isinstance(sub, ast.BinOp) \
                        and isinstance(sub.op, ast.FloorDiv):
                    shrink = sub.right
                    break
        if shrink is not None:
            fan = _as_cost(evaluator.eval(shrink))
            if fan is not None and any("M" in t.powers for t in fan):
                fan_class = "logm"
            else:
                fan_class = "logm" if fan is None else "logN"
    if counter is not None and fan_class is not None:
        evaluator.env[counter] = [Term(1, {fan_class: 1})]
        return counter
    return None


def eval_theory_function(node: ast.AST, module: ModuleInfo,
                         args: Optional[List[object]] = None,
                         depth: int = 0) -> Optional[object]:
    """Evaluate a theory callable's body; returns a Cost or MinBound."""
    evaluator = SymEval(module, depth)
    params = [a.arg for a in node.args.args]
    defaults: List[object] = [MACHINE, [Term(1, {"N": 1})],
                              RESULT, CALLDATA]
    for i, param in enumerate(params):
        if args is not None and i < len(args) and args[i] is not None:
            evaluator.env[param] = args[i]
        elif param in ("machine", "m"):
            evaluator.env[param] = MACHINE
        elif param == "result":
            evaluator.env[param] = RESULT
        elif param == "call":
            evaluator.env[param] = CALLDATA
        elif i < len(defaults):
            evaluator.env[param] = defaults[i]

    if isinstance(node, ast.Lambda):
        return evaluator.eval(node.body)

    returns: List[object] = []

    def run(stmts: List[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                evaluator.env[stmt.targets[0].id] = \
                    evaluator.eval(stmt.value)
            elif isinstance(stmt, ast.AugAssign) \
                    and isinstance(stmt.target, ast.Name):
                current = evaluator.env.get(stmt.target.id)
                update = evaluator.eval(ast.BinOp(
                    left=ast.Name(id=stmt.target.id, ctx=ast.Load()),
                    op=stmt.op, right=stmt.value)) \
                    if current is not None else None
                evaluator.env[stmt.target.id] = update
            elif isinstance(stmt, ast.While):
                _recognize_level_loop(stmt, evaluator)
            elif isinstance(stmt, ast.If):
                run(stmt.body)
                run(stmt.orelse)
            elif isinstance(stmt, ast.Return) and stmt.value is not None:
                returns.append(evaluator.eval(stmt.value))

    run(node.body)
    # prefer the last return with a symbolic cost (the general case);
    # guard returns (constants, inf) come first in these helpers
    best = None
    for value in returns:
        if isinstance(value, MinBound):
            best = value
        else:
            cost = _as_cost(value)
            if cost is not None and any(
                    not t.is_constant for t in cost):
                best = cost
    if best is None:
        for value in returns:
            if value is not INFINITY and value is not None:
                best = value
    return best


def _io_bound_decorator(func: FunctionInfo) -> Optional[ast.Call]:
    for dec in func.node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = target.attr if isinstance(target, ast.Attribute) else \
            target.id if isinstance(target, ast.Name) else ""
        if name == "io_bound" and isinstance(dec, ast.Call) and dec.args:
            return dec
    return None


def declared_bound(func: FunctionInfo) -> Optional[DeclaredBound]:
    """The theory callable's symbolic bound, or ``None`` if the
    decorator is absent or uninterpretable."""
    dec = _io_bound_decorator(func)
    if dec is None:
        return None
    theory = dec.args[0]
    module = func.module
    value: object = None
    if isinstance(theory, ast.Lambda):
        value = eval_theory_function(theory, module)
    elif isinstance(theory, ast.Name):
        target = module.functions.get(theory.id)
        if target is not None:
            value = eval_theory_function(target.node, module)
    if isinstance(value, MinBound):
        return DeclaredBound(value.arms)
    cost = _as_cost(value)
    if cost is None or not any(not t.is_constant for t in cost):
        return None
    return DeclaredBound([cost])


# ---------------------------------------------------------------------
# Docstring bound classes (EM205)
# ---------------------------------------------------------------------

_DOC_CLASS_MARKERS = {
    "sort": ("sort(", "log_{m", "log_m(", "log_{m/b}", "logm",
             "merge pass", "passes over"),
    "search": ("log_b", "log_{b}", "height of the tree"),
    "quadratic": ("²", "^2", "**2", "quadratic", "·e/b", "v·e"),
    "scan": ("scan(", "n/b", "e/b", "z/b", "v/b", "(n + z)/b",
             "one pass", "read pass", "single pass", "linear pass"),
    "linear": ("per record", "per update", "2n", "θ(n)", "o(n)",
               "min(n,", "min(n ,", "n i/os", "one i/o per"),
}


def doc_classes(docstring: Optional[str]) -> Set[str]:
    if not docstring:
        return set()
    text = docstring.lower()
    found = set()
    for cls, markers in _DOC_CLASS_MARKERS.items():
        if any(marker in text for marker in markers):
            found.add(cls)
    return found


def bound_class(cost: Cost) -> Optional[str]:
    """Coarse class of a bound's leading term, for EM205."""
    from .expr import leading_term

    lead = leading_term(cost)
    if lead is None or lead.has_unknown:
        return None
    p = lead.powers
    n_exp = p.get("N", 0) + p.get("Z", 0)
    if n_exp >= 2 or (n_exp >= 1 and p.get("M", 0) < 0):
        return "quadratic"
    if n_exp >= 1 and p.get("B", 0) < 0:
        if p.get("logm", 0) > 0 or p.get("logN", 0) > 0:
            return "sort"
        return "scan"
    if n_exp >= 1:
        return "linear"
    if p.get("logB", 0) > 0:
        return "search"
    return None

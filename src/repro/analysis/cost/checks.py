"""The EM200-series certification rules.

========  ===========================================================
EM201     The inferred cost asymptotically exceeds the declared
          ``@io_bound`` bound: some inferred term is not within a
          constant factor of any arm of the theory callable across
          the machine-regime grid.
EM202     The declared bound omits a term the code provably pays at
          leading order: the inferred/declared ratio stays >= 2 in
          every large regime (an extra materialization pass, not an
          asymptotically vanishing additive term).
EM203     Loop-carried I/O whose trip count is data-dependent with no
          recognizable clamp to N/B or M/B (the ``K`` factor).
EM204     Per-block reads issued one at a time in a hot loop over
          precomputed indices where a ``get_many`` wave batch is
          available, forfeiting the D-disk factor.
EM205     The ``@io_bound`` theory callable disagrees with the
          docstring's declared bound class (EM003's closed form).
========  ===========================================================

Findings for EM201/EM202/EM205 anchor on the decorated function
(decorator line through ``def`` line), so one standalone waiver above
the decorator covers the certification; EM203/EM204 anchor on the
offending loop.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from ..emlint import Finding
from ..flow.summaries import FunctionInfo, Project
from .declared import DeclaredBound, bound_class, declared_bound, \
    doc_classes
from .expr import any_arm_covers, leading_ratio, render, render_arms
from .infer import Inferencer, Summary

#: the EM202 trigger: at least this much constant-factor excess at
#: leading order in every large machine regime
RATIO_THRESHOLD = 2.0


def decorated_functions(project: Project) -> List[FunctionInfo]:
    out = []
    for module in project.modules.values():
        if module.kind != "algorithm":
            continue
        for func in module.functions.values():
            if "io_bound" in func.decorators:
                out.append(func)
    out.sort(key=lambda f: (f.path, f.node.lineno))
    return out


def _anchor(func: FunctionInfo) -> Tuple[int, int]:
    """(line, end_line) spanning decorator through ``def``."""
    line = func.node.lineno
    if func.node.decorator_list:
        line = min(d.lineno for d in func.node.decorator_list)
    return line, func.node.lineno


def run_checks(project: Project,
               report: Optional[Dict[str, Dict[str, object]]] = None,
               ) -> List[Finding]:
    """All EM200-series findings; optionally fills ``report`` with the
    per-function inferred/declared expression table."""
    inferencer = Inferencer(project)
    findings: List[Finding] = []
    seen_loops: Set[Tuple[str, str, int]] = set()

    for func in decorated_functions(project):
        summary = inferencer.summary(func)
        declared = declared_bound(func)
        entry: Dict[str, object] = {
            "path": func.path,
            "line": func.node.lineno,
            "inferred": render(summary.cost),
            "declared": (render_arms(declared.arms)
                         if declared else None),
            "certified": None,
        }
        if report is not None:
            report[func.display()] = entry

        findings.extend(_loop_findings(summary, seen_loops))

        if declared is not None:
            findings.extend(_certify(func, summary, declared, entry))
        findings.extend(_doc_check(func, declared))

    return findings


def _loop_findings(summary: Summary,
                   seen: Set[Tuple[str, str, int]]) -> List[Finding]:
    findings = []
    for path, line, message in sorted(summary.ksites):
        key = ("EM203", path, line)
        if key in seen:
            continue
        seen.add(key)
        findings.append(Finding(
            rule="EM203", path=path, line=line, col=1,
            message=message))
    for path, line, message in sorted(summary.bsites):
        key = ("EM204", path, line)
        if key in seen:
            continue
        seen.add(key)
        findings.append(Finding(
            rule="EM204", path=path, line=line, col=1,
            message=message))
    return findings


def _certify(func: FunctionInfo, summary: Summary,
             declared: DeclaredBound,
             entry: Dict[str, object]) -> List[Finding]:
    findings: List[Finding] = []
    line, end_line = _anchor(func)
    exceeding = [t for t in summary.cost
                 if not t.has_unknown
                 and not any_arm_covers(declared.arms, t)]
    if exceeding:
        entry["certified"] = False
        worst = render([exceeding[0]])
        findings.append(Finding(
            rule="EM201", path=func.path, line=line, col=1,
            end_line=end_line,
            message=(
                f"inferred cost of {func.qualname}() asymptotically "
                f"exceeds the declared bound: term {worst} is not "
                f"covered by {render_arms(declared.arms)} "
                f"(inferred total: {render(summary.cost)})"),
            trace=summary.origins))
        return findings

    if not declared.is_min:
        certifiable = [t for t in summary.cost if not t.has_unknown]
        ratio = leading_ratio(certifiable, declared.arms[0])
        if ratio >= RATIO_THRESHOLD:
            entry["certified"] = False
            findings.append(Finding(
                rule="EM202", path=func.path, line=line, col=1,
                end_line=end_line,
                message=(
                    f"declared bound of {func.qualname}() omits a "
                    f"term the code pays at leading order: inferred "
                    f"{render(certifiable)} is >= {ratio:.1f}x the "
                    f"declared {render(declared.arms[0])} in every "
                    "large machine regime"),
                trace=summary.origins))
            return findings
    entry["certified"] = True
    return findings


def _doc_check(func: FunctionInfo,
               declared: Optional[DeclaredBound]) -> List[Finding]:
    if declared is None:
        return []
    # A theory bound like ``4n + 2·Sort(E)`` contains terms of several
    # classes (a docstring may legitimately name any of them), so fire
    # only when NO term of the theory matches any class the docstring's
    # closed form reads as — a genuine contract disagreement, not a
    # leading-vs-secondary-term quibble.
    theory_classes: Set[str] = set()
    for arm in declared.arms:
        for t in arm:
            cls = bound_class([t])
            if cls is not None:
                theory_classes.add(cls)
    if not theory_classes:
        return []
    docstring = ast.get_docstring(func.node)
    classes = doc_classes(docstring)
    if not classes or theory_classes & classes:
        return []
    # scan and linear are the same closed-form family once D and the
    # constant factors are folded in; only cross-family disagreement
    # (sort vs scan, search vs linear) is a contract violation
    if theory_classes & {"scan", "linear"} \
            and classes & {"scan", "linear"}:
        return []
    label = "/".join(sorted(theory_classes))
    line, end_line = _anchor(func)
    return [Finding(
        rule="EM205", path=func.path, line=line, col=1,
        end_line=end_line,
        message=(
            f"theory callable of {func.qualname}() declares a "
            f"{label}-class bound but the docstring's closed "
            f"form reads as {'/'.join(sorted(classes))}; align the "
            "docstring with the @io_bound theory"))]

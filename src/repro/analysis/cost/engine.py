"""Driver for ``emlint --cost``: certification over a file set.

Mirrors :mod:`repro.analysis.flow.engine`: per-line rules per file, one
:class:`~repro.analysis.flow.summaries.Project` over the tree, then the
EM200-series checks (and optionally the EM100 flow checks in the same
run, so ``--flow --cost`` shares a single project build), with waivers
applied across the combined finding set.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..emlint import (
    Finding, classify, finish_findings, iter_python_files,
)
from ..rules import COST_RULES, FLOW_RULES, RULES
from ..flow.summaries import Project
from .checks import run_checks


def lint_paths_cost(paths: Iterable[str], with_flow: bool = False,
                    report: Optional[Dict[str, Dict[str, object]]]
                    = None, jobs: int = 1) -> List[Finding]:
    files = list(iter_python_files(paths))
    sources: List[Tuple[str, str]] = []
    for path in files:
        with open(path, "r", encoding="utf-8") as handle:
            sources.append((path, handle.read()))
    return lint_sources_cost(sources, with_flow=with_flow,
                             report=report, jobs=jobs)


def lint_sources_cost(sources: List[Tuple[str, str]],
                      with_flow: bool = False,
                      report: Optional[Dict[str, Dict[str, object]]]
                      = None, jobs: int = 1) -> List[Finding]:
    from ..flow.engine import collect_per_file

    per_file = collect_per_file(sources, jobs=jobs)

    project = Project.build(
        [(path, source) for path, source in sources
         if classify(path) != "exempt"])

    checked: List[Finding] = []
    if with_flow:
        from ..flow.checks import run_checks as run_flow_checks
        checked.extend(run_flow_checks(project))
    checked.extend(run_checks(project, report=report))
    for finding in checked:
        if finding.path in per_file:
            per_file[finding.path][0].append(finding)
        else:  # pragma: no cover - checks only emit for known files
            per_file.setdefault(
                finding.path, ([], [], []))[0].append(finding)

    active_rules = set(RULES) | set(COST_RULES)
    if with_flow:
        active_rules |= set(FLOW_RULES)
    combined: List[Finding] = []
    for path, (findings, waivers, waiver_findings) in per_file.items():
        combined.extend(finish_findings(
            findings, waivers, waiver_findings, path, active_rules))
    combined.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return combined


def cost_report(paths: Iterable[str]) -> Dict[str, Dict[str, object]]:
    """The inferred/declared expression table for every decorated
    algorithm under ``paths`` (no findings)."""
    report: Dict[str, Dict[str, object]] = {}
    files = list(iter_python_files(paths))
    sources = []
    for path in files:
        with open(path, "r", encoding="utf-8") as handle:
            sources.append((path, handle.read()))
    project = Project.build(
        [(path, source) for path, source in sources
         if classify(path) != "exempt"])
    run_checks(project, report=report)
    return report


__all__ = ["cost_report", "lint_paths_cost", "lint_sources_cost"]

"""Symbolic I/O-cost expressions over the machine parameters.

A cost is a sum of :class:`Term` monomials over a small atom vocabulary:

==========  =========================================================
``N``       input records
``Z``       output records (``len(result)`` in theory callables)
``B``       block size (appears with negative exponents: ``N/B``)
``M``       internal memory (``M/B`` is the block budget ``m``)
``logm``    ``log_{M/B}(N/B)`` — merge/distribution pass count
``logB``    ``log_B N`` — B-tree search depth
``logN``    ``log_2 N`` — doubling/halving round count
``K``       an unrecognized data-dependent factor (EM203 material)
==========  =========================================================

Comparisons (does the declared bound *cover* an inferred term, is one
term asymptotically larger) are decided numerically on a spanning grid
of machine regimes rather than by symbolic rewriting: every term is a
monomial in the quantities above, so evaluating both sides at a spread
of ``(N, M, B, Z)`` corners — tall-cache and short-cache, scan-bound
and search-bound, ``Z`` below and above ``N`` — separates any pair of
distinct monomials in this vocabulary while staying robust to the
``M``/``B`` exponents that make lattice-based dominance awkward.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

ATOMS = ("N", "Z", "B", "M", "logm", "logB", "logN", "K")


class Term:
    """``coeff · N^a · Z^b · B^c · ...`` — one monomial of a cost."""

    __slots__ = ("coeff", "powers")

    def __init__(self, coeff: float = 1.0,
                 powers: Optional[Dict[str, int]] = None) -> None:
        self.coeff = float(coeff)
        self.powers = {a: e for a, e in (powers or {}).items() if e}

    def key(self) -> Tuple[Tuple[str, int], ...]:
        return tuple(sorted(self.powers.items()))

    def scaled(self, factor: float) -> "Term":
        return Term(self.coeff * factor, dict(self.powers))

    def times(self, other: "Term") -> "Term":
        powers = dict(self.powers)
        for atom, exp in other.powers.items():
            powers[atom] = powers.get(atom, 0) + exp
        return Term(self.coeff * other.coeff, powers)

    def over(self, other: "Term") -> "Term":
        powers = dict(self.powers)
        for atom, exp in other.powers.items():
            powers[atom] = powers.get(atom, 0) - exp
        coeff = self.coeff / other.coeff if other.coeff else self.coeff
        return Term(coeff, powers)

    @property
    def is_constant(self) -> bool:
        return not self.powers

    @property
    def has_unknown(self) -> bool:
        return "K" in self.powers

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Term({render_term(self)!r})"


#: a cost is a sum of terms
Cost = List[Term]


def term(coeff: float = 1.0, **powers: int) -> Term:
    return Term(coeff, powers)


def scan(coeff: float = 1.0) -> Term:
    """``coeff · N/B`` — one pass over the input."""
    return Term(coeff, {"N": 1, "B": -1})


def sort_terms(coeff: float = 1.0) -> Cost:
    """``coeff · (N/B)·(1 + log_{M/B}(N/B))`` — the sort closed form
    with run formation counted as the first pass (mirrors
    :func:`repro.core.bounds.sort_io`)."""
    return [Term(coeff, {"N": 1, "B": -1}),
            Term(coeff, {"N": 1, "B": -1, "logm": 1})]


def normalized(cost: Iterable[Term]) -> Cost:
    """Merge like monomials and drop zero terms."""
    merged: Dict[Tuple[Tuple[str, int], ...], Term] = {}
    for t in cost:
        if not t.coeff:
            continue
        key = t.key()
        if key in merged:
            merged[key] = Term(merged[key].coeff + t.coeff, dict(t.powers))
        else:
            merged[key] = Term(t.coeff, dict(t.powers))
    return sorted(merged.values(), key=lambda t: t.key())


def add(*costs: Iterable[Term]) -> Cost:
    out: Cost = []
    for cost in costs:
        out.extend(cost)
    return normalized(out)


def mul(a: Iterable[Term], b: Iterable[Term]) -> Cost:
    return normalized([x.times(y) for x in a for y in b])


def scale(cost: Iterable[Term], factor: Term) -> Cost:
    return normalized([t.times(factor) for t in cost])


# ---------------------------------------------------------------------
# Numeric comparison grid
# ---------------------------------------------------------------------

#: (N, M, B, Z) regimes spanning the model's corner cases.  All satisfy
#: N >= M >= B >= 2 (the external-memory regime the closed forms assume)
#: and vary Z on both sides of N.
GRID: Tuple[Tuple[float, float, float, float], ...] = (
    (2.0 ** 30, 2.0 ** 20, 2.0 ** 10, 2.0 ** 15),
    (2.0 ** 40, 2.0 ** 26, 2.0 ** 8, 2.0 ** 40),
    (2.0 ** 24, 2.0 ** 22, 2.0 ** 4, 2.0 ** 10),
    (2.0 ** 50, 2.0 ** 30, 2.0 ** 16, 2.0 ** 34),
    (2.0 ** 34, 2.0 ** 16, 2.0 ** 6, 2.0 ** 45),
    (2.0 ** 60, 2.0 ** 21, 2.0 ** 12, 2.0 ** 5),
    (2.0 ** 26, 2.0 ** 24, 2.0 ** 2, 2.0 ** 26),
)

#: the asymptotic subset: large-N regimes where leading terms dominate,
#: used for the coefficient-sensitive EM202 ratio
LARGE_GRID: Tuple[Tuple[float, float, float, float], ...] = (
    (2.0 ** 50, 2.0 ** 30, 2.0 ** 16, 2.0 ** 34),
    (2.0 ** 60, 2.0 ** 21, 2.0 ** 12, 2.0 ** 5),
    (2.0 ** 56, 2.0 ** 24, 2.0 ** 6, 2.0 ** 56),
)


def _env(point: Tuple[float, float, float, float]) -> Dict[str, float]:
    n, mem, block, z = point
    m = max(2.0, mem / block)
    blocks = max(2.0, n / block)
    return {
        "N": n,
        "Z": z,
        "B": block,
        "M": mem,
        "logm": max(1.0, math.log(blocks, m)),
        "logB": max(1.0, math.log(n, max(2.0, block))),
        "logN": max(1.0, math.log2(n)),
        # K is data-dependent with no model clamp: pessimistically N
        "K": n,
    }


_ENVS = tuple(_env(p) for p in GRID)
_LARGE_ENVS = tuple(_env(p) for p in LARGE_GRID)


def term_value(t: Term, env: Dict[str, float],
               stripped: bool = False) -> float:
    value = 1.0 if stripped else t.coeff
    for atom, exp in t.powers.items():
        value *= env.get(atom, 1.0) ** exp
    return value


def cost_value(cost: Iterable[Term], env: Dict[str, float],
               stripped: bool = False) -> float:
    return sum(term_value(t, env, stripped) for t in cost)


def covers(declared: Iterable[Term], t: Term) -> bool:
    """Is ``t`` within a constant factor of ``declared`` across every
    machine regime (coefficients stripped on both sides)?"""
    declared = list(declared)
    if not declared:
        return False
    for env in _ENVS:
        if term_value(t, env, stripped=True) \
                > cost_value(declared, env, stripped=True) * 1.0001:
            return False
    return True


def any_arm_covers(arms: Iterable[Cost], t: Term) -> bool:
    """Coverage against a ``min(...)`` bound: the dispatcher takes the
    cheaper arm at runtime, so an inferred branch term is certified if
    *some* arm pays for it."""
    return any(covers(arm, t) for arm in arms)


def leading_ratio(inferred: Iterable[Term],
                  declared: Iterable[Term]) -> float:
    """min over large regimes of inferred/declared *with* coefficients:
    the constant-factor excess at leading order.  An asymptotically
    vanishing extra term drives this to ~1; an omitted pass at the
    bound's leading order keeps it >= 2."""
    inferred, declared = list(inferred), list(declared)
    ratio = float("inf")
    for env in _LARGE_ENVS:
        denom = cost_value(declared, env)
        if denom <= 0:
            return float("inf")
        ratio = min(ratio, cost_value(inferred, env) / denom)
    return ratio


def leading_term(cost: Iterable[Term]) -> Optional[Term]:
    """The term that dominates the sum in the large-N regimes."""
    best, best_value = None, -1.0
    for t in cost:
        value = sum(term_value(t, env, stripped=True)
                    for env in _LARGE_ENVS)
        if value > best_value:
            best, best_value = t, value
    return best


# ---------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------

_ATOM_TEXT = {
    "N": "N",
    "Z": "Z",
    "B": "B",
    "M": "M",
    "logm": "log_m(n)",
    "logB": "log_B(N)",
    "logN": "log2(N)",
    "K": "K",
}


def render_term(t: Term) -> str:
    num = [a for a in ATOMS if t.powers.get(a, 0) > 0]
    den = [a for a in ATOMS if t.powers.get(a, 0) < 0]
    parts: List[str] = []
    coeff = t.coeff
    if coeff and abs(coeff - round(coeff)) < 1e-9:
        coeff = round(coeff)
    if coeff != 1 or not num:
        parts.append(f"{coeff:g}")
    for atom in num:
        exp = t.powers[atom]
        text = _ATOM_TEXT[atom]
        parts.append(text if exp == 1 else f"{text}^{exp}")
    text = "·".join(parts)
    for atom in den:
        exp = -t.powers[atom]
        base = _ATOM_TEXT[atom]
        text += f"/{base}" if exp == 1 else f"/{base}^{exp}"
    return text


def render(cost: Iterable[Term]) -> str:
    cost = normalized(cost)
    if not cost:
        return "0"
    ordered = sorted(
        cost,
        key=lambda t: -sum(term_value(t, env, stripped=True)
                           for env in _LARGE_ENVS))
    return " + ".join(render_term(t) for t in ordered)


def render_arms(arms: Iterable[Cost]) -> str:
    arms = list(arms)
    if not arms:
        return "?"
    if len(arms) == 1:
        return render(arms[0])
    return "min(" + ", ".join(render(arm) for arm in arms) + ")"

"""EM-lint engine: file walking, waiver parsing, finding assembly.

The engine parses each module, runs the
:class:`~repro.analysis.rules.ComplianceVisitor` over its AST, then
applies *waivers*: ``# em: ok(EM004) sorts one memoryload (≤ M)``
comments that suppress a finding while documenting why the construct is
legitimate.  A waiver on its own line covers the next line; an inline
waiver covers its own line.  Multiple rules may be waived at once:
``# em: ok(EM001, EM004) reason``.

Waivers are themselves checked (rule EM007): a waiver must use the exact
syntax, name known rules, carry a non-empty reason, and actually
suppress something.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

#: matches a well-formed waiver comment and captures (rules, reason)
WAIVER_RE = re.compile(
    r"#\s*em:\s*ok\(\s*([A-Za-z0-9_*]+(?:\s*,\s*[A-Za-z0-9_*]+)*)\s*\)"
    r"\s*(.*)\s*$"
)
#: anything that *looks* like it wants to be an EM directive
MARKER_RE = re.compile(r"#\s*em\s*:")


@dataclass
class Finding:
    """One rule violation (or documented exception, once waived)."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    end_line: int = 0
    waived: bool = False
    waiver_reason: str = ""
    #: interprocedural evidence (call chain and path), one hop per entry
    trace: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.end_line:
            self.end_line = self.line

    def render(self) -> str:
        mark = "waived " if self.waived else ""
        text = (f"{self.path}:{self.line}:{self.col}: {mark}{self.rule} "
                f"{self.message}")
        if self.waived and self.waiver_reason:
            text += f" [{self.waiver_reason}]"
        return text

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "waived": self.waived,
            "waiver_reason": self.waiver_reason,
        }
        if self.trace:
            data["trace"] = list(self.trace)
        return data


@dataclass
class Waiver:
    """A parsed ``# em: ok(...)`` comment."""

    line: int
    rules: Tuple[str, ...]
    reason: str
    standalone: bool
    #: for a standalone waiver: the next code line, which it covers
    target_line: int = 0
    #: rule ids this waiver actually suppressed (usage is per rule id,
    #: not per comment: ``ok(EM001,EM004)`` may be half dead)
    used_rules: Set[str] = field(default_factory=set)

    @property
    def used(self) -> bool:
        return bool(self.used_rules)

    def mark_used(self, rule: str) -> None:
        self.used_rules.add(rule)

    @property
    def covered_lines(self) -> Tuple[int, ...]:
        if self.standalone and self.target_line:
            return (self.line, self.target_line)
        return (self.line,)

    def covers(self, finding: Finding) -> bool:
        if finding.rule not in self.rules and "*" not in self.rules:
            return False
        span = range(finding.line, finding.end_line + 1)
        return any(line in span for line in self.covered_lines)


def parse_waivers(source: str, path: str) -> Tuple[List[Waiver],
                                                   List[Finding]]:
    """Extract waivers and EM007 syntax findings from comments."""
    from .rules import COST_RULES, FLOW_RULES, RULES, STATE_RULES

    known_rules = (set(RULES) | set(FLOW_RULES) | set(COST_RULES)
                   | set(STATE_RULES))

    waivers: List[Waiver] = []
    findings: List[Finding] = []
    lines = source.splitlines()
    try:
        tokens = list(tokenize.generate_tokens(
            io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return [], []
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        comment = token.string
        if not MARKER_RE.search(comment):
            continue
        row, col = token.start
        match = WAIVER_RE.search(comment)
        if not match:
            findings.append(Finding(
                rule="EM007", path=path, line=row, col=col + 1,
                message=f"malformed waiver comment {comment.strip()!r}; "
                        "expected '# em: ok(EM00X) reason'",
            ))
            continue
        rules = tuple(
            part.strip() for part in match.group(1).split(","))
        reason = match.group(2).strip()
        for rule in rules:
            if rule != "*" and rule not in known_rules:
                findings.append(Finding(
                    rule="EM007", path=path, line=row, col=col + 1,
                    message=f"waiver names unknown rule {rule!r}",
                ))
        if not reason:
            findings.append(Finding(
                rule="EM007", path=path, line=row, col=col + 1,
                message="waiver has no reason; document why the "
                        "construct respects the model",
            ))
        prefix = lines[row - 1][:col] if row - 1 < len(lines) else ""
        standalone = not prefix.strip()
        target_line = 0
        if standalone:
            # A standalone waiver covers the next code line, skipping
            # blank lines and continuation comments.
            for offset in range(row, len(lines)):
                text = lines[offset].strip()
                if text and not text.startswith("#"):
                    target_line = offset + 1
                    break
        waivers.append(Waiver(
            line=row,
            rules=rules,
            reason=reason,
            standalone=standalone,
            target_line=target_line,
        ))
    return waivers, findings


def classify(path: str) -> str:
    """Module category for rule scoping (see ComplianceVisitor)."""
    normalized = path.replace(os.sep, "/")
    parts = normalized.split("/")
    if "analysis" in parts:
        return "exempt"
    if "core" in parts or "runtime" in parts:
        # The runtime (scheduler, prefetch, write-behind, trace) is
        # substrate like core: it *implements* the charged primitives,
        # so the algorithm-facing rules do not apply to it.
        return "core"
    if parts[-1] in ("workloads.py", "conftest.py", "setup.py"):
        return "support"
    return "algorithm"


def static_findings(source: str, path: str = "<string>",
                    kind: Optional[str] = None) -> List[Finding]:
    """Run the per-line rules (EM001-EM006) over one module, without
    any waiver processing."""
    from .rules import ComplianceVisitor

    if kind is None:
        kind = classify(path)
    if kind == "exempt":
        return []
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [Finding(
            rule="EM007", path=path, line=exc.lineno or 1,
            col=(exc.offset or 0) + 1,
            message=f"could not parse module: {exc.msg}",
        )]
    visitor = ComplianceVisitor(kind, path)
    visitor.visit(tree)
    return visitor.findings


def apply_waivers(findings: Iterable[Finding],
                  waivers: Iterable[Waiver]) -> None:
    """Mark findings covered by a waiver, recording which rule ids each
    waiver suppressed."""
    for finding in findings:
        for waiver in waivers:
            if waiver.covers(finding):
                finding.waived = True
                finding.waiver_reason = waiver.reason
                waiver.mark_used(finding.rule)
                break


def unused_waiver_findings(waivers: Iterable[Waiver], path: str,
                           active_rules: Set[str]) -> List[Finding]:
    """EM007 findings for waiver rule ids that suppressed nothing.

    Usage is tracked per rule id, so ``# em: ok(EM001,EM004) ...`` where
    only EM001 ever fires is flagged for the dead EM004 entry.  Rule ids
    outside ``active_rules`` (e.g. flow rules during a per-line-only
    run) are not judged: the checker that would use them did not run.
    """
    findings: List[Finding] = []
    for waiver in waivers:
        if not waiver.reason:
            continue  # already flagged as malformed at parse time
        if "*" in waiver.rules:
            if not waiver.used:
                findings.append(Finding(
                    rule="EM007", path=path, line=waiver.line, col=1,
                    message="waiver suppresses nothing; remove it or "
                            f"fix the rule list {', '.join(waiver.rules)}",
                ))
            continue
        for rule in waiver.rules:
            if rule not in active_rules:
                continue  # unknown ids flagged at parse time; inactive
                          # ids were never checked this run
            if rule not in waiver.used_rules:
                findings.append(Finding(
                    rule="EM007", path=path, line=waiver.line, col=1,
                    message=f"waiver rule {rule} suppresses nothing; "
                            "remove it or fix the rule list "
                            f"{', '.join(waiver.rules)}",
                ))
    return findings


def finish_findings(findings: List[Finding], waivers: List[Waiver],
                    waiver_findings: List[Finding], path: str,
                    active_rules: Set[str]) -> List[Finding]:
    """Apply waivers, flag dead waiver entries, and sort."""
    apply_waivers(findings, waivers)
    waiver_findings = list(waiver_findings)
    waiver_findings.extend(
        unused_waiver_findings(waivers, path, active_rules))
    # EM007 findings may themselves be waived (e.g. fixture files that
    # intentionally hold broken waivers).
    apply_waivers(waiver_findings, waivers)
    findings = findings + waiver_findings
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings


def lint_source(source: str, path: str = "<string>",
                kind: Optional[str] = None,
                active_rules: Optional[Set[str]] = None) -> List[Finding]:
    """Lint one module's source text; returns all findings, waived ones
    marked as such."""
    from .rules import RULES

    if kind is None:
        kind = classify(path)
    if kind == "exempt":
        return []
    findings = static_findings(source, path, kind)
    waivers, waiver_findings = parse_waivers(source, path)
    if active_rules is None:
        active_rules = set(RULES)
    return finish_findings(findings, waivers, waiver_findings, path,
                           active_rules)


def lint_file(path: str) -> List[Finding]:
    """Lint one file on disk."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path)


def iter_python_files(paths: Iterable[str]) -> Iterable[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    seen = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs
                    if d not in ("__pycache__", ".git", "results"))
                for name in sorted(files):
                    if name.endswith(".py"):
                        seen.append(os.path.join(root, name))
        elif path.endswith(".py"):
            seen.append(path)
    return seen


def lint_paths(paths: Iterable[str], jobs: int = 1) -> List[Finding]:
    """Lint every Python file under ``paths``; ``jobs > 1`` fans the
    per-file work out over a process pool."""
    files = list(iter_python_files(paths))
    if jobs > 1 and len(files) > 1:
        import multiprocessing

        with multiprocessing.Pool(min(jobs, len(files))) as pool:
            per_file = pool.map(lint_file, files)
    else:
        per_file = [lint_file(path) for path in files]
    findings: List[Finding] = []
    for file_findings in per_file:
        findings.extend(file_findings)
    return findings


def unwaived(findings: Iterable[Finding]) -> List[Finding]:
    """The findings that still need fixing (not covered by a waiver)."""
    return [finding for finding in findings if not finding.waived]

"""Runtime I/O-bound sanitizer: the bounds table as an executable contract.

:func:`io_bound` decorates a public algorithm with its theoretical I/O
bound (a callable over the machine parameters, usually one of
:mod:`repro.core.bounds`).  Decoration alone only *registers* the
contract; with ``REPRO_IO_SANITIZE=1`` in the environment every call is
measured and asserted::

    measured_IOs  ≤  factor · theory(machine, N)  +  slack
    budget.peak   ≤  M

and a :class:`SanitizerRecord` with the measured-vs-theory ratio is
appended to :func:`records` for reporting.  A violation raises
:class:`IOBoundViolation` (an ``AssertionError`` subclass), so a test
suite run under the sanitizer fails loudly when an algorithm drifts out
of its constant-factor envelope.

The ``theory`` callable receives ``(machine, n)`` and may additionally
declare parameters named ``result`` (the function's return value, for
output-sensitive bounds like ``Sort(N) + Z/B``) and/or ``call`` (a dict
of the bound call arguments, for bounds that depend on tuning knobs like
``fan_in``).
"""

from __future__ import annotations

import functools
import inspect
import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..core.machine import Machine

ENV_FLAG = "REPRO_IO_SANITIZE"


class IOBoundViolation(AssertionError):
    """A decorated algorithm exceeded its asserted I/O (or memory)
    envelope while the sanitizer was active."""


@dataclass
class SanitizerRecord:
    """One measured call of an ``@io_bound`` algorithm."""

    name: str
    n: int
    measured: int
    theory: float
    allowed: float

    @property
    def ratio(self) -> float:
        """Measured I/Os per theoretical I/O (0 when theory is 0)."""
        return self.measured / self.theory if self.theory else 0.0


@dataclass
class BoundSpec:
    """Registered contract for one algorithm."""

    name: str
    func: Callable[..., Any]
    theory: Callable[..., float]
    factor: float
    slack: Optional[int]


_REGISTRY: Dict[str, BoundSpec] = {}
_RECORDS: List[SanitizerRecord] = []


def sanitize_enabled() -> bool:
    """Whether ``REPRO_IO_SANITIZE`` is set (checked on every call, so
    tests can flip it with ``monkeypatch.setenv``)."""
    return os.environ.get(ENV_FLAG, "").strip().lower() not in (
        "", "0", "false", "no")


def registry() -> Dict[str, BoundSpec]:
    """Copy of the registered algorithm → bound-spec mapping."""
    return dict(_REGISTRY)


def records() -> List[SanitizerRecord]:
    """Records accumulated since the last :func:`clear_records`."""
    return list(_RECORDS)


def clear_records() -> None:
    """Drop accumulated sanitizer records (between experiments)."""
    _RECORDS.clear()


def sized(value: Any, default: int = -1) -> int:
    """``len(value)`` when it is sized, else ``default``.  Theories use
    this to skip the envelope (returning ``inf``) for one-shot iterable
    inputs whose size cannot be known up front."""
    try:
        return len(value)
    except TypeError:
        return default


def _find_machine(args: tuple, kwargs: dict) -> Optional[Machine]:
    """First Machine among the arguments, or the ``.machine`` of the
    first argument that carries one (Table, FileStream, ...)."""
    values = list(args) + list(kwargs.values())
    for value in values:
        if isinstance(value, Machine):
            return value
    for value in values:
        carried = getattr(value, "machine", None)
        if isinstance(carried, Machine):
            return carried
    return None


def _default_n(args: tuple, kwargs: dict) -> int:
    """Problem size N: the length of the first sized argument."""
    for value in list(args) + list(kwargs.values()):
        if isinstance(value, Machine):
            continue
        try:
            return len(value)
        except TypeError:
            continue
    return 0


def _bind_call(func: Callable[..., Any], args: tuple,
               kwargs: dict) -> Dict[str, Any]:
    try:
        bound = inspect.signature(func).bind(*args, **kwargs)
        bound.apply_defaults()
        return dict(bound.arguments)
    except TypeError:  # signature mismatch surfaces from func itself
        return dict(kwargs)


def io_bound(
    theory: Callable[..., float],
    *,
    factor: float = 4.0,
    slack: Optional[int] = None,
    n: Optional[Callable[..., int]] = None,
    machine: Optional[Callable[..., Machine]] = None,
    label: Optional[str] = None,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Declare an algorithm's I/O bound and register it for sanitizing.

    Args:
        theory: callable ``(machine, n) -> I/Os`` (optionally also
            taking ``result`` and/or ``call`` keyword parameters).
        factor: allowed constant factor over ``theory``.
        slack: allowed additive I/Os (default ``4·m + 16``, covering
            short trailing blocks and per-run bookkeeping).
        n: optional extractor ``(*args, **kwargs) -> N`` overriding the
            first-sized-argument default.
        machine: optional extractor for the machine being charged.
        label: registry key (default ``module.qualname``).
    """
    theory_params = set(inspect.signature(theory).parameters)
    wants_result = "result" in theory_params
    wants_call = "call" in theory_params

    def decorate(func: Callable[..., Any]) -> Callable[..., Any]:
        name = label or f"{func.__module__}.{func.__qualname__}"
        _REGISTRY[name] = BoundSpec(
            name=name, func=func, theory=theory, factor=factor,
            slack=slack)

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not sanitize_enabled():
                return func(*args, **kwargs)
            m = machine(*args, **kwargs) if machine else _find_machine(
                args, kwargs)
            if m is None:
                return func(*args, **kwargs)
            n_value = n(*args, **kwargs) if n else _default_n(
                args, kwargs)
            before = m.stats()
            result = func(*args, **kwargs)
            measured = (m.stats() - before).total
            extras: Dict[str, Any] = {}
            if wants_result:
                extras["result"] = result
            if wants_call:
                extras["call"] = _bind_call(func, args, kwargs)
            theory_value = float(theory(m, n_value, **extras))
            slack_value = slack if slack is not None else 4 * m.m + 16
            allowed = factor * theory_value + slack_value
            _RECORDS.append(SanitizerRecord(
                name=name, n=n_value, measured=measured,
                theory=theory_value, allowed=allowed))
            if measured > allowed:
                raise IOBoundViolation(
                    f"{name}: measured {measured} I/Os exceeds allowed "
                    f"{allowed:.0f} (= {factor} x theory "
                    f"{theory_value:.0f} + {slack_value}) for N="
                    f"{n_value} on {m!r}"
                )
            if m.budget.peak > m.M:
                raise IOBoundViolation(
                    f"{name}: memory peak {m.budget.peak} exceeds "
                    f"M={m.M} on {m!r}"
                )
            return result

        wrapper.__io_bound__ = _REGISTRY[name]
        return wrapper

    return decorate


def sanitizer_report() -> str:
    """Human-readable measured-vs-theory summary of accumulated records,
    worst offender first."""
    if not _RECORDS:
        return "sanitizer: no records"
    worst: Dict[str, SanitizerRecord] = {}
    calls: Dict[str, int] = {}
    for record in _RECORDS:
        calls[record.name] = calls.get(record.name, 0) + 1
        if (record.name not in worst
                or record.ratio > worst[record.name].ratio):
            worst[record.name] = record
    lines = [
        f"{'algorithm':<55} {'calls':>5} {'N':>9} {'measured':>9} "
        f"{'theory':>9} {'ratio':>6}"
    ]
    for name, record in sorted(
            worst.items(), key=lambda kv: -kv[1].ratio):
        lines.append(
            f"{name:<55} {calls[name]:>5} {record.n:>9} "
            f"{record.measured:>9} {record.theory:>9.0f} "
            f"{record.ratio:>6.2f}"
        )
    return "\n".join(lines)

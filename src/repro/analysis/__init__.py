"""EM-lint: static and dynamic I/O-model compliance tooling.

The library's contract is that every algorithm pays for its work in
block transfers through :class:`~repro.core.machine.Machine` and never
holds more than ``M`` records in internal memory.  This package checks
that contract from two sides:

* :mod:`repro.analysis.emlint` — an AST-based linter (rules EM001–EM007)
  that flags code which could bypass the model: unbounded stream
  materialization, raw file I/O, undeclared bounds, whole-dataset
  in-memory sorts, unbudgeted accumulation, and private machinery
  construction.  Legitimate in-memory steps are *documented*, not
  invisible, via ``# em: ok(<rule>) <reason>`` waiver comments.
* :mod:`repro.analysis.flow` — the whole-program side (rules
  EM101–EM105, ``emlint --flow``): per-function CFGs with exception
  edges, a project call graph with stream/budget taint summaries, and
  a fixpoint that catches budget leaks, nested full scans, cross-call
  stream materialization, unguarded reservations and machine aliasing,
  with SARIF 2.1.0 output and a CI baseline workflow.
* :mod:`repro.analysis.sanitizer` — an :func:`io_bound` decorator
  registry turning the survey's fundamental-bounds table into an
  executable contract: with ``REPRO_IO_SANITIZE=1`` every decorated
  algorithm asserts measured I/Os ≤ c·theory and reports
  measured-vs-theory ratios.

Run the linter with ``python tools/emlint.py src/repro`` (or the
``emlint`` console script).
"""

from .emlint import Finding, Waiver, lint_paths, lint_source, unwaived
from .flow import (
    lint_paths_flow,
    lint_sources_flow,
    to_sarif,
    write_baseline,
)
from .rules import FLOW_RULES, RULES
from .sanitizer import (
    IOBoundViolation,
    SanitizerRecord,
    clear_records,
    io_bound,
    records,
    registry,
    sanitize_enabled,
    sanitizer_report,
    sized,
)

__all__ = [
    "Finding",
    "Waiver",
    "RULES",
    "FLOW_RULES",
    "lint_paths",
    "lint_paths_flow",
    "lint_source",
    "lint_sources_flow",
    "to_sarif",
    "unwaived",
    "write_baseline",
    "IOBoundViolation",
    "SanitizerRecord",
    "io_bound",
    "registry",
    "records",
    "clear_records",
    "sanitize_enabled",
    "sanitizer_report",
    "sized",
]

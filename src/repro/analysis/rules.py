"""The EM-lint rule set: AST checks for I/O-model compliance.

Each rule flags a Python construct that lets algorithm code bypass the
I/O model — doing work that a real external-memory machine would have to
pay block transfers or internal memory for, without charging either.
The checks are deliberately heuristic (this is a linter, not a type
system): a flagged line is either *fixed* or *waived* with an
``# em: ok(<rule>) <reason>`` comment documenting why the in-memory step
is legitimate (e.g. it touches at most ``M`` records under a budget
reservation).

Rules
-----

========  ============================================================
EM001     Unbounded materialization of a stream: ``list(s)``,
          ``sorted(s)``, ``tuple(s)``, ``set(s)``, ``Counter(s)`` on a
          stream-typed value pulls all ``N`` records into RAM at once.
EM002     Raw file I/O (``open``, ``os.read``, ``mmap`` …) bypasses the
          simulated disk, so its transfers are never counted.
EM003     A public algorithm function must take the machine (or a
          machine-carrying object) as its first parameter and declare
          its I/O bound in the docstring.
EM004     Whole-dataset Python-level sort: ``sorted(...)`` / ``.sort()``
          is O(1) I/Os in simulation but would not be on a real disk;
          every use must be bounded to ≤ M records and waived.
EM005     Accumulating an unbounded container while consuming a stream
          (``xs.append`` in a ``for record in stream`` loop, or a
          comprehension over a stream) without a ``budget.reserve`` /
          ``budget.acquire`` charge.
EM006     Algorithm code constructing its own ``Machine`` / ``DiskArray``
          / ``BufferPool`` / ``MemoryBudget`` — a private machine resets
          I/O accounting and dodges the caller's budget.
EM007     Waiver hygiene: malformed waiver comments, unknown rule ids,
          missing reasons, and waivers that suppress nothing.
========  ============================================================
"""

from __future__ import annotations

import ast
from typing import Any, List, Optional, Set

from .emlint import Finding

RULES = {
    "EM001": "unbounded materialization of a stream into RAM",
    "EM002": "raw file I/O bypassing the simulated disk",
    "EM003": "public algorithm without machine-first signature or "
             "declared I/O bound",
    "EM004": "Python-level whole-dataset sort in algorithm code",
    "EM005": "unbudgeted accumulation while consuming a stream",
    "EM006": "algorithm code constructing private model machinery",
    "EM007": "waiver hygiene (malformed / unknown rule / no reason / "
             "unused)",
}

#: the EM100 series: whole-program rules that need the CFG/call-graph
#: engine in :mod:`repro.analysis.flow` (``emlint --flow``)
FLOW_RULES = {
    "EM101": "budget leak: acquire/reserve with a path to function exit "
             "(including exception edges) that skips release",
    "EM102": "nested full scan: re-scanning a loop-invariant stream "
             "inside another loop (Theta(N^2/B) I/Os)",
    "EM103": "interprocedural stream materialization: a stream escapes "
             "into a callee that materializes it into RAM",
    "EM104": "reservation/bound mismatch: data-dependent reserve with "
             "no guard against the declared memory envelope M",
    "EM105": "machine aliasing: passing a privately built machine where "
             "the caller's accounting is expected",
}

#: the EM200 series: symbolic cost certification rules that need the
#: inference engine in :mod:`repro.analysis.cost` (``emlint --cost``)
COST_RULES = {
    "EM201": "inferred I/O cost asymptotically exceeds the declared "
             "@io_bound theory bound",
    "EM202": "declared bound omits a term the code pays at leading "
             "order (e.g. an extra materialization pass)",
    "EM203": "loop-carried I/O with a data-dependent trip count and "
             "no clamp relating it to N/B or M/B",
    "EM204": "per-block reads issued one-at-a-time in a hot loop "
             "where a get_many()/wave batch is available",
    "EM205": "@io_bound theory callable disagrees with the "
             "docstring's declared bound class",
}

#: the EM300 series: typestate rules over the runtime's resource
#: protocols, run by :mod:`repro.analysis.state` (``emlint --state``)
STATE_RULES = {
    "EM301": "pinned frame / reserved budget not released on some path "
             "(pin without unpin, harden without soften, a reader "
             "generator left open across an exception handler)",
    "EM302": "BlockFile/FileStream opened without a guaranteed close; "
             "use the context-manager form",
    "EM303": "use-after-release of a frame/handle, or a release that "
             "can repeat because the idempotence guard is set after "
             "fallible work",
    "EM304": "raw disk/DiskArray I/O bypassing Runtime.read_block / "
             "WriteBehind outside whitelisted runtime internals "
             "(forfeits retry, checksum scrubbing, and coalescing)",
    "EM305": "checkpoint-protocol violation: output writes after a "
             "SortManifest commit, or adopt of blocks not described "
             "by a manifest",
    "EM306": "durability point (manifest commit) reachable while "
             "freshly written output is still unflushed",
}

#: builtins that materialize their (first) argument into RAM at once
MATERIALIZERS = {"list", "sorted", "tuple", "set", "dict", "Counter",
                 "frozenset"}

#: names that construct a stream (``stream_cls`` is the conventional
#: parameter through which algorithms accept an alternative class)
STREAM_CLASSES = {"FileStream", "StripedStream", "stream_cls"}

#: machine-backed containers: appending to these *is* charged, so they
#: are exempt from EM005 (but materializing them still trips EM001)
CHARGED_SINKS = STREAM_CLASSES | {
    "Table", "AdjacencyStore", "ExternalMatrix", "BufferTree",
    "BPlusTree", "ExtendibleHashTable", "ExternalPriorityQueue",
    "BTreePriorityQueue", "BlockFile", "ExternalStack", "ExternalQueue",
    "Sorter", "ExVector",
}

#: library functions known to return a (finalized) stream
STREAM_RETURNING = {
    "external_merge_sort", "two_way_merge_sort", "merge_streams",
    "distribution_sort", "external_string_sort", "buffer_tree_sort",
    "permute", "permute_naive", "permute_by_sort",
    "segment_intersections", "segment_intersections_naive",
    "order_by", "distinct",
}

#: acceptable first-parameter annotations for EM003: either the machine
#: itself or an object that carries one (``obj.machine``)
MACHINE_CARRIERS = {
    "Machine", "Table", "FileStream", "StripedStream", "AdjacencyStore",
    "ExternalMatrix", "BufferTree", "BPlusTree", "ExtendibleHashTable",
}

#: constructing these inside algorithm code bypasses the caller's
#: accounting (EM006)
PRIVATE_MACHINERY = {
    "Machine", "DiskArray", "BufferPool", "MemoryBudget", "SimulatedDisk",
}

#: method names that grow a container in place (EM005)
ACCUMULATORS = {"append", "extend", "add", "insert", "appendleft",
                "update", "heappush", "push"}

#: a docstring "declares a bound" if it mentions any of these
#: (case-insensitive): the survey notation or plain-language I/O costs
BOUND_MARKERS = ("i/o", "o(", "θ(", "scan", "sort", "block transfer",
                 "cost", "pass")

#: raw-I/O call names (EM002): builtin open plus the os/io/mmap layer
RAW_IO_MODULES = {"os", "io", "mmap", "gzip", "bz2", "lzma", "shutil"}
RAW_IO_ATTRS = {"open", "fdopen", "read", "write", "pread", "pwrite",
                "mmap", "sendfile", "copyfile", "copyfileobj"}


def _name_of(node: ast.AST) -> Optional[str]:
    """Plain identifier of a Name/Attribute node, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _annotation_name(node: Optional[ast.AST]) -> Optional[str]:
    """Extract the head identifier from an annotation node."""
    if node is None:
        return None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.split("[")[0].split(".")[-1].strip()
    if isinstance(node, ast.Subscript):
        return _annotation_name(node.value)
    return None


def _looks_like_stream_name(name: str) -> bool:
    return name == "stream" or name.endswith("_stream") or name == "reader"


class _Scope:
    """Per-function tracking of which names hold streams / charged sinks
    and whether the function charges the budget itself."""

    def __init__(self, budget_aware: bool = False):
        self.stream_names: Set[str] = set()
        self.charged_names: Set[str] = set()
        self.budget_aware = budget_aware


def _calls_acquire(node: ast.AST) -> bool:
    """Whether the function body contains a ``*.acquire(...)`` call —
    taken as evidence the author is charging the memory budget by hand."""
    for child in ast.walk(node):
        if (isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr == "acquire"):
            return True
    return False


class ComplianceVisitor(ast.NodeVisitor):
    """Walks one module and emits EM001–EM006 findings.

    Args:
        kind: module category — ``"algorithm"`` (all rules), ``"core"``
            (EM002 only; the substrate is allowed to materialize),
            ``"support"`` (EM002 only; e.g. workload generators) or
            ``"exempt"`` (no rules; the analysis package itself).
        path: file path used in findings.
    """

    def __init__(self, kind: str, path: str):
        self.kind = kind
        self.path = path
        self.findings: List[Finding] = []
        self._scopes: List[_Scope] = [_Scope()]
        self._budget_depth = 0
        self._stream_loop_depth = 0
        self._def_depth = 0
        self._class_depth = 0

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @property
    def _scope(self) -> _Scope:
        return self._scopes[-1]

    def _algorithm(self) -> bool:
        return self.kind == "algorithm"

    def _report(self, rule: str, node: ast.AST, message: str,
                end_line: Optional[int] = None) -> None:
        self.findings.append(Finding(
            rule=rule,
            path=self.path,
            line=node.lineno,
            col=node.col_offset + 1,
            end_line=end_line if end_line is not None else getattr(
                node, "end_lineno", node.lineno),
            message=message,
        ))

    def _in_budget_context(self) -> bool:
        return self._budget_depth > 0 or self._scope.budget_aware

    def _is_stream_expr(self, node: ast.AST) -> bool:
        """Heuristic: does this expression evaluate to a stream (or a
        reader over one)?"""
        if isinstance(node, ast.Name):
            return any(node.id in s.stream_names for s in self._scopes)
        if isinstance(node, ast.Attribute):
            return _looks_like_stream_name(node.attr)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in STREAM_CLASSES | STREAM_RETURNING:
                    return True
                if func.id == "iter" and node.args:
                    return self._is_stream_expr(node.args[0])
            if isinstance(func, ast.Attribute):
                if func.attr in ("from_records", "finalize"):
                    return True
        return False

    def _is_charged_expr(self, node: ast.AST) -> bool:
        """Does this expression build a machine-backed container?"""
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in CHARGED_SINKS:
                return True
            if isinstance(func, ast.Attribute) and func.attr in (
                    "from_records", "from_rows", "finalize"):
                return True
        return self._is_stream_expr(node)

    def _is_charged_name(self, name: str) -> bool:
        return any(
            name in s.charged_names or name in s.stream_names
            for s in self._scopes
        )

    # ------------------------------------------------------------------
    # scope management
    # ------------------------------------------------------------------
    def _visit_function(self, node) -> None:
        if (self._algorithm() and self._def_depth == 0
                and self._class_depth == 0
                and not node.name.startswith("_")):
            self._check_em003(node)
        scope = _Scope(budget_aware=_calls_acquire(node))
        for arg in list(node.args.posonlyargs) + list(node.args.args):
            ann = _annotation_name(arg.annotation)
            if ann in STREAM_CLASSES or _looks_like_stream_name(arg.arg):
                scope.stream_names.add(arg.arg)
            elif ann in CHARGED_SINKS:
                scope.charged_names.add(arg.arg)
        self._scopes.append(scope)
        self._def_depth += 1
        budget_depth, self._budget_depth = self._budget_depth, 0
        loop_depth, self._stream_loop_depth = self._stream_loop_depth, 0
        try:
            self.generic_visit(node)
        finally:
            self._scopes.pop()
            self._def_depth -= 1
            self._budget_depth = budget_depth
            self._stream_loop_depth = loop_depth

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_depth += 1
        try:
            self.generic_visit(node)
        finally:
            self._class_depth -= 1

    def visit_With(self, node: ast.With) -> None:
        reserves = any(
            isinstance(item.context_expr, ast.Call)
            and isinstance(item.context_expr.func, ast.Attribute)
            and item.context_expr.func.attr in ("reserve", "measure")
            for item in node.items
        )
        for item in node.items:
            self.visit(item.context_expr)
            # ``with Sorter(...) as sorter`` binds a charged sink /
            # stream for the block, same as the assignment form
            if isinstance(item.optional_vars, ast.Name):
                name = item.optional_vars.id
                if self._is_stream_expr(item.context_expr):
                    self._scope.stream_names.add(name)
                elif self._is_charged_expr(item.context_expr):
                    self._scope.charged_names.add(name)
        if reserves:
            self._budget_depth += 1
        try:
            for stmt in node.body:
                self.visit(stmt)
        finally:
            if reserves:
                self._budget_depth -= 1

    def visit_For(self, node: ast.For) -> None:
        self.visit(node.iter)
        streaming = self._is_stream_expr(node.iter)
        for target_name in (n.id for n in ast.walk(node.target)
                            if isinstance(n, ast.Name)):
            self._scope.stream_names.discard(target_name)
        if streaming:
            self._stream_loop_depth += 1
        try:
            for stmt in node.body + node.orelse:
                self.visit(stmt)
        finally:
            if streaming:
                self._stream_loop_depth -= 1

    def visit_Assign(self, node: ast.Assign) -> None:
        self.visit(node.value)
        is_stream = self._is_stream_expr(node.value)
        is_charged = self._is_charged_expr(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                self._scope.stream_names.discard(target.id)
                self._scope.charged_names.discard(target.id)
                if is_stream:
                    self._scope.stream_names.add(target.id)
                elif is_charged:
                    self._scope.charged_names.add(target.id)
            elif isinstance(target, ast.Subscript):
                self._check_em005_subscript(target)
                self.visit(target)
            else:
                self.visit(target)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.visit(node.value)
        if isinstance(node.target, ast.Name):
            ann = _annotation_name(node.annotation)
            if ann in STREAM_CLASSES or (
                    node.value is not None
                    and self._is_stream_expr(node.value)):
                self._scope.stream_names.add(node.target.id)
            elif ann in CHARGED_SINKS:
                self._scope.charged_names.add(node.target.id)

    # ------------------------------------------------------------------
    # rule checks
    # ------------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            self._check_em002_name(node, func)
            if self._algorithm():
                fired_em001 = self._check_em001(node, func)
                if not fired_em001:
                    self._check_em004_sorted(node, func)
                self._check_em005_heappush(node, func)
                self._check_em006(node, func)
        elif isinstance(func, ast.Attribute):
            self._check_em002_attr(node, func)
            if self._algorithm():
                self._check_em004_method(node, func)
                self._check_em005_accumulate(node, func)
        self.generic_visit(node)

    def _check_em001(self, node: ast.Call, func: ast.Name) -> bool:
        if func.id in MATERIALIZERS and node.args and self._is_stream_expr(
                node.args[0]):
            self._report(
                "EM001", node,
                f"{func.id}(...) materializes a stream into RAM; "
                "iterate it blockwise or charge the memory budget",
            )
            return True
        return False

    def _check_em002_name(self, node: ast.Call, func: ast.Name) -> None:
        if func.id == "open":
            self._report(
                "EM002", node,
                "raw open() bypasses the simulated disk; use "
                "BlockFile/FileStream so transfers are counted",
            )

    def _check_em002_attr(self, node: ast.Call,
                          func: ast.Attribute) -> None:
        value_name = _name_of(func.value)
        if value_name in RAW_IO_MODULES and func.attr in RAW_IO_ATTRS:
            self._report(
                "EM002", node,
                f"{value_name}.{func.attr}(...) is raw file I/O; all "
                "transfers must go through the machine's disk",
            )

    def _check_em003(self, node) -> None:
        params = list(node.args.posonlyargs) + list(node.args.args)
        ok_first = False
        if params:
            first = params[0]
            ann = _annotation_name(first.annotation)
            ok_first = first.arg == "machine" or ann in MACHINE_CARRIERS
        if not ok_first:
            self._report(
                "EM003", node,
                f"public algorithm {node.name}() must take the machine "
                "(or a machine-carrying object) as its first parameter",
                end_line=node.lineno,
            )
        docstring = ast.get_docstring(node) or ""
        lowered = docstring.lower()
        if not any(marker in lowered for marker in BOUND_MARKERS):
            self._report(
                "EM003", node,
                f"public algorithm {node.name}() does not declare its "
                "I/O bound in the docstring",
                end_line=node.lineno,
            )

    def _check_em004_sorted(self, node: ast.Call, func: ast.Name) -> None:
        if func.id == "sorted":
            self._report(
                "EM004", node,
                "sorted(...) is an in-memory whole-dataset sort; bound "
                "it to ≤ M records (and waive) or sort externally",
            )

    def _check_em004_method(self, node: ast.Call,
                            func: ast.Attribute) -> None:
        if func.attr == "sort":
            self._report(
                "EM004", node,
                ".sort() is an in-memory sort; bound it to ≤ M records "
                "(and waive) or sort externally",
            )

    def _check_em005_heappush(self, node: ast.Call,
                              func: ast.Name) -> None:
        if (func.id == "heappush" and self._stream_loop_depth > 0
                and not self._in_budget_context() and node.args
                and isinstance(node.args[0], ast.Name)
                and not self._is_charged_name(node.args[0].id)):
            self._report(
                "EM005", node,
                f"heappush into {node.args[0].id!r} while consuming a "
                "stream is unbudgeted accumulation",
            )

    def _check_em005_accumulate(self, node: ast.Call,
                                func: ast.Attribute) -> None:
        if (func.attr in ACCUMULATORS and func.attr != "heappush"
                and self._stream_loop_depth > 0
                and not self._in_budget_context()
                and isinstance(func.value, ast.Name)
                and not self._is_charged_name(func.value.id)):
            self._report(
                "EM005", node,
                f"{func.value.id}.{func.attr}(...) inside a stream loop "
                "accumulates without charging the memory budget",
            )

    def _check_em005_subscript(self, target: ast.Subscript) -> None:
        if (self._algorithm() and self._stream_loop_depth > 0
                and not self._in_budget_context()
                and isinstance(target.value, ast.Name)
                and not self._is_charged_name(target.value.id)):
            self._report(
                "EM005", target,
                f"{target.value.id}[...] assignment inside a stream "
                "loop accumulates without charging the memory budget",
            )

    def _check_em006(self, node: ast.Call, func: ast.Name) -> None:
        if func.id in PRIVATE_MACHINERY:
            self._report(
                "EM006", node,
                f"constructing {func.id}(...) inside algorithm code "
                "bypasses the caller's machine and its accounting",
            )

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comprehension(node, "list comprehension")

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._check_comprehension(node, "set comprehension")

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._check_comprehension(node, "dict comprehension")

    def _check_comprehension(self, node: Any, label: str) -> None:
        if self._algorithm() and not self._in_budget_context():
            for generator in node.generators:
                if self._is_stream_expr(generator.iter):
                    self._report(
                        "EM005", node,
                        f"{label} over a stream materializes all N "
                        "records without charging the memory budget",
                    )
                    break
        self.generic_visit(node)

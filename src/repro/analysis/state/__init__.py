"""EM-state: typestate analysis for resource lifecycles and
fault-safety protocols.

The EM300-series tier reuses the EM-flow CFGs (exception/finally edges)
and call-graph summaries to track abstract objects through the
runtime's resource state machines — frame pins (pinned -> released),
stream readers and handles (open -> closed), the checkpoint manifest
(staged -> committed -> done), and the write-behind window (pending ->
flushed) — and reports paths that violate a protocol: leaks on
exception paths (EM301), handles without a guaranteed close (EM302),
use-after-release and repeatable releases (EM303), raw disk I/O that
bypasses the runtime (EM304), checkpoint-protocol violations (EM305),
and durability points reached with write-behind unflushed (EM306).

Entry points mirror :mod:`repro.analysis.cost`:

* :func:`lint_paths_state` / :func:`lint_sources_state` — run the
  per-line rules plus the EM300-series (optionally the EM100/EM200
  tiers too, sharing one project build) and return
  :class:`~repro.analysis.emlint.Finding` lists;
* :data:`~repro.analysis.state.machines.PROTOCOLS` — the declarative
  resource state machines the checks consume.
"""

from .engine import lint_paths_state, lint_sources_state
from .machines import PROTOCOLS, ResourceProtocol

__all__ = [
    "PROTOCOLS",
    "ResourceProtocol",
    "lint_paths_state",
    "lint_sources_state",
]

"""Resource state machines for the EM300-series typestate rules.

Every protocol the runtime enforces by convention is written down here
as a small declarative state machine: the states an abstract object can
be in, which method calls transition between them, and which states are
*accepting* (safe to reach function exit in).  The checks in
:mod:`repro.analysis.state.checks` consume the derived method sets; the
machines themselves are the documentation of record for
``docs/ANALYSIS.md`` and are asserted well-formed by the test suite.

The machines model the protocols of:

* scheduler frame pins (``try_pin``/``pin`` -> ``unpin``),
* budget hardening (``harden`` -> ``soften``),
* writer staging reservations (``reserve_writer`` ->
  ``finalize``/``sync``/``delete``),
* stream readers (``iter(stream)`` acquires a frame on first ``next``;
  ``close`` or exhaustion releases it),
* block/stream handles (``BlockFile``/``FileStream`` open -> closed),
* the checkpoint manifest (staged -> committed -> done), and
* the write-behind window (pending -> flushed before a durability
  point).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Tuple


class ResourceProtocol:
    """One resource's lifecycle as an explicit state machine.

    Args:
        name: protocol label used in findings.
        states: every state the abstract object can be in.
        start: the state entered at the acquire/construction site.
        transitions: ``(state, method) -> state`` map; methods absent
            for a state leave it unchanged (self-loop).
        accepting: states in which reaching function exit is safe.
        error_states: states whose *operations* (any method outside the
            transition table's idempotent set) are use-after-release.
    """

    def __init__(
        self,
        name: str,
        states: Tuple[str, ...],
        start: str,
        transitions: Dict[Tuple[str, str], str],
        accepting: FrozenSet[str],
        error_states: FrozenSet[str] = frozenset(),
    ):
        self.name = name
        self.states = states
        self.start = start
        self.transitions = dict(transitions)
        self.accepting = frozenset(accepting)
        self.error_states = frozenset(error_states)

    # -- derived method sets, what the checks actually consume ---------

    def releasing_methods(self) -> FrozenSet[str]:
        """Methods that move *some* state into an accepting state."""
        return frozenset(
            method for (state, method), target in self.transitions.items()
            if target in self.accepting and state not in self.accepting
        )

    def terminal_methods(self) -> FrozenSet[str]:
        """Methods that move into an *error* state — the object is dead
        afterwards and any non-idempotent operation on it is a
        use-after-release (``finalize`` is NOT terminal: a finalized
        stream is still readable)."""
        return frozenset(
            method for (_s, method), target in self.transitions.items()
            if target in self.error_states
        )

    def step(self, state: str, method: str) -> Optional[str]:
        """The successor state, or None when ``method`` in ``state`` is
        a protocol violation (an error-state operation)."""
        if (state, method) in self.transitions:
            return self.transitions[(state, method)]
        if state in self.error_states:
            return None
        return state


#: frame pins: the scheduler's pinned-frame accounting.  A pin taken by
#: ``try_pin`` (or an unconditional ``pin``) must be returned by
#: ``unpin`` on every path, unless the pinning object's class releases
#: it from another method (the WriteBehind/prefetcher window protocol).
PIN_PROTOCOL = ResourceProtocol(
    name="scheduler pin",
    states=("pinned", "released"),
    start="pinned",
    transitions={("pinned", "unpin"): "released"},
    accepting=frozenset({"released"}),
)

#: budget hardening: a reclaimable (cache) charge converted to a hard
#: charge must be softened back.
HARDEN_PROTOCOL = ResourceProtocol(
    name="hardened budget",
    states=("hard", "soft"),
    start="hard",
    transitions={("hard", "soften"): "soft"},
    accepting=frozenset({"soft"}),
)

#: a writer's staging reservation taken eagerly via ``reserve_writer``
#: is given back by ``finalize``, ``sync`` or ``delete``.
WRITER_RESERVE_PROTOCOL = ResourceProtocol(
    name="writer reservation",
    states=("reserved", "released"),
    start="reserved",
    transitions={
        ("reserved", "finalize"): "released",
        ("reserved", "sync"): "released",
        ("reserved", "delete"): "released",
    },
    accepting=frozenset({"released"}),
)

#: a stream reader (``iter(stream)``) holds one frame from its first
#: ``next`` until exhaustion or ``close``.  Exhaustion only happens on
#: the normal path, so exception paths must close deterministically.
READER_PROTOCOL = ResourceProtocol(
    name="stream reader",
    states=("open", "closed"),
    start="open",
    transitions={("open", "close"): "closed"},
    accepting=frozenset({"closed"}),
)

#: block/stream handles: open -> (finalized) -> closed/deleted.  The
#: ``closed`` state is terminal; only idempotent re-closes are allowed.
HANDLE_PROTOCOL = ResourceProtocol(
    name="block/stream handle",
    states=("open", "finalized", "closed"),
    start="open",
    transitions={
        ("open", "finalize"): "finalized",
        ("open", "sync"): "open",
        ("open", "close"): "closed",
        ("open", "delete"): "closed",
        ("open", "__exit__"): "closed",
        ("finalized", "close"): "closed",
        ("finalized", "delete"): "closed",
        ("finalized", "__exit__"): "closed",
        ("closed", "close"): "closed",
        ("closed", "delete"): "closed",
        ("closed", "__exit__"): "closed",
    },
    accepting=frozenset({"finalized", "closed"}),
    error_states=frozenset({"closed"}),
)

#: the checkpoint manifest: a pass is staged, then committed; once the
#: result is committed the described streams are immutable.
MANIFEST_PROTOCOL = ResourceProtocol(
    name="sort manifest",
    states=("staged", "committed", "done"),
    start="staged",
    transitions={
        ("staged", "commit_pass"): "committed",
        ("committed", "commit_pass"): "committed",
        ("staged", "commit_result"): "done",
        ("committed", "commit_result"): "done",
    },
    accepting=frozenset({"staged", "committed", "done"}),
    error_states=frozenset({"done"}),
)

#: write-behind window: freshly written output is pending until a flush
#: event; a durability point must not be reachable while pending.
WRITEBEHIND_PROTOCOL = ResourceProtocol(
    name="write-behind window",
    states=("pending", "flushed"),
    start="pending",
    transitions={
        ("pending", "finalize"): "flushed",
        ("pending", "sync"): "flushed",
        ("pending", "flush"): "flushed",
        ("pending", "ensure_flushed"): "flushed",
        ("pending", "delete"): "flushed",
    },
    accepting=frozenset({"flushed"}),
)

#: every protocol, keyed by label (docs and tests iterate this)
PROTOCOLS = {
    proto.name: proto
    for proto in (
        PIN_PROTOCOL, HARDEN_PROTOCOL, WRITER_RESERVE_PROTOCOL,
        READER_PROTOCOL, HANDLE_PROTOCOL, MANIFEST_PROTOCOL,
        WRITEBEHIND_PROTOCOL,
    )
}

# ---------------------------------------------------------------------
# method tables the checks key on (derived from the machines where a
# machine exists; listed explicitly where the mapping is paired)
# ---------------------------------------------------------------------

#: acquire method -> matching release method on the same receiver
PAIRED_ACQUIRES = {
    "try_pin": "unpin",
    "pin": "unpin",
    "harden": "soften",
}

#: eager writer reservation -> the methods that give it back
WRITER_RESERVE_RELEASES = WRITER_RESERVE_PROTOCOL.releasing_methods()

#: classes whose instances follow :data:`HANDLE_PROTOCOL`
HANDLE_CLASSES = {
    "BlockFile", "FileStream", "StripedStream", "ExternalStack",
    "ExternalQueue", "ExternalPriorityQueue", "BTreePriorityQueue",
    "ForecastingPrefetcher",
}

#: handle classes that are context managers whose bare
#: ``x = C(...); ...; with x:`` form EM302 asks to merge
WITH_FORM_CLASSES = {"BlockFile", "ExternalStack", "ExternalQueue",
                     "ExternalPriorityQueue"}

#: methods that end a handle's life (idempotent to repeat, but any
#: *other* operation afterwards is use-after-release)
TERMINAL_METHODS = HANDLE_PROTOCOL.terminal_methods() | {"close",
                                                         "delete"}

#: methods safe to call in the ``closed`` state (idempotent re-release
#: is this codebase's convention) plus pure introspection
SAFE_AFTER_TERMINAL = TERMINAL_METHODS | {"__exit__", "__repr__",
                                          "__len__"}

#: raw transfer methods on the disk array — the ones EM304 polices
#: (``allocate``/``free``/``disk_of`` are metadata, not transfers)
RAW_DISK_METHODS = {"read", "write", "parallel_read", "parallel_write",
                    "read_batch", "write_batch"}

#: modules allowed to touch the disk array directly: the runtime layer
#: itself, the disk implementation, and the buffer pool's deliberate
#: write-through-and-verify path (the good copy is still in hand)
RAW_IO_WHITELIST_DIRS = {"runtime"}
RAW_IO_WHITELIST_FILES = {"disk.py", "cache.py"}

#: manifest commit methods (durability points)
COMMIT_METHODS = {"commit_pass", "commit_result"}

#: write events on a stream handle that leave data in the write-behind
#: window until a flush event
WRITE_METHODS = {"append", "append_block", "extend", "write_block"}

#: flush events derived from :data:`WRITEBEHIND_PROTOCOL`
FLUSH_METHODS = frozenset(
    method for (_s, method) in WRITEBEHIND_PROTOCOL.transitions
)

#: names that look like a checkpoint manifest
MANIFEST_CLASSES = {"SortManifest"}


def is_whitelisted_raw_io(path: str) -> bool:
    """Whether ``path`` may perform raw disk I/O (EM304)."""
    normalized = path.replace("\\", "/")
    parts = normalized.split("/")
    if any(part in RAW_IO_WHITELIST_DIRS for part in parts[:-1]):
        return True
    return parts[-1] in RAW_IO_WHITELIST_FILES

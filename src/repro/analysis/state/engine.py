"""Driver for ``emlint --state``: typestate lint over a file set.

Mirrors :mod:`repro.analysis.cost.engine`: per-line rules per file, one
:class:`~repro.analysis.flow.summaries.Project` over the tree, then the
EM300-series typestate checks (optionally stacked with the EM100 flow
and EM200 cost tiers so ``--flow --cost --state`` shares one project
build), with waivers applied across the combined finding set.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..emlint import (
    Finding, classify, finish_findings, iter_python_files,
)
from ..rules import COST_RULES, FLOW_RULES, RULES, STATE_RULES
from ..flow.summaries import Project
from .checks import run_checks


def lint_paths_state(paths: Iterable[str], with_flow: bool = False,
                     with_cost: bool = False,
                     report: Optional[Dict[str, Dict[str, object]]]
                     = None, jobs: int = 1) -> List[Finding]:
    files = list(iter_python_files(paths))
    sources: List[Tuple[str, str]] = []
    for path in files:
        with open(path, "r", encoding="utf-8") as handle:
            sources.append((path, handle.read()))
    return lint_sources_state(sources, with_flow=with_flow,
                              with_cost=with_cost, report=report,
                              jobs=jobs)


def lint_sources_state(sources: List[Tuple[str, str]],
                       with_flow: bool = False,
                       with_cost: bool = False,
                       report: Optional[Dict[str, Dict[str, object]]]
                       = None, jobs: int = 1) -> List[Finding]:
    from ..flow.engine import collect_per_file

    per_file = collect_per_file(sources, jobs=jobs)

    project = Project.build(
        [(path, source) for path, source in sources
         if classify(path) != "exempt"])

    checked: List[Finding] = []
    if with_flow:
        from ..flow.checks import run_checks as run_flow_checks
        checked.extend(run_flow_checks(project))
    if with_cost:
        from ..cost.checks import run_checks as run_cost_checks
        checked.extend(run_cost_checks(project, report=report))
    checked.extend(run_checks(project))
    for finding in checked:
        if finding.path in per_file:
            per_file[finding.path][0].append(finding)
        else:  # pragma: no cover - checks only emit for known files
            per_file.setdefault(
                finding.path, ([], [], []))[0].append(finding)

    active_rules = set(RULES) | set(STATE_RULES)
    if with_flow:
        active_rules |= set(FLOW_RULES)
    if with_cost:
        active_rules |= set(COST_RULES)
    combined: List[Finding] = []
    for path, (findings, waivers, waiver_findings) in per_file.items():
        combined.extend(finish_findings(
            findings, waivers, waiver_findings, path, active_rules))
    combined.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return combined


__all__ = ["lint_paths_state", "lint_sources_state"]

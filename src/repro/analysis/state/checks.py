"""The EM300-series typestate rules, evaluated over a Project.

Each rule tracks abstract objects through the resource state machines of
:mod:`repro.analysis.state.machines` along the EM-flow CFGs (exception
and finally edges included), so a finding reads like

    EM301 stream reader 'reader' opened at runs.py:152 can be left open
    across the handler at line 165; trace: leaking path: line 152 ->
    line 165 (raise) -> unhandled exception

Deliberate soundness/precision trade-offs, documented here because they
shape what fires:

* a release lexically inside a ``finally`` whose ``try`` contains the
  acquire is trusted even when it sits behind a dynamic guard
  (``if staged: scheduler.unpin(...)`` in ``read_ahead``) — the guard
  mirrors exactly the dynamic pin count that a path-insensitive
  analysis cannot track;
* pins/hardens on a ``self.``-rooted receiver whose class releases the
  same receiver from *another* method follow the class-holder protocol
  (WriteBehind's put/flush window) and are exempt from the
  every-path-releases obligation;
* EM302 judges **normal-return** paths only; budget leaks on exception
  paths stay EM101/EM301's domain (a constructor that raises mid-way
  cleans up after itself in this codebase).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from ..emlint import Finding
from ..flow.cfg import CFG, JUNCTION
from ..flow.checks import (
    _binding_name, _leak_exits, _path_lines, _releases_or_escapes,
)
from ..flow.summaries import (
    CallSite, FunctionInfo, Project, RELEASING_NAMES, _calls_in,
    expr_key, walk_shallow,
)
from .machines import (
    COMMIT_METHODS, FLUSH_METHODS, HANDLE_CLASSES, PAIRED_ACQUIRES,
    RAW_DISK_METHODS, SAFE_AFTER_TERMINAL, TERMINAL_METHODS,
    WITH_FORM_CLASSES, WRITE_METHODS, WRITER_RESERVE_RELEASES,
    is_whitelisted_raw_io,
)

#: stream classes whose ``iter()`` acquires a reader frame
READER_SOURCES = {"FileStream", "StripedStream"}


def run_checks(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    for module in project.modules.values():
        if module.kind == "exempt":
            continue
        whitelisted = is_whitelisted_raw_io(module.path)
        for func in module.functions.values():
            findings.extend(_em301_paired(project, func))
            findings.extend(_em301_writer_reserve(func))
            findings.extend(_em301_reader(func))
            findings.extend(_em302_unclosed(func))
            findings.extend(_em302_with_form(func))
            findings.extend(_em303_use_after_release(func))
            findings.extend(_em303_release_before_guard(func))
            if not whitelisted:
                findings.extend(_em304_raw_io(func))
            findings.extend(_em305_manifest(func))
            findings.extend(_em306_durability(func))
    return findings


# ---------------------------------------------------------------------
# shared lookups
# ---------------------------------------------------------------------

def _attr_sites(func: FunctionInfo,
                attrs: Set[str]) -> List[Tuple[CallSite, str, str]]:
    """Call sites ``recv.attr(...)`` with ``attr`` in ``attrs``:
    (site, method name, canonical receiver key)."""
    out: List[Tuple[CallSite, str, str]] = []
    for site in func.calls:
        fn = site.call.func
        if isinstance(fn, ast.Attribute) and fn.attr in attrs:
            key = func.canonical_key(expr_key(fn.value))
            out.append((site, fn.attr, key))
    return out


def _call_head(call: ast.Call) -> Optional[str]:
    fn = call.func
    if isinstance(fn, ast.Name):
        return fn.id
    if isinstance(fn, ast.Attribute):
        return fn.attr
    return None


def _released_in_finally(func: FunctionInfo, acquire: ast.Call,
                         release_calls: List[ast.Call]) -> bool:
    """Is some release lexically inside a ``finally`` whose ``try``
    body contains the acquire?  Such a release runs on every exit."""
    releases = set(map(id, release_calls))
    for node in ast.walk(func.node):
        if not isinstance(node, ast.Try) or not node.finalbody:
            continue
        body_calls = {
            id(sub) for stmt in node.body for sub in ast.walk(stmt)
            if isinstance(sub, ast.Call)}
        if id(acquire) not in body_calls:
            continue
        final_calls = {
            id(sub) for stmt in node.finalbody
            for sub in ast.walk(stmt) if isinstance(sub, ast.Call)}
        if releases & final_calls:
            return True
    return False


def _released_in_catchall(func: FunctionInfo, acquire: ast.Call,
                          name: str, releasing: Set[str]) -> bool:
    """Is the acquire inside a ``try`` whose catch-all handler (bare
    ``except`` / ``except BaseException`` / ``except Exception``)
    releases ``name``?  The CFG keeps an unconditional propagate edge
    past every handler chain, so a cleanup-and-reraise handler needs
    this lexical recognition to cover the exceptional exit."""
    for node in ast.walk(func.node):
        if not isinstance(node, ast.Try) or not node.handlers:
            continue
        body_calls = {
            id(sub) for stmt in node.body for sub in ast.walk(stmt)
            if isinstance(sub, ast.Call)}
        if id(acquire) not in body_calls:
            continue
        for handler in node.handlers:
            htype = handler.type
            catch_all = htype is None or (
                isinstance(htype, ast.Name)
                and htype.id in ("BaseException", "Exception"))
            if not catch_all:
                continue
            for stmt in handler.body:
                if _releases_or_escapes(stmt, name, releasing):
                    return True
    return False


def _rebind_nodes(func: FunctionInfo, name: str) -> Set[int]:
    """CFG nodes that (re)bind local ``name`` — they cut reachability
    for per-object path queries (loop back-edges re-enter through the
    construction, which starts a fresh object)."""
    out: Set[int] = set()
    for node in func.cfg.stmt_nodes():
        stmt = node.stmt
        if isinstance(stmt, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == name
                for t in stmt.targets):
            out.add(node.index)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)) and any(
                isinstance(n, ast.Name) and n.id == name
                for n in ast.walk(stmt.target)):
            out.add(node.index)
    return out


# ---------------------------------------------------------------------
# EM301: pinned frame / reserved budget not released on some path
# ---------------------------------------------------------------------

def _em301_paired(project: Project,
                  func: FunctionInfo) -> List[Finding]:
    """``try_pin``/``pin``/``harden`` must meet its paired release on
    every path, via a finally, or via the class-holder protocol."""
    findings: List[Finding] = []
    acquires = _attr_sites(func, set(PAIRED_ACQUIRES))
    if not acquires:
        return findings
    for site, method, key in acquires:
        release = PAIRED_ACQUIRES[method]
        release_sites = _attr_sites(func, {release})
        matching = [s for s, _m, k in release_sites if k == key]
        if not matching and len(release_sites) == 1 and len(
                {k for _s, _m, k in acquires}) == 1:
            # one acquire receiver, one release receiver: same object
            matching = [release_sites[0][0]]
        if matching:
            if _released_in_finally(
                    func, site.call, [s.call for s in matching]):
                continue
            removed = {s.node_index for s in matching}
            for label, trace in _leak_exits(
                    func, site.node_index, removed,
                    [f"{method}() on {key!r} at "
                     f"{func.path}:{site.lineno}"]):
                findings.append(Finding(
                    rule="EM301", path=func.path, line=site.lineno,
                    col=1,
                    message=f"{method}() on {key!r} in "
                            f"{func.display()} has no {release}() on a "
                            f"{label} path [{'; '.join(trace)}]",
                    trace=trace,
                ))
            continue
        if _class_releases(func, key, release):
            continue
        findings.append(Finding(
            rule="EM301", path=func.path, line=site.lineno, col=1,
            message=f"{method}() on {key!r} in {func.display()} is "
                    f"never paired with {release}() (neither here nor "
                    "by another method of the class)",
            trace=(f"{method}() at {func.path}:{site.lineno}",),
        ))
    return findings


def _class_releases(func: FunctionInfo, key: str,
                    release: str) -> bool:
    """Class-holder protocol: another method of the same class calls
    the paired release on the same ``self.``-rooted receiver."""
    if func.cls is None or not (key == "self" or key.startswith("self.")):
        return False
    for method in func.cls.methods.values():
        if method is func:
            continue
        for _site, _m, k in _attr_sites(method, {release}):
            if k == key:
                return True
    return False


def _em301_writer_reserve(func: FunctionInfo) -> List[Finding]:
    """``x.reserve_writer()`` charges the stream's staging buffer up
    front; finalize/sync/delete (or an ownership escape) must follow on
    every path."""
    findings: List[Finding] = []
    releasing = set(WRITER_RESERVE_RELEASES) | RELEASING_NAMES
    for site, _method, key in _attr_sites(func, {"reserve_writer"}):
        if "." in key:
            continue  # attribute receivers follow the class protocol
        removed = {
            node.index for node in func.cfg.stmt_nodes()
            if node.stmt is not None
            and _releases_or_escapes(node.stmt, key, releasing)}
        for label, trace in _leak_exits(
                func, site.node_index, removed,
                [f"reserve_writer() on {key!r} at "
                 f"{func.path}:{site.lineno}"]):
            if label == "exception" and _released_in_catchall(
                    func, site.call, key, releasing):
                continue
            findings.append(Finding(
                rule="EM301", path=func.path, line=site.lineno, col=1,
                message=f"writer reservation on {key!r} in "
                        f"{func.display()} reaches a {label} without "
                        "finalize()/sync()/delete() "
                        f"[{'; '.join(trace)}]",
                trace=trace,
            ))
    return findings


def _em301_reader(func: FunctionInfo) -> List[Finding]:
    """``reader = iter(stream)`` holds a frame from its first ``next``;
    if an exception handler is reachable while the reader is open and
    the handler can exit the function, the frame outlives the handler
    (the traceback keeps the generator alive).  Close the reader in a
    ``finally`` or wrap it in ``contextlib.closing``."""
    findings: List[Finding] = []
    cfg = func.cfg
    junctions = [n for n in cfg.nodes
                 if n.kind == JUNCTION and n.label == "TryJunction"]
    if not junctions:
        return findings
    for node in cfg.stmt_nodes():
        stmt = node.stmt
        name, source = _reader_binding(func, stmt)
        if name is None:
            continue
        removed = {
            n.index for n in cfg.stmt_nodes()
            if n.stmt is not None and n.index != node.index
            and _reader_released(n.stmt, name)}
        starts = sorted(cfg.succ[node.index] - cfg.exc_succ[node.index])
        reach = cfg.reachable(starts, removed)
        for junction in junctions:
            if junction.index not in reach:
                continue
            handler_entries = sorted(
                cfg.succ[junction.index]
                - cfg.exc_succ[junction.index])
            if not handler_entries:
                continue  # bare try/finally: no handler holds on
            handler_reach = cfg.reachable(handler_entries, removed)
            if cfg.exit not in handler_reach \
                    and cfg.exc_exit not in handler_reach:
                continue
            handler_line = cfg.nodes[handler_entries[0]].lineno
            path = _path_lines(cfg, handler_entries[0],
                               cfg.exc_exit if cfg.exc_exit
                               in handler_reach else cfg.exit, removed)
            trace = (
                f"reader opened at {func.path}:{stmt.lineno}",
                f"handler at line {handler_line} runs with the "
                "reader frame still pinned",
            ) + ((f"leaking path: {path}",) if path else ())
            findings.append(Finding(
                rule="EM301", path=func.path, line=stmt.lineno, col=1,
                message=f"stream reader {name!r} (iter({source}) at "
                        f"line {stmt.lineno}) can be left open across "
                        f"the exception handler at line {handler_line}"
                        ": its frame stays pinned while the handler "
                        "runs; close it in a finally or wrap it in "
                        "contextlib.closing "
                        f"[{'; '.join(trace)}]",
                trace=trace,
            ))
            break
    return findings


def _reader_binding(func: FunctionInfo,
                    stmt: Optional[ast.AST]
                    ) -> Tuple[Optional[str], str]:
    """(bound name, source text) for ``name = iter(stream)`` over a
    known stream; (None, "") otherwise."""
    if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Call)
            and isinstance(stmt.value.func, ast.Name)
            and stmt.value.func.id == "iter" and stmt.value.args):
        return None, ""
    arg = stmt.value.args[0]
    if not isinstance(arg, ast.Name):
        return None, ""
    if arg.id not in func.stream_names \
            and func.local_types.get(arg.id) not in READER_SOURCES:
        return None, ""
    return stmt.targets[0].id, arg.id


def _reader_released(stmt: ast.AST, name: str) -> bool:
    """Does ``stmt`` close the reader or pass ownership on?  Unlike
    :func:`_releases_or_escapes`, feeding the reader to ``next()`` is
    consumption, not an ownership transfer."""
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        # with closing(reader): ... — any item mentioning the name
        return any(
            isinstance(n, ast.Name) and n.id == name
            for item in stmt.items
            for n in ast.walk(item.context_expr))
    if isinstance(stmt, ast.Return):
        return stmt.value is not None and any(
            isinstance(n, ast.Name) and n.id == name
            for n in ast.walk(stmt.value))
    if isinstance(stmt, ast.Assign):
        target = stmt.targets[0]
        if isinstance(target, (ast.Attribute, ast.Subscript)) and any(
                isinstance(n, ast.Name) and n.id == name
                for n in ast.walk(stmt.value)):
            return True
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        return False
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call):
            fn = node.func
            if (isinstance(fn, ast.Attribute)
                    and isinstance(fn.value, ast.Name)
                    and fn.value.id == name and fn.attr == "close"):
                return True
            head = _call_head(node)
            if head == "next":
                continue
            for arg in list(node.args) + [k.value for k in node.keywords]:
                if isinstance(arg, ast.Name) and arg.id == name:
                    return True
    return False


# ---------------------------------------------------------------------
# EM302: handle opened without a guaranteed close
# ---------------------------------------------------------------------

def _handle_constructions(
        func: FunctionInfo) -> List[Tuple[CallSite, str, str]]:
    """(site, class name, bound local name) for every
    ``x = HandleClass(...)`` construction bound to a plain local."""
    out: List[Tuple[CallSite, str, str]] = []
    for site in func.calls:
        head = _call_head(site.call)
        if head not in HANDLE_CLASSES:
            continue
        stmt = func.cfg.nodes[site.node_index].stmt
        name = _binding_name(stmt, site.call)
        if name is not None:
            out.append((site, head, name))
    return out


def _em302_unclosed(func: FunctionInfo) -> List[Finding]:
    findings: List[Finding] = []
    for site, head, name in _handle_constructions(func):
        removed = {
            node.index for node in func.cfg.stmt_nodes()
            if node.stmt is not None
            and _releases_or_escapes(node.stmt, name, RELEASING_NAMES)}
        for label, trace in _leak_exits(
                func, site.node_index, removed,
                [f"{head} {name!r} opened at "
                 f"{func.path}:{site.lineno}"]):
            if label != "return":
                continue  # exception-path budget leaks are EM101/EM301
            findings.append(Finding(
                rule="EM302", path=func.path, line=site.lineno, col=1,
                message=f"{head} {name!r} opened at line {site.lineno} "
                        "has no guaranteed close on a normal return "
                        f"path; use 'with {head}(...) as {name}:' "
                        f"[{'; '.join(trace)}]",
                trace=trace,
            ))
    return findings


def _em302_with_form(func: FunctionInfo) -> List[Finding]:
    """``x = C(...)`` followed by a bare ``with x:`` — correct, but the
    window between construction and ``with`` is unprotected; merge the
    two into ``with C(...) as x:``."""
    findings: List[Finding] = []
    constructed: Dict[str, Tuple[int, str]] = {}
    for node in walk_shallow(func.node):
        if (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)):
            head = _call_head(node.value)
            if head in WITH_FORM_CLASSES:
                constructed[node.targets[0].id] = (node.lineno, head)
    if not constructed:
        return findings
    for node in walk_shallow(func.node):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        for item in node.items:
            expr = item.context_expr
            if isinstance(expr, ast.Name) and expr.id in constructed \
                    and item.optional_vars is None:
                line, head = constructed[expr.id]
                findings.append(Finding(
                    rule="EM302", path=func.path, line=node.lineno,
                    col=node.col_offset + 1,
                    message=f"bare 'with {expr.id}:' over the {head} "
                            f"constructed at line {line}: merge into "
                            f"'with {head}(...) as {expr.id}:' so the "
                            "handle is guarded from construction on",
                    trace=(f"constructed at {func.path}:{line}",),
                ))
    return findings


# ---------------------------------------------------------------------
# EM303: use-after-release / double-release
# ---------------------------------------------------------------------

def _em303_use_after_release(func: FunctionInfo) -> List[Finding]:
    findings: List[Finding] = []
    cfg = func.cfg
    for site, head, name in _handle_constructions(func):
        rebinds = _rebind_nodes(func, name)
        terminal: List[Tuple[int, str, int]] = []  # (node, method, line)
        uses: Dict[int, Tuple[str, int]] = {}      # node -> (desc, line)
        for node in cfg.stmt_nodes():
            stmt = node.stmt
            if stmt is None or node.index == site.node_index:
                continue
            # header-only calls (_calls_in): nested statements have
            # their own CFG nodes and must not be double-counted here
            for sub in _calls_in(stmt):
                if isinstance(sub.func, ast.Attribute) and isinstance(
                        sub.func.value, ast.Name) \
                        and sub.func.value.id == name:
                    method = sub.func.attr
                    if method in TERMINAL_METHODS \
                            and method != "__exit__":
                        terminal.append(
                            (node.index, method, sub.lineno))
                    elif method not in SAFE_AFTER_TERMINAL:
                        uses.setdefault(node.index, (
                            f"{name}.{method}()", sub.lineno))
            if isinstance(stmt, (ast.For, ast.AsyncFor)) \
                    and isinstance(stmt.iter, ast.Name) \
                    and stmt.iter.id == name:
                uses.setdefault(node.index, (
                    f"iteration over {name!r}", stmt.lineno))
        for t_node, t_method, t_line in terminal:
            starts = sorted(cfg.succ[t_node] - cfg.exc_succ[t_node])
            reach = cfg.reachable(starts, rebinds)
            for u_node, (desc, u_line) in sorted(uses.items()):
                if u_node not in reach:
                    continue
                trace = (
                    f"{name}.{t_method}() at {func.path}:{t_line}",
                    f"{desc} reachable afterwards at line {u_line}",
                )
                findings.append(Finding(
                    rule="EM303", path=func.path, line=u_line, col=1,
                    message=f"{desc} at line {u_line} can run after "
                            f"{name}.{t_method}() at line {t_line}: "
                            f"use-after-release of the {head} handle "
                            f"[{'; '.join(trace)}]",
                    trace=trace,
                ))
                break  # one finding per terminal site
    return findings


def _em303_release_before_guard(func: FunctionInfo) -> List[Finding]:
    """A releasing method whose idempotence flag (``self._closed = True``
    style) is set only *after* fallible work can release twice: a first
    call releases, raises before the flag assignment, and a second call
    passes the guard and releases again."""
    if func.cls is None or not func.releases \
            or func.name not in RELEASING_NAMES:
        return []
    guard_attrs: Set[str] = set()
    for node in walk_shallow(func.node):
        if isinstance(node, ast.If):
            for sub in ast.walk(node.test):
                if isinstance(sub, ast.Attribute) and isinstance(
                        sub.value, ast.Name) and sub.value.id == "self":
                    guard_attrs.add(sub.attr)
    if not guard_attrs:
        return []
    cfg = func.cfg
    guard_assigns: Dict[int, str] = {}
    for node in cfg.stmt_nodes():
        stmt = node.stmt
        if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Attribute)
                and isinstance(stmt.targets[0].value, ast.Name)
                and stmt.targets[0].value.id == "self"
                and stmt.targets[0].attr in guard_attrs
                and isinstance(stmt.value, ast.Constant)):
            guard_assigns[node.index] = stmt.targets[0].attr
    if not guard_assigns:
        return []
    removed = set(guard_assigns)
    findings: List[Finding] = []
    for release in func.releases:
        if release.node_index not in cfg.reachable(
                [cfg.entry], removed):
            continue  # release itself sits behind the flag assignment
        starts = sorted(cfg.succ[release.node_index]
                        - cfg.exc_succ[release.node_index])
        reach = cfg.reachable(starts, removed)
        if cfg.exc_exit not in reach:
            continue
        attrs = ", ".join(sorted(set(guard_assigns.values())))
        path = ""
        for start in starts:
            path = _path_lines(cfg, start, cfg.exc_exit, removed)
            if path:
                break
        trace = (
            f"release at {func.path}:{release.lineno}",
            f"guard flag ({attrs}) assigned only later",
        ) + ((f"escaping path: {path}",) if path else ())
        findings.append(Finding(
            rule="EM303", path=func.path, line=release.lineno, col=1,
            message=f"budget release on {release.key!r} at line "
                    f"{release.lineno} can repeat: an exception before "
                    f"the idempotence flag ({attrs}) is set leaves "
                    f"{func.display()} re-runnable past its guard "
                    f"[{'; '.join(trace)}]",
            trace=trace,
        ))
    return findings


# ---------------------------------------------------------------------
# EM304: raw disk I/O outside the runtime
# ---------------------------------------------------------------------

def _em304_raw_io(func: FunctionInfo) -> List[Finding]:
    findings: List[Finding] = []
    for site, method, key in _attr_sites(func, RAW_DISK_METHODS):
        last = key.rsplit(".", 1)[-1]
        root = key.split(".", 1)[0]
        if last not in ("disk", "disks") \
                and root not in ("disk", "disks") \
                and func.local_types.get(root) not in (
                    "DiskArray", "SimulatedDisk"):
            continue
        findings.append(Finding(
            rule="EM304", path=func.path, line=site.lineno, col=1,
            message=f"raw disk I/O {key}.{method}() in "
                    f"{func.display()} bypasses Runtime.read_block / "
                    "WriteBehind: it forfeits retry-with-backoff, "
                    "checksum scrubbing, and write coalescing; route "
                    "through machine.runtime",
            trace=(f"raw {method}() at {func.path}:{site.lineno}",),
        ))
    return findings


# ---------------------------------------------------------------------
# EM305: checkpoint-protocol violations
# ---------------------------------------------------------------------

def _manifest_tainted(func: FunctionInfo) -> Set[str]:
    """Names whose value derives from a manifest (``manifest.result``,
    loop/comprehension targets over ``manifest.partial_runs``, ...)."""
    tainted = {
        name for name in list(func.params) + list(func.local_types)
        if "manifest" in name
        or func.local_types.get(name) == "SortManifest"}
    changed = True
    while changed:
        changed = False
        for node in walk_shallow(func.node):
            targets: List[ast.AST] = []
            value: Optional[ast.AST] = None
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
                value = node.value
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                targets = [node.target]
                value = node.iter
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.DictComp, ast.GeneratorExp)):
                for gen in node.generators:
                    if _mentions_any(gen.iter, tainted):
                        for n in ast.walk(gen.target):
                            if isinstance(n, ast.Name) \
                                    and n.id not in tainted:
                                tainted.add(n.id)
                                changed = True
                continue
            if value is None or not _mentions_any(value, tainted):
                continue
            for target in targets:
                for n in ast.walk(target):
                    if isinstance(n, ast.Name) and n.id not in tainted:
                        tainted.add(n.id)
                        changed = True
    return tainted


def _mentions_any(node: ast.AST, names: Set[str]) -> bool:
    return any(isinstance(n, ast.Name) and n.id in names
               for n in ast.walk(node))


def _manifest_receiver(func: FunctionInfo, key: str) -> bool:
    root = key.split(".", 1)[0]
    last = key.rsplit(".", 1)[-1]
    return ("manifest" in last or "manifest" in root
            or func.local_types.get(root) == "SortManifest")


def _em305_manifest(func: FunctionInfo) -> List[Finding]:
    findings: List[Finding] = []
    tainted = _manifest_tainted(func)
    # (a) adopt of block ids a manifest does not describe
    for site in func.calls:
        fn = site.call.func
        if not (isinstance(fn, ast.Attribute) and fn.attr == "adopt"):
            continue
        blocks_arg: Optional[ast.AST] = None
        if len(site.call.args) > 1:
            blocks_arg = site.call.args[1]
        for kw in site.call.keywords:
            if kw.arg == "block_ids":
                blocks_arg = kw.value
        if blocks_arg is None:
            continue
        if _mentions_any(blocks_arg, tainted):
            continue
        if _immediately_deleted(func, site.call):
            continue
        findings.append(Finding(
            rule="EM305", path=func.path, line=site.lineno, col=1,
            message="adopt() of block ids that no manifest describes: "
                    "recovery cannot verify or reclaim these blocks; "
                    "adopt only what a committed SortManifest lists",
            trace=(f"adopt at {func.path}:{site.lineno}",),
        ))
    # (b) output writes reachable after the result commit
    cfg = func.cfg
    commits = [(s, k) for s, m, k in _attr_sites(
        func, {"commit_result"}) if _manifest_receiver(func, k)]
    if commits:
        writes = _attr_sites(func, set(WRITE_METHODS))
        for commit, key in commits:
            starts = sorted(cfg.succ[commit.node_index]
                            - cfg.exc_succ[commit.node_index])
            reach = cfg.reachable(starts, set())
            for wsite, wmethod, wkey in writes:
                if wsite.node_index not in reach:
                    continue
                trace = (
                    f"{key}.commit_result() at "
                    f"{func.path}:{commit.lineno}",
                    f"{wkey}.{wmethod}() reachable at line "
                    f"{wsite.lineno}",
                )
                findings.append(Finding(
                    rule="EM305", path=func.path, line=wsite.lineno,
                    col=1,
                    message=f"{wkey}.{wmethod}() at line "
                            f"{wsite.lineno} can run after the result "
                            f"commit at line {commit.lineno}: the "
                            "manifest no longer describes what is on "
                            f"disk [{'; '.join(trace)}]",
                    trace=trace,
                ))
    return findings


def _immediately_deleted(func: FunctionInfo, call: ast.Call) -> bool:
    """``cls.adopt(...).delete()`` — reclamation of stale blocks."""
    for node in walk_shallow(func.node):
        if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute) \
                and node.func.value is call \
                and node.func.attr in ("delete", "close"):
            return True
    return False


# ---------------------------------------------------------------------
# EM306: durability point with write-behind unflushed
# ---------------------------------------------------------------------

def _em306_durability(func: FunctionInfo) -> List[Finding]:
    findings: List[Finding] = []
    cfg = func.cfg
    commits = [(s, k) for s, m, k in _attr_sites(func, COMMIT_METHODS)
               if _manifest_receiver(func, k)]
    if not commits:
        return findings
    writes = _attr_sites(func, set(WRITE_METHODS))
    if not writes:
        return findings
    flush_nodes = {
        s.node_index
        for s, _m, _k in _attr_sites(func, set(FLUSH_METHODS))}
    for wsite, wmethod, wkey in writes:
        starts = sorted(cfg.succ[wsite.node_index]
                        - cfg.exc_succ[wsite.node_index])
        reach = cfg.reachable(starts, flush_nodes)
        for commit, ckey in commits:
            if commit.node_index not in reach:
                continue
            path = ""
            for start in starts:
                path = _path_lines(cfg, start, commit.node_index,
                                   flush_nodes)
                if path:
                    break
            trace = (
                f"{wkey}.{wmethod}() at {func.path}:{wsite.lineno}",
                f"commit at line {commit.lineno} with no flush "
                "event between",
            ) + ((f"path: {path}",) if path else ())
            findings.append(Finding(
                rule="EM306", path=func.path, line=commit.lineno,
                col=1,
                message=f"durability point {ckey}."
                        f"{_site_attr(commit)}() at line "
                        f"{commit.lineno} is reachable from the "
                        f"{wkey}.{wmethod}() at line {wsite.lineno} "
                        "with no finalize()/sync()/flush() between: a "
                        "crash after the commit loses write-behind "
                        f"data the manifest claims durable "
                        f"[{'; '.join(trace)}]",
                trace=trace,
            ))
            break  # one finding per unflushed write
    return findings


def _site_attr(site: CallSite) -> str:
    fn = site.call.func
    return fn.attr if isinstance(fn, ast.Attribute) else ""

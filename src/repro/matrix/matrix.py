"""Dense matrices in external memory: transpose and multiply.

A ``p × q`` matrix is stored row-major, packed ``B`` records per block.
Transposing it is a *permutation*, and the survey's transpose bound
``Θ((N/B) log_{M/B} min(M, p, q, N/B))`` interpolates between one scan
(when a ``B × B`` tile fits in memory) and the full permutation cost.

* :func:`transpose_naive` reads the input column by column through the
  buffer pool — the RAM-model loop — paying ~1 I/O per element once the
  matrix outgrows the pool.
* :func:`transpose_blocked` moves ``B × B`` tiles through memory: read
  ``B`` blocks, transpose in RAM, write ``B`` blocks — ``2N/B`` I/Os when
  ``B² ≤ M`` (the common case), falling back to sort-based permuting
  otherwise.
* :func:`multiply_blocked` is classic tiled matrix multiply with three
  ``t × t`` tiles resident (``3t² ≤ M``), versus :func:`multiply_naive`.
"""

from __future__ import annotations

import math
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..analysis.sanitizer import io_bound
from ..core.blockfile import BlockFile
from ..core.bounds import scan_io, sort_io
from ..core.exceptions import ConfigurationError
from ..core.machine import Machine
from ..core.stream import FileStream
from ..sort.merge import external_merge_sort


def _matrix_n(machine: Machine, matrix: "ExternalMatrix") -> int:
    return matrix.rows * matrix.cols


def _permute_theory(machine: Machine, n: int) -> int:
    """General-permutation regime: ``O(Sort(N))`` plus the I/O scans."""
    return (sort_io(n, machine.M, machine.B, machine.D)
            + 4 * scan_io(n, machine.B, machine.D))


class ExternalMatrix:
    """A ``rows × cols`` matrix stored row-major on the simulated disk."""

    def __init__(self, machine: Machine, rows: int, cols: int,
                 blocks: Optional[BlockFile] = None):
        if rows < 1 or cols < 1:
            raise ConfigurationError(
                f"matrix dimensions must be positive, got {rows}x{cols}"
            )
        self.machine = machine
        self.rows = rows
        self.cols = cols
        B = machine.block_size
        needed = (rows * cols + B - 1) // B
        if blocks is None:
            blocks = BlockFile(machine, needed, name="matrix")
        elif blocks.num_blocks != needed:
            raise ConfigurationError(
                f"block file has {blocks.num_blocks} blocks, "
                f"need {needed} for a {rows}x{cols} matrix"
            )
        self.blocks = blocks

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(cls, machine: Machine,
                  data: Sequence[Sequence[Any]]) -> "ExternalMatrix":
        """Build a matrix from a list of equal-length rows."""
        rows = len(data)
        cols = len(data[0]) if rows else 0
        for row in data:
            if len(row) != cols:
                raise ConfigurationError("ragged rows are not a matrix")
        flat: List[Any] = [value for row in data for value in row]
        matrix = cls(machine, rows, cols)
        B = machine.block_size
        for index in range(matrix.blocks.num_blocks):
            matrix.blocks.write_block(
                index, flat[index * B:(index + 1) * B]
            )
        return matrix

    @classmethod
    def from_function(
        cls, machine: Machine, rows: int, cols: int,
        fn: Callable[[int, int], Any],
    ) -> "ExternalMatrix":
        """Build a matrix with entry ``(i, j)`` equal to ``fn(i, j)``,
        writing each block exactly once."""
        matrix = cls(machine, rows, cols)
        B = machine.block_size
        buffer: List[Any] = []
        index = 0
        for i in range(rows):
            for j in range(cols):
                buffer.append(fn(i, j))
                if len(buffer) == B:
                    matrix.blocks.write_block(index, buffer)
                    index += 1
                    buffer = []
        if buffer:
            matrix.blocks.write_block(index, buffer)
        return matrix

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def block_of(self, i: int, j: int) -> int:
        """Block index holding entry ``(i, j)``."""
        return (i * self.cols + j) // self.machine.block_size

    def get(self, i: int, j: int) -> Any:
        """Read a single entry through the buffer pool (cached)."""
        self._check_entry(i, j)
        position = i * self.cols + j
        block = self.machine.pool.get(
            self.blocks.block_id(position // self.machine.block_size)
        )
        return block[position % self.machine.block_size]

    def to_rows(self) -> List[List[Any]]:
        """Materialize the whole matrix (test helper; one scan)."""
        flat = list(self.blocks.scan())
        return [
            flat[i * self.cols:(i + 1) * self.cols]
            for i in range(self.rows)
        ]

    def read_tile(self, r0: int, r1: int, c0: int, c1: int) -> List[List[Any]]:
        """Read the submatrix ``[r0, r1) × [c0, c1)``.

        Each row segment needs its covering blocks (contiguous); the
        distinct blocks of the whole tile are fetched with one batched
        pool request (:meth:`~repro.core.cache.BufferPool.get_many`), so
        a tile of ``t`` rows costs at most ``t · ceil(t/B + 1)`` reads —
        fewer when rows share blocks — issued as parallel waves.
        """
        B = self.machine.block_size
        spans: List[Tuple[int, int, int]] = []
        needed: List[int] = []
        seen = set()
        for i in range(r0, r1):
            start = i * self.cols + c0
            first_block = start // B
            last_block = (i * self.cols + c1 - 1) // B
            spans.append((start, first_block, last_block))
            for index in range(first_block, last_block + 1):
                if index not in seen:
                    seen.add(index)
                    needed.append(index)
        block_ids = [self.blocks.block_id(index) for index in needed]
        payloads = dict(zip(
            needed, self.machine.pool.get_many(block_ids)
        ))
        tile: List[List[Any]] = []
        for start, first_block, last_block in spans:
            segment: List[Any] = []
            for index in range(first_block, last_block + 1):
                segment.extend(payloads[index])
            offset = start - first_block * B
            tile.append(segment[offset:offset + (c1 - c0)])
        return tile

    def _check_entry(self, i: int, j: int) -> None:
        if not (0 <= i < self.rows and 0 <= j < self.cols):
            raise ConfigurationError(
                f"entry ({i}, {j}) outside {self.rows}x{self.cols}"
            )

    def delete(self) -> None:
        """Free the matrix's blocks."""
        self.blocks.delete()


# ----------------------------------------------------------------------
# transpose
# ----------------------------------------------------------------------
# em: ok(EM201) dim-structured: the col/row loops jointly cover N=p·q
@io_bound(lambda machine, n: n + 2 * scan_io(n, machine.B, machine.D),
          factor=2.0, n=_matrix_n)
def transpose_naive(machine: Machine, matrix: ExternalMatrix) -> ExternalMatrix:
    """Transpose with the RAM-model column loop.

    Reads the input column by column through the buffer pool; once a
    column's blocks exceed the pool, every element access is a miss and
    the cost approaches one I/O per element.
    """
    result = ExternalMatrix(machine, matrix.cols, matrix.rows)
    B = machine.block_size
    buffer: List[Any] = []
    out_index = 0
    with machine.budget.reserve(B):
        for j in range(matrix.cols):
            for i in range(matrix.rows):
                buffer.append(matrix.get(i, j))
                if len(buffer) == B:
                    result.blocks.write_block(out_index, buffer)
                    out_index += 1
                    buffer = []
        if buffer:
            result.blocks.write_block(out_index, buffer)
    return result


# em: ok(EM201) dim-structured: the tile loops jointly cover N/B² tiles
@io_bound(_permute_theory, factor=3.0, n=_matrix_n)
def transpose_blocked(machine: Machine,
                      matrix: ExternalMatrix) -> ExternalMatrix:
    """Transpose by moving ``B × B`` tiles through memory.

    When the matrix dimensions are multiples of ``B`` and a tile fits in
    memory, each tile costs ``B`` reads + ``B`` writes: ``2N/B`` I/Os in
    total — the transpose bound's one-scan regime.  Otherwise falls back
    to :func:`transpose_by_sort` (the general-permutation regime).
    """
    B = machine.block_size
    p, q = matrix.rows, matrix.cols
    # A full tile plus the input and output block-file frames must fit.
    tile_fits = B * B <= machine.M - 2 * machine.B
    aligned = p % B == 0 and q % B == 0
    if not (tile_fits and aligned):
        return transpose_by_sort(machine, matrix)

    result = ExternalMatrix(machine, q, p)
    in_blocks_per_row = q // B
    out_blocks_per_row = p // B
    with machine.budget.reserve(B * B):
        for tile_i in range(p // B):
            for tile_j in range(q // B):
                tile = [
                    matrix.blocks.read_block(
                        (tile_i * B + r) * in_blocks_per_row + tile_j
                    )
                    for r in range(B)
                ]
                for c in range(B):
                    out_row = [tile[r][c] for r in range(B)]
                    result.blocks.write_block(
                        (tile_j * B + c) * out_blocks_per_row + tile_i,
                        out_row,
                    )
    return result


@io_bound(_permute_theory, factor=3.0, n=_matrix_n)
def transpose_by_sort(machine: Machine,
                      matrix: ExternalMatrix) -> ExternalMatrix:
    """Transpose as a general permutation routed by an external sort:
    ``O(Sort(N))`` I/Os, no alignment requirements."""
    p, q = matrix.rows, matrix.cols
    tagged = FileStream(machine, name="transpose/tagged")
    position = 0
    for value in matrix.blocks.scan():
        i, j = divmod(position, q)
        tagged.append((j * p + i, value))
        position += 1
    tagged.finalize()
    # em: ok(EM103) fusion candidate: single-scan consumer, future Sorter refactor
    ordered = external_merge_sort(
        machine, tagged, key=lambda pair: pair[0], keep_input=False
    )
    result = ExternalMatrix(machine, q, p)
    B = machine.block_size
    with machine.budget.reserve(B):
        buffer: List[Any] = []
        index = 0
        for _, value in ordered:
            buffer.append(value)
            if len(buffer) == B:
                result.blocks.write_block(index, buffer)
                index += 1
                buffer = []
        if buffer:
            result.blocks.write_block(index, buffer)
    ordered.delete()
    return result


# ----------------------------------------------------------------------
# multiply
# ----------------------------------------------------------------------
# em: ok(EM201) dim-structured: the i/j/k loops jointly cover N=p·q·r
@io_bound(lambda machine, n: n + 2 * scan_io(n, machine.B, machine.D),
          factor=2.0,
          n=lambda machine, a, b: a.rows * a.cols * b.cols)
def multiply_naive(machine: Machine, a: ExternalMatrix,
                   b: ExternalMatrix) -> ExternalMatrix:
    """Multiply with the RAM-model triple loop through the buffer pool.

    ``a.get(i, k)`` accesses are row-local (cache friendly) but
    ``b.get(k, j)`` walks a column per output entry, so large inputs pay
    ~1 I/O per multiply-add."""
    if a.cols != b.rows:
        raise ConfigurationError(
            f"cannot multiply {a.rows}x{a.cols} by {b.rows}x{b.cols}"
        )
    result = ExternalMatrix(machine, a.rows, b.cols)
    B = machine.block_size
    buffer: List[Any] = []
    out_index = 0
    with machine.budget.reserve(B):
        for i in range(a.rows):
            for j in range(b.cols):
                total = 0
                for k in range(a.cols):
                    total += a.get(i, k) * b.get(k, j)
                buffer.append(total)
                if len(buffer) == B:
                    result.blocks.write_block(out_index, buffer)
                    out_index += 1
                    buffer = []
        if buffer:
            result.blocks.write_block(out_index, buffer)
    return result


def _blocked_multiply_theory(machine: Machine, n: int,
                             call: dict) -> float:
    """``O(n³/(B·t))`` tile traffic for ``n³ = p·q·r`` multiply-adds,
    plus the result writes."""
    t = call.get("tile") or max(1, math.isqrt(machine.M // 3))
    return (4 * n / (machine.B * t)
            + 4 * scan_io(n, machine.B, machine.D))


# em: ok(EM201, EM205) tile bound N^{3/2}/(B·√M) lies outside the
# N,M,B term algebra (√M tile side); certified by the sanitizer envelope
@io_bound(_blocked_multiply_theory, factor=4.0,
          n=lambda machine, a, b, tile=None: a.rows * a.cols * b.cols)
def multiply_blocked(machine: Machine, a: ExternalMatrix,
                     b: ExternalMatrix,
                     tile: Optional[int] = None) -> ExternalMatrix:
    """Tiled matrix multiply: three ``t × t`` tiles resident at once
    (``3t² ≤ M``), giving ``O(N^{3/2} / (B·√M))`` I/Os — the survey's
    matrix-multiply bound."""
    if a.cols != b.rows:
        raise ConfigurationError(
            f"cannot multiply {a.rows}x{a.cols} by {b.rows}x{b.cols}"
        )
    p, q, r = a.rows, a.cols, b.cols
    if tile is not None:
        t = tile
    else:
        # Resident set: an accumulator band (t·r), an A tile (t²), and a
        # B tile (t²), plus the three block-file frames (a, b, result).
        t = max(1, int(math.isqrt(machine.M // 3)))
        while t > 1 and t * r + 2 * t * t + 3 * machine.B > machine.M:
            t -= 1
    if t * r + 2 * t * t + 3 * machine.B > machine.M:
        raise ConfigurationError(
            f"tile size {t} needs {t * r + 2 * t * t + 3 * machine.B} "
            f"resident records for a {p}x{q} @ {q}x{r} multiply, "
            f"M={machine.M}"
        )
    # Accumulator tiles are built in memory row-band by row-band and
    # written once at the end of each (i-band, j-band) pass.
    result_rows: List[List[Any]] = []
    result = ExternalMatrix(machine, p, r)
    B = machine.block_size
    write_buffer: List[Any] = []
    out_index = 0

    def flush_band(band: List[List[Any]]) -> None:
        nonlocal write_buffer, out_index
        for row in band:
            for value in row:
                write_buffer.append(value)
                if len(write_buffer) == B:
                    result.blocks.write_block(out_index, write_buffer)
                    out_index += 1
                    write_buffer = []

    for i0 in range(0, p, t):
        i1 = min(i0 + t, p)
        band = [[0] * r for _ in range(i1 - i0)]
        with machine.budget.reserve((i1 - i0) * r):
            for k0 in range(0, q, t):
                k1 = min(k0 + t, q)
                with machine.budget.reserve((i1 - i0) * (k1 - k0)):
                    a_tile = a.read_tile(i0, i1, k0, k1)
                    for j0 in range(0, r, t):
                        j1 = min(j0 + t, r)
                        with machine.budget.reserve(
                            (k1 - k0) * (j1 - j0)
                        ):
                            b_tile = b.read_tile(k0, k1, j0, j1)
                            for i in range(i1 - i0):
                                row = a_tile[i]
                                out = band[i]
                                for k in range(k1 - k0):
                                    aik = row[k]
                                    if aik == 0:
                                        continue
                                    b_row = b_tile[k]
                                    for j in range(j1 - j0):
                                        out[j0 + j] += aik * b_row[j]
            flush_band(band)
    if write_buffer:
        result.blocks.write_block(out_index, write_buffer)
    return result

"""Dense matrix operations in external memory."""

from .matrix import (
    ExternalMatrix,
    multiply_blocked,
    multiply_naive,
    transpose_blocked,
    transpose_by_sort,
    transpose_naive,
)

__all__ = [
    "ExternalMatrix",
    "transpose_naive",
    "transpose_blocked",
    "transpose_by_sort",
    "multiply_naive",
    "multiply_blocked",
]

"""Relational operators on the external-memory substrate.

The survey's motivating application: external sorting and hashing as the
engine room of a database.  Tables are streams of tuples; operators are
batch jobs with textbook I/O costs.
"""

from .joins import (
    block_nested_loop_join,
    grace_hash_join,
    hash_group_by,
    merge_join_iterators,
    sort_merge_join,
    sort_merge_join_materialized,
)
from .operators import (
    AGGREGATES,
    Aggregate,
    distinct,
    group_by,
    order_by,
    project,
    select,
    top_k,
)
from .steps import merge_join_steps, sort_merge_join_steps
from .table import Table

__all__ = [
    "Table",
    "select",
    "project",
    "order_by",
    "group_by",
    "hash_group_by",
    "distinct",
    "top_k",
    "Aggregate",
    "AGGREGATES",
    "sort_merge_join",
    "sort_merge_join_materialized",
    "sort_merge_join_steps",
    "merge_join_steps",
    "grace_hash_join",
    "block_nested_loop_join",
    "merge_join_iterators",
]

"""Single-table operators: selection, projection, sort, group-by.

Each operator is a full-table batch operation charged to the machine:
selection and projection are one scan + one write; ``order_by`` and
``group_by`` pay the external-sorting bound, which is exactly how real
engines implement ORDER BY and sort-based aggregation.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..analysis.sanitizer import io_bound
from ..core.bounds import scan_io, sort_io
from ..core.exceptions import ConfigurationError, MemoryLimitExceeded
from ..core.machine import Machine
from ..core.stream import FileStream
from ..sort.merge import external_merge_sort
from .table import Table


def _table_n(table: Table, *args, **kwargs) -> int:
    return len(table.stream)


def _scan_out_theory(machine: Machine, n: int, result: Table) -> int:
    """One input scan plus the output write."""
    return (scan_io(n, machine.B, machine.D)
            + scan_io(len(result.stream), machine.B, machine.D))


def _sort_out_theory(machine: Machine, n: int, result: Table) -> int:
    """One external sort plus the pre/post scans and the output write."""
    return (sort_io(n, machine.M, machine.B, machine.D)
            + 2 * scan_io(n, machine.B, machine.D)
            + scan_io(len(result.stream), machine.B, machine.D))


@io_bound(_scan_out_theory, factor=2.0, n=_table_n)
def select(
    table: Table,
    predicate: Callable[[Tuple], bool],
    name: str = "selected",
) -> Table:
    """Filter rows: one scan of the input, one write of the output."""
    machine = table.machine
    out = FileStream(machine, name=f"table/{name}")
    for row in table.rows():
        if predicate(row):
            out.append(row)
    return Table(machine, table.columns, out.finalize(), name=name)


@io_bound(_scan_out_theory, factor=2.0, n=_table_n)
def project(
    table: Table,
    columns: Sequence[str],
    name: str = "projected",
) -> Table:
    """Keep only ``columns`` (in the given order): one scan + write."""
    machine = table.machine
    indexes = [table.column_index(c) for c in columns]
    out = FileStream(machine, name=f"table/{name}")
    for row in table.rows():
        out.append(tuple(row[i] for i in indexes))
    return Table(machine, columns, out.finalize(), name=name)


@io_bound(_sort_out_theory, factor=3.0, n=_table_n)
def order_by(
    table: Table,
    column: str,
    name: str = "ordered",
) -> Table:
    """Sort rows by ``column`` with external merge sort: ``O(Sort(N))``."""
    machine = table.machine
    ordered = external_merge_sort(
        machine, table.stream, key=table.key_fn(column)
    )
    return Table(machine, table.columns, ordered, name=name)


# ----------------------------------------------------------------------
# aggregation
# ----------------------------------------------------------------------
class Aggregate:
    """A streaming aggregate: ``init`` -> ``step(state, value)`` ->
    ``final(state)``."""

    def __init__(self, init, step, final=lambda s: s):
        self.init = init
        self.step = step
        self.final = final


AGGREGATES: Dict[str, Aggregate] = {
    "count": Aggregate(lambda: 0, lambda s, v: s + 1),
    "sum": Aggregate(lambda: 0, lambda s, v: s + v),
    "min": Aggregate(lambda: None, lambda s, v: v if s is None else min(s, v)),
    "max": Aggregate(lambda: None, lambda s, v: v if s is None else max(s, v)),
    "avg": Aggregate(
        lambda: (0, 0),
        lambda s, v: (s[0] + v, s[1] + 1),
        lambda s: s[0] / s[1] if s[1] else None,
    ),
}
"""Built-in aggregate functions by name."""


@io_bound(_sort_out_theory, factor=3.0, n=_table_n)
def distinct(
    table: Table,
    name: str = "distinct",
) -> Table:
    """Remove duplicate rows: one external sort + a de-duplicating scan
    (``O(Sort(N))``), the standard DISTINCT plan."""
    machine = table.machine
    # em: ok(EM103) fusion candidate: single-scan consumer, future Sorter refactor
    ordered = external_merge_sort(machine, table.stream)
    out = FileStream(machine, name=f"table/{name}")
    previous = None
    for row in ordered:
        if row != previous:
            out.append(row)
        previous = row
    ordered.delete()
    return Table(machine, table.columns, out.finalize(), name=name)


@io_bound(_scan_out_theory, factor=2.0, n=_table_n)
def top_k(
    table: Table,
    column: str,
    k: int,
    descending: bool = True,
    name: str = "topk",
) -> Table:
    """ORDER BY ... LIMIT k without a full sort: one scan with a k-record
    in-memory heap (``k`` must fit in memory; the budget enforces it).

    Output is in rank order (best first).
    """
    import heapq

    machine = table.machine
    if k < 0:
        raise ConfigurationError(f"k must be >= 0, got {k}")
    if k > machine.M:
        # The k-record heap must itself fit in memory.
        raise MemoryLimitExceeded(k, machine.budget.in_use, machine.M)
    key_fn = table.key_fn(column)
    with machine.budget.reserve(max(1, k)):
        heap: List[Tuple] = []  # (comparable key, seq, row)
        sequence = 0
        for row in table.rows():
            value = key_fn(row)
            # Min-heap keeps the k entries with the LARGEST rank keys, so
            # rank by the value itself for descending top-k and by its
            # inverse for ascending.
            rank_key = value if descending else _Reversed(value)
            entry = (rank_key, sequence, row)
            sequence += 1
            if len(heap) < k:
                heapq.heappush(heap, entry)
            elif heap and entry > heap[0]:
                heapq.heapreplace(heap, entry)
        # em: ok(EM004) k-record heap, reserved above
        winners = [row for _, _, row in sorted(heap, reverse=True)]
    out = FileStream(machine, name=f"table/{name}")
    for row in winners:
        out.append(row)
    return Table(machine, table.columns, out.finalize(), name=name)


class _Reversed:
    """Order-inverting key wrapper (for descending top-k)."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other):
        return other.value < self.value

    def __gt__(self, other):
        return other.value > self.value

    def __eq__(self, other):
        return other.value == self.value


@io_bound(_sort_out_theory, factor=3.0, n=_table_n)
def group_by(
    table: Table,
    key_column: str,
    aggregates: Sequence[Tuple[str, str]],
    name: str = "grouped",
) -> Table:
    """Sort-based GROUP BY.

    Args:
        key_column: grouping column.
        aggregates: ``(aggregate_name, value_column)`` pairs, e.g.
            ``[("sum", "amount"), ("count", "amount")]``.

    Cost: one external sort of the input plus one scan.  Output columns
    are ``(key_column, "agg_column", ...)``.
    """
    machine = table.machine
    key_fn = table.key_fn(key_column)
    specs = []
    for agg_name, value_column in aggregates:
        if agg_name not in AGGREGATES:
            raise ConfigurationError(
                f"unknown aggregate {agg_name!r}; "
                # em: ok(EM004) fixed aggregate-name table, error message
                f"choose from {sorted(AGGREGATES)}"
            )
        specs.append(
            (AGGREGATES[agg_name], table.column_index(value_column),
             f"{agg_name}_{value_column}")
        )

    # em: ok(EM103) fusion candidate: single-scan consumer, future Sorter refactor
    ordered = external_merge_sort(machine, table.stream, key=key_fn)
    out = FileStream(machine, name=f"table/{name}")
    current_key = None
    states: List[Any] = []
    have_group = False

    def emit() -> None:
        out.append(
            tuple([current_key] + [
                spec[0].final(state) for spec, state in zip(specs, states)
            ])
        )

    for row in ordered:
        row_key = key_fn(row)
        if not have_group or row_key != current_key:
            if have_group:
                emit()
            current_key = row_key
            states = [spec[0].init() for spec in specs]
            have_group = True
        states = [
            spec[0].step(state, row[spec[1]])
            for spec, state in zip(specs, states)
        ]
    if have_group:
        emit()
    ordered.delete()
    columns = [key_column] + [spec[2] for spec in specs]
    return Table(machine, columns, out.finalize(), name=name)

"""Lightweight relational layer over streams.

The survey's motivating application — "external sort is in every database
engine" — deserves an explicit database-shaped surface.  A
:class:`Table` is a named, schema'd stream of tuples; the operators in
:mod:`repro.relational.operators` and :mod:`repro.relational.joins`
consume and produce tables while charging all their I/O to the machine.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..core.exceptions import ConfigurationError
from ..core.machine import Machine
from ..core.stream import FileStream


class Table:
    """A relation: a finalized stream of equal-width tuples plus column
    names.

    Args:
        machine: the owning machine.
        columns: column names, e.g. ``("id", "name")``.
        stream: a finalized stream of tuples; or use :meth:`from_rows`.
        name: relation name for debugging.
    """

    def __init__(
        self,
        machine: Machine,
        columns: Sequence[str],
        stream: FileStream,
        name: str = "",
    ):
        if len(set(columns)) != len(columns):
            raise ConfigurationError(f"duplicate column names in {columns}")
        self.machine = machine
        self.columns = tuple(columns)
        self.stream = stream
        self.name = name or "table"

    @classmethod
    def from_rows(
        cls,
        machine: Machine,
        columns: Sequence[str],
        rows: Iterable[Tuple],
        name: str = "",
    ) -> "Table":
        """Build a table by writing ``rows`` to a fresh stream."""
        stream = FileStream(machine, name=f"table/{name}")
        width = len(columns)
        for row in rows:
            if len(row) != width:
                raise ConfigurationError(
                    f"row {row!r} does not match columns {columns}"
                )
            stream.append(tuple(row))
        return cls(machine, columns, stream.finalize(), name=name)

    def column_index(self, column: str) -> int:
        """Position of ``column`` in each tuple."""
        try:
            return self.columns.index(column)
        except ValueError:
            raise ConfigurationError(
                f"table {self.name!r} has no column {column!r} "
                f"(has {self.columns})"
            ) from None

    def key_fn(self, column: str) -> Callable[[Tuple], Any]:
        """A key function extracting ``column`` from a row."""
        index = self.column_index(column)
        return lambda row: row[index]

    def rows(self) -> Iterator[Tuple]:
        """Iterate all rows (one read I/O per block)."""
        return iter(self.stream)

    def __len__(self) -> int:
        return len(self.stream)

    def delete(self) -> None:
        """Free the table's blocks."""
        self.stream.delete()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Table({self.name!r}, columns={self.columns}, "
            f"rows={len(self.stream)})"
        )

"""Equi-join algorithms: sort-merge, Grace hash, block nested loop.

The three classical disk join strategies, each with the cost profile
database textbooks derive from the I/O model:

* :func:`sort_merge_join` — ``Sort(R) + Sort(S) + scan`` I/Os; the output
  order is by join key.
* :func:`grace_hash_join` — ``~3·(scan(R) + scan(S))`` I/Os (partition
  write + partition read + probe) as long as each build partition fits in
  memory; recursive re-partitioning otherwise.
* :func:`block_nested_loop_join` — ``scan(R) + ceil(|R|/M)·scan(S)``,
  quadratic once the build side exceeds memory; wins only for tiny build
  sides, which is the crossover the joins experiment shows.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..analysis.sanitizer import io_bound
from ..core.bounds import scan_io, sort_io
from ..core.exceptions import ConfigurationError, EMError
from ..core.machine import Machine
from ..core.stream import FileStream
from ..pipeline.sorter import Sorter
from ..search.hashing import _hash_bits
from ..sort.merge import external_merge_sort
from .table import Table

_MAX_HASH_RECURSION = 8


def _join_n(left: Table, right: Table, left_column: str,
            right_column: str, name: str = "", **kwargs) -> int:
    return len(left.stream) + len(right.stream)


def _smj_theory(machine: Machine, n: int, result: Table,
                call: dict) -> int:
    """``Sort(R) + Sort(S)`` — charged per side, and only for sides the
    call actually sorts — plus the merge and output scans.

    The envelope used to charge ``2·Sort(|R| + |S|)``: both sides
    billed at the *combined* size, a double charge (``Sort`` is
    superlinear, so ``Sort(R) + Sort(S) < 2·Sort(R + S)``) that also
    ignored the ``assume_sorted`` fast path entirely.
    """
    left_n = len(call["left"].stream)
    right_n = len(call["right"].stream)
    cost = scan_io(len(result.stream), machine.B, machine.D)
    cost += scan_io(left_n, machine.B, machine.D)
    cost += scan_io(right_n, machine.B, machine.D)
    if not call.get("assume_left_sorted"):
        cost += sort_io(left_n, machine.M, machine.B, machine.D)
    if not call.get("assume_right_sorted"):
        cost += sort_io(right_n, machine.M, machine.B, machine.D)
    return cost


def _ghj_theory(machine: Machine, n: int, result: Table) -> int:
    """``~3·(scan(R) + scan(S))`` — partition write, partition read,
    probe — plus the output scan; recursion multiplies the constant."""
    return (3 * scan_io(n, machine.B, machine.D) + 2 * machine.m
            + scan_io(len(result.stream), machine.B, machine.D))


def _bnl_theory(machine: Machine, n: int, result: Table,
                call: dict) -> int:
    """``scan(R) + ceil(|R|/M')·scan(S) + output``."""
    left_n = len(call["left"].stream)
    right_n = len(call["right"].stream)
    loads = max(1, -(-left_n // max(1, machine.M - 3 * machine.B)))
    return (scan_io(left_n, machine.B, machine.D)
            + loads * scan_io(right_n, machine.B, machine.D)
            + scan_io(len(result.stream), machine.B, machine.D))


def _joined_columns(left: Table, right: Table) -> List[str]:
    """Concatenate column names, renaming right-side clashes."""
    columns = list(left.columns)
    for col in right.columns:
        columns.append(col if col not in columns else f"{col}_r")
    return columns


def _output_table(
    machine: Machine,
    left: Table,
    right: Table,
    pairs: Iterator[Tuple[Tuple, Tuple]],
    name: str,
) -> Table:
    out = FileStream(machine, name=f"table/{name}")
    for left_row, right_row in pairs:
        out.append(tuple(left_row) + tuple(right_row))
    return Table(
        machine, _joined_columns(left, right), out.finalize(), name=name
    )


def merge_join_iterators(
    machine: Machine,
    left_rows: Iterator[Tuple],
    right_rows: Iterator[Tuple],
    left_key: Callable[[Tuple], Any],
    right_key: Callable[[Tuple], Any],
) -> Iterator[Tuple[Tuple, Tuple]]:
    """Merge-join two iterators already sorted by their keys.

    Handles many-to-many matches by buffering the current right-side key
    group in memory (reserved from the budget), the standard assumption
    that no single join-key group exceeds ``M``.
    """
    budget = machine.budget
    left_iter = iter(left_rows)
    right_iter = iter(right_rows)
    left_row = next(left_iter, None)
    right_row = next(right_iter, None)
    while left_row is not None and right_row is not None:
        lk = left_key(left_row)
        rk = right_key(right_row)
        if lk < rk:
            left_row = next(left_iter, None)
        elif lk > rk:
            right_row = next(right_iter, None)
        else:
            # Buffer the right group for this key.  Everything after
            # the first acquire runs under try/finally so a key
            # callable (or the consumer) raising mid-group cannot leak
            # the buffered records' budget; acquire-before-append keeps
            # len(group) equal to the acquired count at all times.
            group = [right_row]
            budget.acquire(1)
            try:
                right_row = next(right_iter, None)
                while right_row is not None \
                        and right_key(right_row) == lk:
                    budget.acquire(1)
                    group.append(right_row)
                    right_row = next(right_iter, None)
                while left_row is not None and left_key(left_row) == lk:
                    for match in group:
                        yield left_row, match
                    left_row = next(left_iter, None)
            finally:
                budget.release(len(group))


@io_bound(_smj_theory, factor=3.0, n=_join_n)
def sort_merge_join(
    left: Table,
    right: Table,
    left_column: str,
    right_column: str,
    name: str = "smj",
    assume_left_sorted: bool = False,
    assume_right_sorted: bool = False,
) -> Table:
    """Pipelined sort-merge join: ``Sort(R) + Sort(S) + scan`` I/Os,
    minus the fused boundaries.  Output is ordered by join key.

    Each unsorted side is pushed straight into a
    :class:`~repro.pipeline.sorter.Sorter` and merged straight out of
    its pull iterator, so neither sorted order is ever written to disk
    (``~2·(N/DB)`` I/Os saved per side over
    :func:`sort_merge_join_materialized`).  A side already ordered by
    its join key skips its sort entirely with ``assume_sorted`` —
    ``assume_left_sorted``/``assume_right_sorted`` are the caller's
    promise (e.g. the output of a previous merge join on the same key,
    or an ``order_by``); records are merged as-is, so a false promise
    silently drops matches.

    The two pull merges run concurrently and every run surviving into a
    pull holds a reader frame for the join's whole lifetime, alongside
    the output writer and the in-memory key-group buffer.  The frame
    plan below keeps the materialized join's group headroom (two
    cursors + writer + the rest for groups) as the floor: spare frames
    beyond that envelope are split evenly between wider final merges
    (half, shared by the two sides) and extra group headroom (half).
    On a machine too small to spare any, ``width = 1`` merges each side
    down to a single run — the materialized cost, never worse.
    """
    machine = left.machine
    left_key = left.key_fn(left_column)
    right_key = right.key_fn(right_column)
    width = max(1, (machine.m - 6) // 4)
    sorters: List[Sorter] = []

    def side(table: Table, key, assume_sorted: bool,
             label: str) -> Iterator[Tuple]:
        if assume_sorted:
            return iter(table.stream)
        sorter = Sorter(
            machine, key=key, name=f"{name}/{label}",
            final_fan_in=width,
        )
        sorters.append(sorter)
        sorter.consume(iter(table.stream))
        return sorter.finish()

    try:
        with machine.trace(name):
            left_rows = side(left, left_key, assume_left_sorted, "l")
            right_rows = side(right, right_key, assume_right_sorted, "r")
            return _output_table(
                machine,
                left,
                right,
                merge_join_iterators(
                    machine, left_rows, right_rows, left_key, right_key
                ),
                name,
            )
    finally:
        for sorter in sorters:
            sorter.close()


@io_bound(_smj_theory, factor=3.0, n=_join_n)
def sort_merge_join_materialized(
    left: Table,
    right: Table,
    left_column: str,
    right_column: str,
    name: str = "smj",
) -> Table:
    """The stream-to-stream join: sort both inputs to disk, then merge.

    Kept as the measured control for the pipelining experiment (F25)
    and the fused/materialized parity suite; new code should call
    :func:`sort_merge_join`, which skips both sorted-intermediate
    boundaries."""
    machine = left.machine
    left_key = left.key_fn(left_column)
    right_key = right.key_fn(right_column)
    # em: ok(EM103) materialized control for F25/parity
    left_sorted = external_merge_sort(machine, left.stream, key=left_key)
    # em: ok(EM103) materialized control for F25/parity
    right_sorted = external_merge_sort(machine, right.stream, key=right_key)
    result = _output_table(
        machine,
        left,
        right,
        merge_join_iterators(
            machine, iter(left_sorted), iter(right_sorted),
            left_key, right_key,
        ),
        name,
    )
    left_sorted.delete()
    right_sorted.delete()
    return result


@io_bound(_bnl_theory, factor=2.0, n=_join_n)
def block_nested_loop_join(
    left: Table,
    right: Table,
    left_column: str,
    right_column: str,
    name: str = "bnl",
) -> Table:
    """Join by loading the left (build) table a memoryload at a time and
    scanning the right table once per load."""
    machine = left.machine
    left_key = left.key_fn(left_column)
    right_key = right.key_fn(right_column)
    chunk_capacity = machine.M - 3 * machine.B
    if chunk_capacity < 1:
        raise ConfigurationError(
            "machine memory too small for block nested loop join"
        )
    out = FileStream(machine, name=f"table/{name}")
    reader = iter(left.stream)
    exhausted = False
    while not exhausted:
        with machine.budget.reserve(chunk_capacity):
            build: Dict[Any, List[Tuple]] = {}
            loaded = 0
            for row in reader:
                build.setdefault(left_key(row), []).append(row)
                loaded += 1
                if loaded == chunk_capacity:
                    break
            else:
                exhausted = True
            if not build:
                break
            # em: ok(EM102) the ceil(|R|/M) rescans of S ARE the block
            # nested loop algorithm; its declared bound charges them
            for right_row in right.rows():
                for left_row in build.get(right_key(right_row), ()):
                    out.append(tuple(left_row) + tuple(right_row))
    return Table(
        left.machine, _joined_columns(left, right), out.finalize(), name=name
    )


@io_bound(lambda machine, n: 3 * scan_io(n, machine.B, machine.D)
          + 2 * machine.m,
          factor=3.0,
          n=lambda table, key_column, aggregates, name="hgrouped": len(
              table.stream))
def hash_group_by(
    table: Table,
    key_column: str,
    aggregates,
    name: str = "hgrouped",
):
    """Partitioned (Grace-style) hash aggregation.

    Hash-partitions the input so each partition's distinct groups fit in
    memory, then aggregates every partition with an in-memory dict:
    ``~2 scans`` of the input when the group count is below ``M`` per
    partition — cheaper than sort-based GROUP BY when groups are few,
    but the output is unordered.
    """
    from .operators import AGGREGATES
    from .table import Table as _Table

    machine = table.machine
    key_fn = table.key_fn(key_column)
    specs = []
    for agg_name, value_column in aggregates:
        if agg_name not in AGGREGATES:
            raise ConfigurationError(
                f"unknown aggregate {agg_name!r}; "
                # em: ok(EM004) fixed aggregate-name table, error message
                f"choose from {sorted(AGGREGATES)}"
            )
        specs.append(
            (AGGREGATES[agg_name], table.column_index(value_column),
             f"{agg_name}_{value_column}")
        )
    num_partitions = max(2, machine.m - 2)
    parts = [
        FileStream(machine, name=f"hgb/part/{i}")
        for i in range(num_partitions)
    ]
    for row in table.rows():
        index = _hash_bits(key_fn(row)) % num_partitions
        parts[index].append(row)
    for part in parts:
        part.finalize()

    out = FileStream(machine, name=f"table/{name}")
    state_capacity = machine.M - 2 * machine.B
    for part in parts:
        if len(part) == 0:
            part.delete()
            continue
        with machine.budget.reserve(state_capacity):
            states: Dict[Any, list] = {}
            for row in part:
                group = key_fn(row)
                if group not in states:
                    if len(states) >= state_capacity:
                        raise EMError(
                            "hash aggregation overflow: too many distinct "
                            "groups per partition; use sort-based "
                            "group_by instead"
                        )
                    states[group] = [spec[0].init() for spec in specs]
                states[group] = [
                    spec[0].step(state, row[spec[1]])
                    for spec, state in zip(specs, states[group])
                ]
            for group, group_states in states.items():
                out.append(
                    tuple([group] + [
                        spec[0].final(state)
                        for spec, state in zip(specs, group_states)
                    ])
                )
        part.delete()
    columns = [key_column] + [spec[2] for spec in specs]
    return _Table(machine, columns, out.finalize(), name=name)


# em: ok(EM201) the max-recursion fallback is block-nested-loop —
# O(N²/(M·B)) by design, reached only when one join key cannot split
@io_bound(_ghj_theory, factor=8.0, n=_join_n)
def grace_hash_join(
    left: Table,
    right: Table,
    left_column: str,
    right_column: str,
    name: str = "ghj",
    _depth: int = 0,
    _salt: int = 0,
) -> Table:
    """Grace hash join: hash-partition both inputs, then join each
    partition pair with an in-memory hash table on the (smaller) left
    side.  Oversized partitions are recursively re-partitioned with a
    different hash salt.  Costs ``~3·(scan(R) + scan(S))`` I/Os per
    partitioning level plus the output scan."""
    machine = left.machine
    left_key = left.key_fn(left_column)
    right_key = right.key_fn(right_column)
    if _depth > _MAX_HASH_RECURSION:
        # Re-partitioning cannot split further (e.g. one massive join
        # key); fall back to block-nested-loop over this partition pair.
        return block_nested_loop_join(
            left, right, left_column, right_column, name=name
        )
    num_partitions = max(2, machine.m - 2)
    out = FileStream(machine, name=f"table/{name}")

    def partition(table: Table, key_fn) -> List[FileStream]:
        parts = [
            FileStream(machine, name=f"ghj/part{_depth}/{i}")
            for i in range(num_partitions)
        ]
        for row in table.rows():
            index = (_hash_bits((key_fn(row), _salt))) % num_partitions
            parts[index].append(row)
        for part in parts:
            part.finalize()
        return parts

    left_parts = partition(left, left_key)
    right_parts = partition(right, right_key)
    # Resident during probe: build dict + left reader + right reader +
    # output writer frame.
    build_capacity = machine.M - 3 * machine.B

    for left_part, right_part in zip(left_parts, right_parts):
        if len(left_part) == 0 or len(right_part) == 0:
            continue
        if len(left_part) > build_capacity:
            # Recurse on the oversized partition pair with a fresh salt.
            # Release the output writer's staging frame first; the nested
            # call needs the full frame budget for its own partitioning.
            out.sync()
            sub = grace_hash_join(
                Table(machine, left.columns, left_part, name="ghj/sub-l"),
                Table(machine, right.columns, right_part, name="ghj/sub-r"),
                left_column,
                right_column,
                _depth=_depth + 1,
                _salt=_salt + 1,
            )
            for row in sub.rows():
                out.append(row)
            sub.delete()
            continue
        with machine.budget.reserve(len(left_part)):
            build: Dict[Any, List[Tuple]] = {}
            for row in left_part:
                build.setdefault(left_key(row), []).append(row)
            for right_row in right_part:
                for left_row in build.get(right_key(right_row), ()):
                    out.append(tuple(left_row) + tuple(right_row))

    for part in left_parts + right_parts:
        part.delete()
    return Table(
        machine, _joined_columns(left, right), out.finalize(), name=name
    )

"""Cooperative joins: intent-yielding generator variants.

The OLAP join jobs of the multi-tenant query service
(:mod:`repro.service`): sort-merge join recast as a generator that
yields :class:`~repro.core.intents.StreamRead` intents, reserves every
frame of working memory from a caller-supplied budget (a tenant's
:class:`~repro.core.memory.SubBudget` under the service), and writes
its output through ``append_block`` from a self-reserved buffer — no
hidden staging reservation lands on the parent ledger.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from ..core.intents import StreamRead
from ..core.machine import Machine
from ..core.stream import FileStream
from ..sort.steps import merge_sort_steps
from .joins import _joined_columns
from .table import Table


class _RowCursor:
    """Sequential row cursor over a finalized stream, one block resident.

    The generator owning the cursor fetches blocks itself (so fetches
    are yielded intents); the cursor only tracks position.
    """

    __slots__ = ("ids", "next_block", "records", "offset")

    def __init__(self, stream: FileStream):
        self.ids = list(stream.block_ids)
        self.next_block = 0
        self.records: List[Any] = []
        self.offset = 0


def _next_row(cursor: _RowCursor):
    """Advance ``cursor`` one row (fetching its next block as a yielded
    intent when the resident one is spent); returns ``None`` at EOF.
    Used as ``row = yield from _next_row(cursor)``."""
    if cursor.offset >= len(cursor.records):
        if cursor.next_block >= len(cursor.ids):
            return None
        [payload] = yield StreamRead([cursor.ids[cursor.next_block]])
        cursor.records = payload
        cursor.next_block += 1
        cursor.offset = 0
    row = cursor.records[cursor.offset]
    cursor.offset += 1
    return row


def merge_join_steps(
    machine: Machine,
    left_stream: FileStream,
    right_stream: FileStream,
    left_key: Callable[[Tuple], Any],
    right_key: Callable[[Tuple], Any],
    budget=None,
    name: str = "coop-mj",
):
    """Cooperatively merge-join two streams already sorted by their keys.

    Yields :class:`~repro.core.intents.StreamRead` intents; *returns*
    the finalized output stream of ``left_row + right_row`` tuples.
    Many-to-many matches buffer the current right-side key group in
    memory reserved from ``budget``, the standard assumption that no
    single join-key group exceeds the (share of) memory.
    """
    budget = budget if budget is not None else machine.budget
    B = machine.block_size
    left = _RowCursor(left_stream)
    right = _RowCursor(right_stream)
    out = FileStream(machine, name=name)
    # Two cursor frames plus the output buffer.
    with budget.reserve(3 * B):
        try:
            buffer: List[Tuple] = []
            left_row = yield from _next_row(left)
            right_row = yield from _next_row(right)
            while left_row is not None and right_row is not None:
                lk = left_key(left_row)
                rk = right_key(right_row)
                if lk < rk:
                    left_row = yield from _next_row(left)
                elif lk > rk:
                    right_row = yield from _next_row(right)
                else:
                    # Buffer the right group for this key under the
                    # budget; acquire-before-append keeps len(group)
                    # equal to the acquired count at all times.
                    group = [right_row]
                    budget.acquire(1)
                    try:
                        right_row = yield from _next_row(right)
                        while right_row is not None \
                                and right_key(right_row) == lk:
                            budget.acquire(1)
                            group.append(right_row)
                            right_row = yield from _next_row(right)
                        while left_row is not None \
                                and left_key(left_row) == lk:
                            for match in group:
                                buffer.append(
                                    tuple(left_row) + tuple(match)
                                )
                                if len(buffer) >= B:
                                    out.append_block(buffer[:B])
                                    del buffer[:B]
                            left_row = yield from _next_row(left)
                    finally:
                        budget.release(len(group))
            while buffer:
                out.append_block(buffer[:B])
                del buffer[:B]
        except BaseException:
            out.delete()
            raise
    return out.finalize()


def sort_merge_join_steps(
    left: Table,
    right: Table,
    left_column: str,
    right_column: str,
    budget=None,
    name: str = "coop-smj",
):
    """Cooperative sort-merge join of two tables: both inputs sorted
    through :func:`~repro.sort.steps.merge_sort_steps`, then merged
    with :func:`merge_join_steps` — ``Sort(R) + Sort(S) + scan`` I/Os,
    all interleavable and charged to ``budget``.

    Returns the joined :class:`~repro.relational.table.Table` (columns
    concatenated, right-side clashes renamed as in the eager join).
    """
    machine = left.machine
    left_key = left.key_fn(left_column)
    right_key = right.key_fn(right_column)
    left_sorted = yield from merge_sort_steps(
        machine, left.stream, key=left_key, budget=budget,
        name=f"{name}/l",
    )
    try:
        right_sorted = yield from merge_sort_steps(
            machine, right.stream, key=right_key, budget=budget,
            name=f"{name}/r",
        )
    except BaseException:
        left_sorted.delete()
        raise
    try:
        out = yield from merge_join_steps(
            machine, left_sorted, right_sorted, left_key, right_key,
            budget=budget, name=f"table/{name}",
        )
    finally:
        left_sorted.delete()
        right_sorted.delete()
    return Table(machine, _joined_columns(left, right), out, name=name)

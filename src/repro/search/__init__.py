"""Online search structures: B+-tree and extendible hashing.

* :class:`~repro.search.btree.BPlusTree` — ``Θ(log_B N)`` point queries,
  ``Θ(log_B N + Z/B)`` range queries, ``Θ(N/B)`` bulk load.
* :class:`~repro.search.hashing.ExtendibleHashTable` — O(1)-I/O exact-match
  lookups; no range queries.
"""

from .btree import BPlusTree
from .hashing import ExtendibleHashTable

__all__ = ["BPlusTree", "ExtendibleHashTable"]

"""Extendible hashing: dictionary lookups in O(1) I/Os.

The survey's alternative to tree search when only exact-match queries are
needed: a directory of ``2^g`` pointers (``g`` = global depth) indexes
buckets of up to ``B - 1`` records; a lookup hashes the key, follows one
directory pointer, and reads exactly one bucket — one I/O, independent of
``N`` — versus the B-tree's ``Θ(log_B N)``.

When a bucket with local depth ``l`` overflows, it splits into two buckets
of depth ``l + 1``; if ``l`` equalled the global depth the directory
doubles.  The directory itself (one integer per bucket pointer) is assumed
to fit in memory, the standard assumption.

Buckets whose keys all share a hash value longer than any practical depth
(e.g. massive duplicates) spill into overflow chains, so correctness never
depends on the hash being injective.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from ..core.exceptions import ConfigurationError, KeyNotFound
from ..core.intents import PoolRead
from ..core.machine import Machine

# Directory growth is capped: beyond this depth (a million directory
# slots) pathological keys that share every hash bit spill into overflow
# chains instead of doubling the directory further.
_MAX_DEPTH = 20
_NO_OVERFLOW = -1
_MIX = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


def _hash_bits(key: Any) -> int:
    """A 64-bit mixed hash of ``key`` (Fibonacci multiplicative mixing on
    top of Python's ``hash`` so consecutive integers spread out)."""
    return ((hash(key) & _MASK64) * _MIX) & _MASK64


class ExtendibleHashTable:
    """An extendible hash table of ``(key, value)`` pairs on disk.

    Args:
        machine: machine whose disk, pool, and block size the table uses.
        bucket_capacity: records per bucket; defaults to ``B - 1`` (one
            record is the bucket header ``[local_depth, overflow_id]``).
    """

    def __init__(self, machine: Machine,
                 bucket_capacity: Optional[int] = None):
        self.machine = machine
        self.bucket_capacity = (
            bucket_capacity
            if bucket_capacity is not None
            else machine.block_size - 1
        )
        if self.bucket_capacity < 1:
            raise ConfigurationError(
                f"bucket capacity must be >= 1, got {self.bucket_capacity}"
            )
        if self.bucket_capacity + 1 > machine.block_size:
            raise ConfigurationError(
                f"bucket of {self.bucket_capacity} records plus header does "
                f"not fit in a block of {machine.block_size} records"
            )
        self._pool = machine.pool
        self._disk = machine.disk
        self.global_depth = 0
        self._directory: List[int] = [self._new_bucket(0)]
        self._size = 0

    # ------------------------------------------------------------------
    # bucket helpers
    # ------------------------------------------------------------------
    def _new_bucket(self, local_depth: int) -> int:
        block_id = self._disk.allocate()
        self._pool.put_new(block_id, [[local_depth, _NO_OVERFLOW]])
        return block_id

    def _bucket_index(self, key: Any) -> int:
        return _hash_bits(key) & ((1 << self.global_depth) - 1)

    def _bucket_for(self, key: Any) -> int:
        return self._directory[self._bucket_index(key)]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def get(self, key: Any, default: Any = None) -> Any:
        """Return the value under ``key`` or ``default``.  One bucket read
        (plus overflow-chain reads, rare by construction)."""
        block_id = self._bucket_for(key)
        while block_id != _NO_OVERFLOW:
            bucket = self._pool.get(block_id)
            for stored_key, value in bucket[1:]:
                if stored_key == key:
                    return value
            block_id = bucket[0][1]
        return default

    def lookup_steps(self, key: Any, default: Any = None):
        """Cooperative :meth:`get`: a generator yielding one
        :class:`~repro.core.intents.PoolRead` per bucket in the chain
        (normally exactly one) and returning the value or ``default``."""
        block_id = self._bucket_for(key)
        while block_id != _NO_OVERFLOW:
            [bucket] = yield PoolRead([block_id])
            for stored_key, value in bucket[1:]:
                if stored_key == key:
                    return value
            block_id = bucket[0][1]
        return default

    def __contains__(self, key: Any) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def __len__(self) -> int:
        return self._size

    @property
    def num_buckets(self) -> int:
        """Number of distinct primary buckets."""
        return len(set(self._directory))

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """Yield every ``(key, value)`` pair (unordered).

        Primary buckets are batch-read half a pool at a time
        (:meth:`~repro.core.cache.BufferPool.get_many`), so the
        enumeration runs at wave speed on a multi-disk machine;
        overflow chains are followed individually."""
        # em: ok(EM004) the directory is RAM-resident by design
        # (2^depth block ids, a factor B smaller than the data)
        primaries = sorted(set(self._directory))
        chunk = max(1, self._pool.capacity // 2)
        for start in range(0, len(primaries), chunk):
            self._pool.get_many(primaries[start:start + chunk])
            for block_id in primaries[start:start + chunk]:
                chain = block_id
                while chain != _NO_OVERFLOW:
                    bucket = self._pool.get(chain)
                    for entry in bucket[1:]:
                        yield entry[0], entry[1]
                    chain = bucket[0][1]

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def insert(self, key: Any, value: Any) -> None:
        """Insert ``key -> value``; an existing key's value is replaced."""
        # Upsert anywhere in the chain first.
        primary_id = self._bucket_for(key)
        chain = primary_id
        while chain != _NO_OVERFLOW:
            bucket = self._pool.get(chain)
            for slot, (stored_key, _) in enumerate(bucket[1:], start=1):
                if stored_key == key:
                    bucket[slot] = (key, value)
                    self._pool.mark_dirty(chain)
                    return
            chain = bucket[0][1]

        self._size += 1
        self._insert_new(primary_id, key, value)

    def _insert_new(self, primary_id: int, key: Any, value: Any) -> None:
        bucket = self._pool.get(primary_id)
        if len(bucket) - 1 < self.bucket_capacity and \
                bucket[0][1] == _NO_OVERFLOW:
            bucket.append((key, value))
            self._pool.mark_dirty(primary_id)
            return
        local_depth = bucket[0][0]
        if local_depth >= _MAX_DEPTH:
            self._append_overflow(primary_id, key, value)
            return
        self._split(primary_id)
        # Re-route: the directory may have changed shape.
        self._insert_new(self._bucket_for(key), key, value)

    def _append_overflow(self, block_id: int, key: Any, value: Any) -> None:
        while True:
            bucket = self._pool.get(block_id)
            if len(bucket) - 1 < self.bucket_capacity:
                bucket.append((key, value))
                self._pool.mark_dirty(block_id)
                return
            if bucket[0][1] == _NO_OVERFLOW:
                # Pin while allocating the overflow bucket: the allocation
                # may evict this frame otherwise.
                self._pool.pin(block_id)
                try:
                    overflow_id = self._new_bucket(bucket[0][0])
                    bucket[0] = [bucket[0][0], overflow_id]
                    self._pool.mark_dirty(block_id)
                finally:
                    self._pool.unpin(block_id)
                block_id = overflow_id
            else:
                block_id = bucket[0][1]

    def _split(self, block_id: int) -> None:
        """Split a full bucket, doubling the directory if needed."""
        bucket = self._pool.get(block_id)
        self._pool.pin(block_id)
        try:
            self._split_pinned(block_id, bucket)
        finally:
            self._pool.unpin(block_id)

    def _split_pinned(self, block_id: int, bucket) -> None:
        local_depth = bucket[0][0]
        if local_depth == self.global_depth:
            self._directory = self._directory + self._directory
            self.global_depth += 1

        new_depth = local_depth + 1
        distinguishing_bit = 1 << local_depth
        entries = list(bucket[1:])
        overflow = bucket[0][1]
        # Pull in any overflow-chain entries so they get rehashed too.
        chain = overflow
        chain_blocks = []
        while chain != _NO_OVERFLOW:
            chain_bucket = self._pool.get(chain)
            entries.extend(chain_bucket[1:])
            chain_blocks.append(chain)
            chain = chain_bucket[0][1]
        for chain_id in chain_blocks:
            self._pool.invalidate(chain_id)
            self._disk.free(chain_id)

        zero_entries = []
        one_entries = []
        for stored_key, value in entries:
            if _hash_bits(stored_key) & distinguishing_bit:
                one_entries.append((stored_key, value))
            else:
                zero_entries.append((stored_key, value))

        bucket[:] = [[new_depth, _NO_OVERFLOW]] + zero_entries
        self._pool.mark_dirty(block_id)
        sibling_id = self._new_bucket(new_depth)
        sibling = self._pool.get(sibling_id)
        sibling.extend(one_entries)
        self._pool.mark_dirty(sibling_id)

        # Repoint directory slots whose suffix selects the new sibling.
        for index in range(len(self._directory)):
            if self._directory[index] == block_id and \
                    index & distinguishing_bit:
                self._directory[index] = sibling_id

        # Entries may still all land on one side; callers loop until the
        # insert fits or depth maxes out.

    def delete(self, key: Any) -> None:
        """Remove ``key``.

        Raises:
            KeyNotFound: if the key is not present.

        Buckets are not re-merged on deletion (the classic formulation
        leaves directory shrinking as an optimization).
        """
        block_id = self._bucket_for(key)
        while block_id != _NO_OVERFLOW:
            bucket = self._pool.get(block_id)
            for slot, (stored_key, _) in enumerate(bucket[1:], start=1):
                if stored_key == key:
                    del bucket[slot]
                    self._pool.mark_dirty(block_id)
                    self._size -= 1
                    return
            block_id = bucket[0][1]
        raise KeyNotFound(key)

    # ------------------------------------------------------------------
    # invariants (test support)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Verify directory/bucket consistency.  Test use only."""
        assert len(self._directory) == 1 << self.global_depth
        seen = {}
        total = 0
        for index, block_id in enumerate(self._directory):
            bucket = self._pool.get(block_id)
            local_depth = bucket[0][0]
            assert local_depth <= self.global_depth
            suffix = index & ((1 << local_depth) - 1)
            seen.setdefault(block_id, set()).add(suffix)
            chain = block_id
            first = True
            while chain != _NO_OVERFLOW:
                node = self._pool.get(chain)
                for stored_key, _ in node[1:]:
                    key_suffix = _hash_bits(stored_key) & (
                        (1 << local_depth) - 1
                    )
                    assert key_suffix == index & ((1 << local_depth) - 1), (
                        f"key {stored_key!r} in wrong bucket"
                    )
                chain = node[0][1]
                first = False
        for block_id, suffixes in seen.items():
            assert len(suffixes) == 1, (
                f"bucket {block_id} shared by different suffixes {suffixes}"
            )
        counted = sum(1 for _ in self.items())
        assert counted == self._size, (
            f"size mismatch: counted {counted}, recorded {self._size}"
        )

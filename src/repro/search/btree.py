"""A disk-resident B+-tree.

The survey's canonical online search structure: fan-out ``Θ(B)`` gives
``Θ(log_B N)`` I/Os per point query and ``Θ(log_B N + Z/B)`` for a range
query reporting ``Z`` records — compare internal binary search trees,
whose ``Θ(log_2 N)`` node accesses each cost an I/O when the tree does not
fit in memory.

Layout: one node per disk block, accessed through the machine's buffer
pool.  A node's payload is a Python list whose first record is a header:

* leaf:      ``["L", next_leaf_id]`` followed by ``(key, value)`` entries
  in key order.  Leaves are chained through ``next_leaf_id`` for range
  scans.
* internal:  ``["I", child_0]`` followed by ``(key, child)`` entries; keys
  separate the children (``key_i`` is the smallest key in ``child_i``'s
  subtree).

The header occupies one record, so a node holds at most ``B - 1`` entries
(the tree's *order*).  Deletion rebalances by borrowing from or merging
with siblings; underfull nodes never persist below ``order // 2`` entries
except the root.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from contextlib import ExitStack, contextmanager
from typing import Any, Callable, Iterator, List, Optional, Tuple

from ..core.exceptions import ConfigurationError, KeyNotFound
from ..core.intents import PoolRead
from ..core.machine import Machine

_LEAF = "L"
_INTERNAL = "I"
_NO_LEAF = -1


class BPlusTree:
    """A B+-tree of ``(key, value)`` pairs stored on the simulated disk.

    Args:
        machine: machine whose disk, pool, and block size the tree uses.
        order: maximum entries per node; defaults to ``B - 1``.  Must be at
            least 3 so that splits and merges are well defined.

    Point queries cost one buffer-pool access per level; with a cold pool
    that is ``height`` read I/Os, the survey's ``Θ(log_B N)``.
    """

    def __init__(self, machine: Machine, order: Optional[int] = None):
        self.machine = machine
        self.order = order if order is not None else machine.block_size - 1
        if self.order < 3:
            raise ConfigurationError(
                f"B+-tree order must be >= 3, got {self.order} "
                "(block size too small)"
            )
        if self.order + 1 > machine.block_size:
            raise ConfigurationError(
                f"order {self.order} entries plus a header do not fit in a "
                f"block of {machine.block_size} records"
            )
        self._pool = machine.pool
        self._disk = machine.disk
        self._size = 0
        self._height = 1
        self._root_id = self._new_leaf()

    # ------------------------------------------------------------------
    # node helpers
    # ------------------------------------------------------------------
    def _new_leaf(self, entries: Optional[List[tuple]] = None,
                  next_leaf: int = _NO_LEAF) -> int:
        block_id = self._disk.allocate()
        payload = [[_LEAF, next_leaf]]
        if entries:
            payload.extend(entries)
        self._pool.put_new(block_id, payload)
        return block_id

    def _new_internal(self, first_child: int,
                      entries: Optional[List[tuple]] = None) -> int:
        block_id = self._disk.allocate()
        payload = [[_INTERNAL, first_child]]
        if entries:
            payload.extend(entries)
        self._pool.put_new(block_id, payload)
        return block_id

    def _node(self, block_id: int) -> List[Any]:
        return self._pool.get(block_id)

    @contextmanager
    def _pinned(self, block_id: int):
        """Fault in a node and pin it so further pool traffic inside the
        ``with`` block cannot evict it mid-mutation."""
        frame = self._pool.get(block_id)
        self._pool.pin(block_id)
        try:
            yield frame
        finally:
            self._pool.unpin(block_id)

    @staticmethod
    def _is_leaf(node: List[Any]) -> bool:
        return node[0][0] == _LEAF

    @staticmethod
    def _child_for(node: List[Any], key: Any) -> Tuple[int, int]:
        """For an internal node, return ``(slot, child_id)`` where ``slot``
        is the entry index (0 meaning the header child)."""
        keys = [entry[0] for entry in node[1:]]
        slot = bisect_right(keys, key)
        child = node[0][1] if slot == 0 else node[slot][1]
        return slot, child

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def get(self, key: Any, default: Any = None) -> Any:
        """Return the value stored under ``key`` or ``default``."""
        node = self._node(self._root_id)
        while not self._is_leaf(node):
            _, child = self._child_for(node, key)
            node = self._node(child)
        keys = [entry[0] for entry in node[1:]]
        slot = bisect_left(keys, key)
        if slot < len(keys) and keys[slot] == key:
            return node[1 + slot][1]
        return default

    def __contains__(self, key: Any) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def range_query(self, low: Any, high: Any) -> Iterator[Tuple[Any, Any]]:
        """Yield ``(key, value)`` pairs with ``low <= key <= high`` in key
        order, following the leaf chain: ``Θ(log_B N + Z/B)`` I/Os.

        On a multi-disk machine the leaves under the last internal node
        visited are prefetched with one batched pool read
        (:meth:`~repro.core.cache.BufferPool.get_many`), so the chain
        walk pays ``ceil(misses/D)`` steps instead of one step per leaf.
        """
        node = self._node(self._root_id)
        depth = 0
        while not self._is_leaf(node):
            slot, child = self._child_for(node, low)
            if depth == self._height - 2:
                self._prefetch_leaves(node, slot, high)
            node = self._node(child)
            depth += 1
        while True:
            next_leaf = node[0][1]
            for key, value in node[1:]:
                if key > high:
                    return
                if key >= low:
                    yield key, value
            if next_leaf == _NO_LEAF:
                return
            node = self._node(next_leaf)

    def _prefetch_leaves(self, node: List[Any], slot: int,
                         high: Any) -> None:
        """Batch-read the consecutive leaf children of ``node`` whose key
        range intersects ``[low, high]`` (``slot`` is ``low``'s child).
        Capped below the pool capacity so the wave cannot evict the
        leaves it just fetched."""
        keys = [entry[0] for entry in node[1:]]
        child_ids = [node[0][1]] + [entry[1] for entry in node[1:]]
        end = slot
        while end < len(keys) and keys[end] <= high:
            end += 1
        wanted = child_ids[slot:end + 1]
        cap = max(1, self._pool.capacity - 2)
        if len(wanted) > 1:
            self._pool.get_many(wanted[:cap])

    # ------------------------------------------------------------------
    # cooperative queries (intent-yielding generators)
    # ------------------------------------------------------------------
    def lookup_steps(self, key: Any, default: Any = None):
        """Cooperative :meth:`get`: a generator that yields one
        :class:`~repro.core.intents.PoolRead` per root-to-leaf level and
        *returns* the value (or ``default``) — same blocks, same order
        as the eager walk, but a driver decides when each read happens
        and may batch it with other jobs' intents into one wave."""
        block_id = self._root_id
        while True:
            [node] = yield PoolRead([block_id])
            if self._is_leaf(node):
                break
            _, block_id = self._child_for(node, key)
        keys = [entry[0] for entry in node[1:]]
        slot = bisect_left(keys, key)
        if slot < len(keys) and keys[slot] == key:
            return node[1 + slot][1]
        return default

    def range_steps(self, low: Any, high: Any):
        """Cooperative :meth:`range_query`: yields ``PoolRead`` intents
        for the root-to-leaf walk, batches the candidate leaves under
        the last internal node into one intent (the generator analogue
        of :meth:`_prefetch_leaves`), then follows the leaf chain.
        Returns the list of matching ``(key, value)`` pairs."""
        results: List[Tuple[Any, Any]] = []
        prefetched = {}
        block_id = self._root_id
        depth = 0
        while True:
            if block_id in prefetched:
                node = prefetched.pop(block_id)
            else:
                [node] = yield PoolRead([block_id])
            if self._is_leaf(node):
                break
            slot, child = self._child_for(node, low)
            if depth == self._height - 2:
                keys = [entry[0] for entry in node[1:]]
                child_ids = [node[0][1]] + [entry[1] for entry in node[1:]]
                end = slot
                while end < len(keys) and keys[end] <= high:
                    end += 1
                wanted = child_ids[slot:end + 1]
                cap = max(1, self._pool.capacity - 2)
                wanted = wanted[:cap]
                if len(wanted) > 1:
                    payloads = yield PoolRead(wanted)
                    prefetched = dict(zip(wanted, payloads))
            block_id = child
            depth += 1
        while True:
            next_leaf = node[0][1]
            for key, value in node[1:]:
                if key > high:
                    return results
                if key >= low:
                    results.append((key, value))
            if next_leaf == _NO_LEAF:
                return results
            if next_leaf in prefetched:
                node = prefetched.pop(next_leaf)
            else:
                [node] = yield PoolRead([next_leaf])

    def min_item(self) -> Optional[Tuple[Any, Any]]:
        """Return the ``(key, value)`` pair with the smallest key, or
        ``None`` when the tree is empty.  Costs one leftmost root-to-leaf
        walk: ``Θ(log_B N)`` I/Os cold."""
        node = self._node(self._root_id)
        while not self._is_leaf(node):
            node = self._node(node[0][1])
        if len(node) == 1:
            return None
        entry = node[1]
        return entry[0], entry[1]

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """Yield every ``(key, value)`` pair in key order."""
        node = self._node(self._root_id)
        while not self._is_leaf(node):
            node = self._node(node[0][1])
        while True:
            next_leaf = node[0][1]
            for entry in node[1:]:
                yield entry[0], entry[1]
            if next_leaf == _NO_LEAF:
                return
            node = self._node(next_leaf)

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Number of levels (1 for a single leaf)."""
        return self._height

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def insert(self, key: Any, value: Any) -> None:
        """Insert ``key -> value``; an existing key's value is replaced."""
        split = self._insert_into(self._root_id, key, value)
        if split is not None:
            middle_key, new_child = split
            self._root_id = self._new_internal(
                self._root_id, [(middle_key, new_child)]
            )
            self._height += 1

    def _insert_into(self, block_id: int, key: Any,
                     value: Any) -> Optional[Tuple[Any, int]]:
        """Insert under ``block_id``; return ``(separator, new_node)`` if
        the node split, else ``None``."""
        node = self._node(block_id)
        if self._is_leaf(node):
            keys = [entry[0] for entry in node[1:]]
            slot = bisect_left(keys, key)
            if slot < len(keys) and keys[slot] == key:
                node[1 + slot] = (key, value)  # upsert
                self._pool.mark_dirty(block_id)
                return None
            node.insert(1 + slot, (key, value))
            self._size += 1
            self._pool.mark_dirty(block_id)
            if len(node) - 1 > self.order:
                return self._split_leaf(block_id)
            return None

        slot, child = self._child_for(node, key)
        split = self._insert_into(child, key, value)
        if split is None:
            return None
        middle_key, new_child = split
        # Re-fetch: the recursion may have evicted this node's frame.  The
        # slot stays valid because a child split never edits its parent.
        node = self._node(block_id)
        node.insert(1 + slot, (middle_key, new_child))
        self._pool.mark_dirty(block_id)
        if len(node) - 1 > self.order:
            return self._split_internal(block_id)
        return None

    def _split_leaf(self, block_id: int) -> Tuple[Any, int]:
        with self._pinned(block_id) as node:
            entries = node[1:]
            mid = len(entries) // 2
            right_entries = entries[mid:]
            next_leaf = node[0][1]
            right_id = self._new_leaf(right_entries, next_leaf)
            del node[1 + mid:]
            node[0] = [_LEAF, right_id]
            self._pool.mark_dirty(block_id)
        return right_entries[0][0], right_id

    def _split_internal(self, block_id: int) -> Tuple[Any, int]:
        with self._pinned(block_id) as node:
            entries = node[1:]
            mid = len(entries) // 2
            middle_key, middle_child = entries[mid]
            right_id = self._new_internal(middle_child, entries[mid + 1:])
            del node[1 + mid:]
            self._pool.mark_dirty(block_id)
        return middle_key, right_id

    # ------------------------------------------------------------------
    # deletion
    # ------------------------------------------------------------------
    def delete(self, key: Any) -> None:
        """Remove ``key``.

        Raises:
            KeyNotFound: if the key is not present.
        """
        self._delete_from(self._root_id, key)
        root = self._node(self._root_id)
        if not self._is_leaf(root) and len(root) == 1:
            # Root has a single child: collapse one level.
            old_root = self._root_id
            self._root_id = root[0][1]
            self._pool.invalidate(old_root)
            self._disk.free(old_root)
            self._height -= 1

    def _delete_from(self, block_id: int, key: Any) -> None:
        node = self._node(block_id)
        if self._is_leaf(node):
            keys = [entry[0] for entry in node[1:]]
            slot = bisect_left(keys, key)
            if slot >= len(keys) or keys[slot] != key:
                raise KeyNotFound(key)
            del node[1 + slot]
            self._size -= 1
            self._pool.mark_dirty(block_id)
            return

        slot, child = self._child_for(node, key)
        self._delete_from(child, key)
        child_node = self._node(child)
        if len(child_node) - 1 < self._min_fill(child_node):
            self._rebalance(block_id, slot, child)

    def _min_fill(self, node: List[Any]) -> int:
        return self.order // 2

    def _rebalance(self, parent_id: int, slot: int,
                   child_id: int) -> None:
        """Fix an underfull ``child_id`` (the ``slot``-th child of the
        parent) by borrowing from a sibling or merging.  All touched nodes
        are pinned for the duration so eviction cannot tear the update."""
        with ExitStack() as stack:
            parent = stack.enter_context(self._pinned(parent_id))
            child = stack.enter_context(self._pinned(child_id))
            num_children = len(parent)  # header child + entries
            left_slot = slot - 1
            right_slot = slot + 1

            def child_at(s: int) -> int:
                return parent[0][1] if s == 0 else parent[s][1]

            # Try borrowing from the left sibling.
            if left_slot >= 0:
                left_id = child_at(left_slot)
                left = stack.enter_context(self._pinned(left_id))
                if len(left) - 1 > self._min_fill(left):
                    self._borrow_from_left(parent, slot, left, child)
                    self._mark_all(parent_id, left_id, child_id)
                    return
            # Try borrowing from the right sibling.
            if right_slot < num_children:
                right_id = child_at(right_slot)
                right = stack.enter_context(self._pinned(right_id))
                if len(right) - 1 > self._min_fill(right):
                    self._borrow_from_right(parent, right_slot, child, right)
                    self._mark_all(parent_id, right_id, child_id)
                    return
            # Merge with a sibling (prefer left).
            if left_slot >= 0:
                left_id = child_at(left_slot)
                left = self._node(left_id)  # already pinned above
                self._merge(parent, slot, left, child)
                self._mark_all(parent_id, left_id)
                merged_away = child_id
            else:
                right_id = child_at(right_slot)
                right = self._node(right_id)  # already pinned above
                self._merge(parent, right_slot, child, right)
                self._mark_all(parent_id, child_id)
                merged_away = right_id
        # Pins released; now the merged-away node can leave the pool.
        self._pool.invalidate(merged_away)
        self._disk.free(merged_away)

    def _mark_all(self, *block_ids: int) -> None:
        for block_id in block_ids:
            self._pool.mark_dirty(block_id)

    def _borrow_from_left(self, parent: List[Any], slot: int,
                          left: List[Any], child: List[Any]) -> None:
        if self._is_leaf(child):
            entry = left.pop()
            child.insert(1, entry)
            parent[slot] = (entry[0], parent[slot][1])
        else:
            # Rotate through the parent separator.
            separator_key = parent[slot][0]
            last_key, last_child = left.pop()
            child.insert(1, (separator_key, child[0][1]))
            child[0] = [_INTERNAL, last_child]
            parent[slot] = (last_key, parent[slot][1])

    def _borrow_from_right(self, parent: List[Any], right_slot: int,
                           child: List[Any], right: List[Any]) -> None:
        if self._is_leaf(child):
            entry = right.pop(1)
            child.append(entry)
            parent[right_slot] = (right[1][0], parent[right_slot][1])
        else:
            separator_key = parent[right_slot][0]
            first_child = right[0][1]
            first_key, next_child = right[1]
            del right[1]
            right[0] = [_INTERNAL, next_child]
            child.append((separator_key, first_child))
            parent[right_slot] = (first_key, parent[right_slot][1])

    def _merge(self, parent: List[Any], right_parent_slot: int,
               left: List[Any], right: List[Any]) -> None:
        """Merge the ``right`` node into ``left`` (both pinned frames); the
        separator entry at ``parent[right_parent_slot]`` disappears."""
        if self._is_leaf(left):
            left.extend(right[1:])
            left[0] = [_LEAF, right[0][1]]
        else:
            separator_key = parent[right_parent_slot][0]
            left.append((separator_key, right[0][1]))
            left.extend(right[1:])
        del parent[right_parent_slot]

    # ------------------------------------------------------------------
    # bulk loading
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(
        cls,
        machine: Machine,
        items: Iterator[Tuple[Any, Any]],
        order: Optional[int] = None,
        fill: float = 1.0,
    ) -> "BPlusTree":
        """Build a tree bottom-up from ``items`` sorted by key.

        Costs one write per node — ``Θ(N/B)`` I/Os instead of the
        ``Θ(N log_B N)`` of repeated insertion.

        Args:
            items: ``(key, value)`` pairs in strictly increasing key order.
            fill: target leaf occupancy in ``(0, 1]``.
        """
        if not 0 < fill <= 1:
            raise ConfigurationError(f"fill must be in (0, 1], got {fill}")
        tree = cls(machine, order=order)
        per_leaf = max(2, int(tree.order * fill))

        # Build the leaf level.  Each leaf is written exactly once: the
        # pending batch is held back until the following leaf's block id is
        # known, so the chain pointer goes into the initial write.
        leaves: List[Tuple[Any, int]] = []  # (smallest key, block id)
        pending: Optional[List[tuple]] = None
        pending_id = -1
        batch: List[tuple] = []
        count = 0
        previous_key = None

        def emit(next_id: int) -> None:
            payload = [[_LEAF, next_id]] + pending
            tree._pool.put_new(pending_id, payload)

        for key, value in items:
            if previous_key is not None and key <= previous_key:
                raise ConfigurationError(
                    "bulk_load requires strictly increasing keys; "
                    f"saw {previous_key!r} then {key!r}"
                )
            previous_key = key
            batch.append((key, value))
            count += 1
            if len(batch) == per_leaf:
                block_id = tree._disk.allocate()
                if pending is not None:
                    emit(block_id)
                leaves.append((batch[0][0], block_id))
                pending, pending_id = batch, block_id
                batch = []
        if batch:
            block_id = tree._disk.allocate()
            if pending is not None:
                emit(block_id)
            leaves.append((batch[0][0], block_id))
            pending, pending_id = batch, block_id
        if pending is not None:
            emit(_NO_LEAF)

        if not leaves:
            return tree  # keep the fresh empty root leaf

        # The constructor made an empty root leaf we no longer need.
        tree._pool.invalidate(tree._root_id)
        tree._disk.free(tree._root_id)

        # Build internal levels.
        level = leaves
        height = 1
        per_node = max(2, int(tree.order * fill))
        while len(level) > 1:
            group_size = per_node + 1  # children per internal node
            boundaries = list(range(0, len(level), group_size))
            # Never leave a final group with a single child (an internal
            # node needs at least one separator key): shift the split left.
            if len(level) - boundaries[-1] == 1 and len(boundaries) > 1:
                boundaries[-1] -= 1
            next_level: List[Tuple[Any, int]] = []
            for index, start in enumerate(boundaries):
                stop = (
                    boundaries[index + 1]
                    if index + 1 < len(boundaries)
                    else len(level)
                )
                group = level[start:stop]
                first_key, first_child = group[0]
                node_id = tree._new_internal(
                    first_child, [(k, c) for k, c in group[1:]]
                )
                next_level.append((first_key, node_id))
            level = next_level
            height += 1
        tree._root_id = level[0][1]
        tree._height = height
        tree._size = count
        return tree

    # ------------------------------------------------------------------
    # invariants (test support)
    # ------------------------------------------------------------------
    def check_invariants(self, strict_fill: bool = True) -> None:
        """Verify structural invariants; raises ``AssertionError`` on
        violation.  Reads the whole tree — test use only.

        Args:
            strict_fill: also require every non-root node to hold at least
                ``order // 2`` entries.  Bulk-loaded trees may legitimately
                have one trailing underfull node per level; pass ``False``
                for those.
        """
        self._strict_fill = strict_fill
        leaf_depths = set()
        counted = self._check_node(self._root_id, None, None, 1, leaf_depths,
                                   is_root=True)
        assert counted == self._size, (
            f"size mismatch: counted {counted}, recorded {self._size}"
        )
        assert len(leaf_depths) <= 1, f"leaves at depths {leaf_depths}"
        if leaf_depths:
            assert leaf_depths == {self._height}, (
                f"height {self._height} but leaves at {leaf_depths}"
            )
        # Leaf chain must be globally sorted and complete.
        chained = [key for key, _ in self.items()]
        # em: ok(EM004) test-support invariant check, not an algorithm
        assert chained == sorted(chained), "leaf chain out of order"
        assert len(chained) == self._size

    def _check_node(self, block_id, low, high, depth, leaf_depths,
                    is_root=False) -> int:
        node = self._node(block_id)
        entries = node[1:]
        keys = [entry[0] for entry in entries]
        # em: ok(EM004) one node's ≤ order keys, test-support check
        assert keys == sorted(keys), f"node {block_id} keys unsorted"
        if not is_root and getattr(self, "_strict_fill", True):
            assert len(entries) >= self._min_fill(node), (
                f"node {block_id} underfull: {len(entries)}"
            )
        if not is_root and not self._is_leaf(node):
            assert len(entries) >= 1, f"internal node {block_id} has no keys"
        assert len(entries) <= self.order, f"node {block_id} overfull"
        for key in keys:
            if low is not None:
                assert key >= low, f"key {key} below subtree bound {low}"
            if high is not None:
                assert key < high, f"key {key} above subtree bound {high}"
        if self._is_leaf(node):
            leaf_depths.add(depth)
            return len(entries)
        count = 0
        children = [node[0][1]] + [entry[1] for entry in entries]
        bounds = [low] + keys + [high]
        for index, child in enumerate(children):
            count += self._check_node(
                child, bounds[index], bounds[index + 1], depth + 1,
                leaf_depths,
            )
        return count

"""Deterministic workload generators for experiments and tests.

Every generator takes an explicit ``seed`` so experiments are exactly
reproducible.  Generators return plain Python lists (or lists of tuples) —
the substrate stores records as Python objects and measures everything in
record counts.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

import numpy as np


def uniform_ints(n: int, seed: int = 0, low: int = 0, high: int = 1 << 30) -> List[int]:
    """``n`` integers drawn uniformly from ``[low, high)``."""
    rng = np.random.default_rng(seed)
    return [int(x) for x in rng.integers(low, high, size=n)]


def distinct_ints(n: int, seed: int = 0) -> List[int]:
    """A random permutation of ``0..n-1`` — ``n`` distinct keys."""
    rng = np.random.default_rng(seed)
    return [int(x) for x in rng.permutation(n)]


def sorted_ints(n: int) -> List[int]:
    """``0..n-1`` in order (best case for run formation)."""
    return list(range(n))


def reversed_ints(n: int) -> List[int]:
    """``n-1..0`` (worst case for replacement selection)."""
    return list(range(n - 1, -1, -1))


def nearly_sorted_ints(n: int, swaps: int, seed: int = 0) -> List[int]:
    """Sorted keys perturbed by ``swaps`` random transpositions."""
    rng = random.Random(seed)
    data = list(range(n))
    for _ in range(swaps):
        i = rng.randrange(n)
        j = rng.randrange(n)
        data[i], data[j] = data[j], data[i]
    return data


def zipf_ints(n: int, alpha: float = 1.2, vocab: int = 1000, seed: int = 0) -> List[int]:
    """``n`` integers with a Zipf(alpha) frequency skew over ``vocab`` keys.

    Skewed keys stress distribution sort's pivot selection and hash joins.
    """
    rng = np.random.default_rng(seed)
    raw = rng.zipf(alpha, size=n)
    return [int(x % vocab) for x in raw]


def duplicate_heavy_ints(n: int, distinct: int, seed: int = 0) -> List[int]:
    """``n`` keys drawn uniformly from only ``distinct`` values."""
    rng = np.random.default_rng(seed)
    return [int(x) for x in rng.integers(0, max(1, distinct), size=n)]


# ----------------------------------------------------------------------
# linked lists (for list ranking)
# ----------------------------------------------------------------------
def random_linked_list(n: int, seed: int = 0) -> List[Tuple[int, int]]:
    """A random singly linked list over nodes ``0..n-1``.

    Returns ``(node, successor)`` pairs in *random storage order*; the tail
    node points to ``-1``.  This is the canonical list-ranking input: the
    logical order is uncorrelated with the storage order, which is what
    makes pointer chasing cost one I/O per hop.
    """
    rng = np.random.default_rng(seed)
    order = [int(x) for x in rng.permutation(n)]
    successor = {}
    for i in range(n - 1):
        successor[order[i]] = order[i + 1]
    successor[order[-1]] = -1
    pairs = [(node, successor[node]) for node in range(n)]
    return pairs


# ----------------------------------------------------------------------
# graphs
# ----------------------------------------------------------------------
def grid_graph(rows: int, cols: int) -> Tuple[int, List[Tuple[int, int]]]:
    """A ``rows × cols`` grid graph: ``(num_vertices, edge list)``.

    Vertex ``(r, c)`` is numbered ``r*cols + c``.  Grids have the high
    locality typical of meshes/terrains.
    """
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return rows * cols, edges


def random_graph(
    n: int, avg_degree: float = 4.0, seed: int = 0
) -> Tuple[int, List[Tuple[int, int]]]:
    """An Erdős–Rényi-style random graph with ``n`` vertices.

    Returns ``(n, edge list)`` with no self-loops and no duplicate edges.
    Random graphs have *no* locality: a naive BFS pays one I/O per vertex.
    """
    rng = random.Random(seed)
    # Cap at the number of possible simple edges, or the loop could
    # never terminate on tiny graphs.
    target = min(int(n * avg_degree / 2), n * (n - 1) // 2)
    edges = set()
    while len(edges) < target:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        if u > v:
            u, v = v, u
        edges.add((u, v))
    return n, sorted(edges)


def connected_random_graph(
    n: int, avg_degree: float = 4.0, seed: int = 0
) -> Tuple[int, List[Tuple[int, int]]]:
    """A connected random graph: a random spanning path plus random edges."""
    rng = random.Random(seed)
    order = list(range(n))
    rng.shuffle(order)
    edges = set()
    for i in range(n - 1):
        u, v = order[i], order[i + 1]
        edges.add((min(u, v), max(u, v)))
    target = min(
        max(len(edges), int(n * avg_degree / 2)), n * (n - 1) // 2
    )
    while len(edges) < target:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v:
            edges.add((min(u, v), max(u, v)))
    return n, sorted(edges)


def components_graph(
    n: int, num_components: int, seed: int = 0
) -> Tuple[int, List[Tuple[int, int]], List[int]]:
    """A graph of ``num_components`` disjoint connected clusters.

    Returns ``(n, edges, labels)`` where ``labels[v]`` is the ground-truth
    component index of vertex ``v``.
    """
    rng = random.Random(seed)
    labels = [v % num_components for v in range(n)]
    members: Dict[int, List[int]] = {}
    for v, lab in enumerate(labels):
        members.setdefault(lab, []).append(v)
    edges = []
    for lab, verts in members.items():
        rng.shuffle(verts)
        for i in range(len(verts) - 1):
            u, v = verts[i], verts[i + 1]
            edges.append((min(u, v), max(u, v)))
        extra = len(verts) // 2
        for _ in range(extra):
            u = rng.choice(verts)
            v = rng.choice(verts)
            if u != v:
                edges.append((min(u, v), max(u, v)))
    return n, sorted(set(edges)), labels


# ----------------------------------------------------------------------
# geometry (orthogonal segments)
# ----------------------------------------------------------------------
def orthogonal_segments(
    n_horizontal: int,
    n_vertical: int,
    extent: int = 10_000,
    max_len: int = 200,
    seed: int = 0,
) -> Tuple[List[Tuple[int, int, int]], List[Tuple[int, int, int]]]:
    """Random axis-parallel segments for intersection reporting.

    Returns ``(horizontals, verticals)`` where a horizontal is
    ``(y, x1, x2)`` with ``x1 <= x2`` and a vertical is ``(x, y1, y2)``
    with ``y1 <= y2``.  ``max_len`` controls expected output size.
    """
    rng = random.Random(seed)
    horizontals = []
    for _ in range(n_horizontal):
        y = rng.randrange(extent)
        x1 = rng.randrange(extent)
        x2 = min(extent, x1 + rng.randrange(1, max_len + 1))
        horizontals.append((y, x1, x2))
    verticals = []
    for _ in range(n_vertical):
        x = rng.randrange(extent)
        y1 = rng.randrange(extent)
        y2 = min(extent, y1 + rng.randrange(1, max_len + 1))
        verticals.append((x, y1, y2))
    return horizontals, verticals


# ----------------------------------------------------------------------
# relations (for joins / aggregation)
# ----------------------------------------------------------------------
def relation(
    n: int,
    key_range: int,
    payload: str = "r",
    seed: int = 0,
) -> List[Tuple[int, str]]:
    """A relation of ``(key, payload)`` tuples with keys in
    ``[0, key_range)``."""
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, max(1, key_range), size=n)
    return [(int(k), f"{payload}{i}") for i, k in enumerate(keys)]


def foreign_key_relations(
    n_build: int,
    n_probe: int,
    seed: int = 0,
) -> Tuple[List[Tuple[int, str]], List[Tuple[int, str]]]:
    """A classic PK/FK pair: build side has distinct keys ``0..n_build-1``,
    probe side references them uniformly (every probe tuple joins exactly
    once)."""
    rng = np.random.default_rng(seed)
    build = [(k, f"b{k}") for k in range(n_build)]
    probe_keys = rng.integers(0, max(1, n_build), size=n_probe)
    probe = [(int(k), f"p{i}") for i, k in enumerate(probe_keys)]
    return build, probe

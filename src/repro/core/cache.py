"""Buffer pool with pluggable eviction policies.

The I/O model assumes the algorithm controls which ``M/B`` blocks reside in
internal memory.  Data structures in this library (B+-tree, hashing, buffer
tree) access disk through a :class:`BufferPool` whose frame budget is the
machine's ``m = M/B``; repeated access to a cached block is then free, and
the pool's hit/miss statistics expose the paging behaviour.

Eviction is pluggable so the survey's remark that the model assumes optimal
(or at least explicit) paging can be quantified: the ablation benchmark
compares LRU, FIFO, Clock, MRU, and Belady's offline MIN on the same access
traces.

A machine-attached pool (the default: :class:`~repro.core.machine.Machine`
wires its pool to its budget and runtime) is a first-class citizen of the
I/O runtime rather than a side door around it:

* **Misses** go through :meth:`~repro.runtime.Runtime.read_block`, so a
  transiently failing cached read is retried with backoff (charged as
  stall steps) exactly like streaming I/O, instead of surfacing a raw
  :class:`~repro.core.exceptions.TransientReadError` to a B+-tree lookup.
* **Dirty write-backs** go through the runtime's
  :class:`~repro.runtime.writebehind.WriteBehind`, coalescing into
  ``D``-block waves on a multi-disk machine (write-through with
  bit-identical counts at ``D == 1``).
* **Frames are charged to the machine's memory budget** (``B``
  reclaimable records each) so structures plus algorithms share one
  ``M``; under algorithm pressure the budget's reclaimer shrinks the
  pool via :meth:`BufferPool.reclaim`, evicting clean frames first.
* **Torn writes are scrubbed.**  When checksums are enabled (a fault
  plan is or was installed), a payload leaving memory is verified
  against the disk image and rewritten while the pool still holds the
  good copy; a cold miss on a block torn by someone else consults the
  optional :attr:`BufferPool.redo_hook` (recompute-and-rewrite, the
  :meth:`~repro.core.blockfile.BlockFile.verify` scrub model) and
  otherwise surfaces the documented
  :class:`~repro.core.exceptions.ChecksumError`.
* **Pool traffic is traced**: hits, misses, evictions, scrubs, and
  bypasses are reported per phase to the runtime's tracer.

A standalone ``BufferPool(disk, capacity)`` (no budget, no runtime) keeps
the original direct-to-disk behaviour for unit tests and ablations.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from .disk import Block
from .records import copy_payload
from .exceptions import (
    ChecksumError,
    ConfigurationError,
    MemoryLimitExceeded,
    PoolError,
)


class EvictionPolicy:
    """Interface for eviction policies.

    The pool notifies the policy of every access and insertion; when a frame
    is needed the pool asks :meth:`victim` which resident, unpinned block to
    evict.
    """

    name = "abstract"

    def on_insert(self, block_id: int) -> None:
        """A block became resident."""
        raise NotImplementedError

    def on_access(self, block_id: int) -> None:
        """A resident block was accessed (pool hit)."""
        raise NotImplementedError

    def on_remove(self, block_id: int) -> None:
        """A block left the pool (evicted or explicitly dropped)."""
        raise NotImplementedError

    def victim(self, candidates) -> int:
        """Choose one of ``candidates`` (a set of evictable ids) to evict."""
        raise NotImplementedError


class LRUPolicy(EvictionPolicy):
    """Evict the least recently used block."""

    name = "lru"

    def __init__(self):
        self._order: "OrderedDict[int, None]" = OrderedDict()

    def on_insert(self, block_id: int) -> None:
        self._order[block_id] = None

    def on_access(self, block_id: int) -> None:
        self._order.move_to_end(block_id)

    def on_remove(self, block_id: int) -> None:
        self._order.pop(block_id, None)

    def victim(self, candidates) -> int:
        for block_id in self._order:
            if block_id in candidates:
                return block_id
        raise PoolError("no evictable frame (all pinned)")


class MRUPolicy(EvictionPolicy):
    """Evict the most recently used block.

    MRU is optimal for cyclic scans that slightly exceed the pool size,
    which is exactly the trace where LRU degenerates to 100% misses.
    """

    name = "mru"

    def __init__(self):
        self._order: "OrderedDict[int, None]" = OrderedDict()

    def on_insert(self, block_id: int) -> None:
        self._order[block_id] = None

    def on_access(self, block_id: int) -> None:
        self._order.move_to_end(block_id)

    def on_remove(self, block_id: int) -> None:
        self._order.pop(block_id, None)

    def victim(self, candidates) -> int:
        for block_id in reversed(self._order):
            if block_id in candidates:
                return block_id
        raise PoolError("no evictable frame (all pinned)")


class FIFOPolicy(EvictionPolicy):
    """Evict blocks in the order they entered the pool."""

    name = "fifo"

    def __init__(self):
        self._queue: deque = deque()
        self._resident: set = set()

    def on_insert(self, block_id: int) -> None:
        self._queue.append(block_id)
        self._resident.add(block_id)

    def on_access(self, block_id: int) -> None:
        pass  # FIFO ignores accesses

    def on_remove(self, block_id: int) -> None:
        self._resident.discard(block_id)

    def victim(self, candidates) -> int:
        while self._queue:
            block_id = self._queue[0]
            if block_id not in self._resident:
                self._queue.popleft()
                continue
            if block_id in candidates:
                return block_id
            # Pinned: rotate it to the back so we can make progress.
            self._queue.popleft()
            self._queue.append(block_id)
        raise PoolError("no evictable frame (all pinned)")


class ClockPolicy(EvictionPolicy):
    """Second-chance (clock) approximation of LRU."""

    name = "clock"

    def __init__(self):
        self._ref: "OrderedDict[int, bool]" = OrderedDict()

    def on_insert(self, block_id: int) -> None:
        self._ref[block_id] = True

    def on_access(self, block_id: int) -> None:
        if block_id in self._ref:
            self._ref[block_id] = True

    def on_remove(self, block_id: int) -> None:
        self._ref.pop(block_id, None)

    def victim(self, candidates) -> int:
        # Sweep the clock hand: clear reference bits until an unreferenced
        # evictable block is found.
        for _ in range(2 * len(self._ref) + 1):
            if not self._ref:
                break
            block_id, referenced = next(iter(self._ref.items()))
            self._ref.move_to_end(block_id)
            if block_id not in candidates:
                continue
            if referenced:
                self._ref[block_id] = False
            else:
                return block_id
        # Everything was referenced; fall back to the current hand position.
        for block_id in self._ref:
            if block_id in candidates:
                return block_id
        raise PoolError("no evictable frame (all pinned)")


class MinPolicy(EvictionPolicy):
    """Belady's offline-optimal MIN policy.

    Requires the full future access trace up front, so it is only usable in
    ablation experiments where the trace is known.  Evicts the evictable
    block whose next use is farthest in the future.
    """

    name = "min"

    def __init__(self, trace: Sequence[int]):
        self._future: Dict[int, deque] = {}
        for position, block_id in enumerate(trace):
            self._future.setdefault(block_id, deque()).append(position)
        self._clock = 0

    def on_insert(self, block_id: int) -> None:
        self._advance(block_id)

    def on_access(self, block_id: int) -> None:
        self._advance(block_id)

    def on_remove(self, block_id: int) -> None:
        pass

    def _advance(self, block_id: int) -> None:
        # Blocks absent from the offline trace (e.g. fresh allocations
        # installed with put_new) have no position in it; ticking the
        # clock for them would shift every later comparison against the
        # recorded positions, so MIN would evict against a phantom
        # future.  Only accesses the trace knows about advance the clock.
        positions = self._future.get(block_id)
        if positions is None:
            return
        # Drop every trace position up to and including the current
        # access, leaving only strictly future uses of this block.
        while positions and positions[0] <= self._clock:
            positions.popleft()
        self._clock += 1

    def victim(self, candidates) -> int:
        farthest_block = None
        farthest_next = -1
        for block_id in candidates:
            positions = self._future.get(block_id)
            next_use = positions[0] if positions else float("inf")
            if next_use > farthest_next:
                farthest_next = next_use
                farthest_block = block_id
                if next_use == float("inf"):
                    break
        if farthest_block is None:
            raise PoolError("no evictable frame (all pinned)")
        return farthest_block


class BufferPool:
    """A fixed budget of in-memory frames caching disk blocks.

    Args:
        disk: the backing :class:`~repro.core.disk.SimulatedDisk` or
            :class:`~repro.core.disk.DiskArray`.
        capacity: frame budget in blocks (the model's ``m = M/B``).
        policy: eviction policy instance; defaults to a fresh
            :class:`LRUPolicy`.
        budget: optional :class:`~repro.core.memory.MemoryBudget` the
            pool charges its frames to (``B`` reclaimable records per
            resident frame; pinned frames are hardened).  ``None`` for a
            standalone pool with free frames.
        runtime_provider: optional zero-argument callable returning the
            machine's :class:`~repro.runtime.Runtime`; when set, misses
            and write-backs are routed through it (retry, write-behind,
            tracing).  ``None`` reads and writes the disk directly.

    The payload handed out by :meth:`get` is the pool's own mutable list;
    callers that mutate it must call :meth:`mark_dirty` so the block is
    flushed on eviction.

    Attributes:
        redo_hook: optional ``hook(block_id) -> records | None``.  When a
            miss hits a :class:`~repro.core.exceptions.ChecksumError`
            (torn block on disk) the pool asks the hook to reproduce the
            payload — e.g. re-derive it the way a scrubber replays a
            pass after :meth:`~repro.core.blockfile.BlockFile.verify` —
            then rewrites and verifies the block.  Without a hook (or on
            ``None``) the ``ChecksumError`` propagates.
    """

    def __init__(
        self,
        disk,
        capacity: int,
        policy: Optional[EvictionPolicy] = None,
        budget=None,
        runtime_provider: Optional[Callable[[], Any]] = None,
    ):
        if capacity < 1:
            raise ConfigurationError(
                f"buffer pool capacity must be >= 1, got {capacity}"
            )
        self.disk = disk
        self.capacity = capacity
        self.policy = policy if policy is not None else LRUPolicy()
        self.redo_hook: Optional[Callable[[int], Optional[Sequence[Any]]]] = \
            None
        self._budget = budget
        self._runtime_provider = runtime_provider
        self._frames: Dict[int, Block] = {}
        self._dirty: set = set()
        self._pins: Dict[int, int] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.scrubs = 0
        self.bypasses = 0

    # ------------------------------------------------------------------
    # frame access
    # ------------------------------------------------------------------
    def get(self, block_id: int) -> Block:
        """Return the in-memory payload of ``block_id``, faulting it in
        (one read I/O) on a miss.

        On a machine-attached pool the miss is retried under the
        runtime's :class:`~repro.faults.retry.RetryPolicy`; a torn block
        is repaired through :attr:`redo_hook` or raises
        :class:`~repro.core.exceptions.ChecksumError`.  If the memory
        budget cannot spare a frame even after reclaim (an algorithm
        hard-holds ~``M``), the read is served uncached (*bypass*)."""
        frame = self._frames.get(block_id)
        if frame is not None:
            self.hits += 1
            self.policy.on_access(block_id)
            self._notify("hit", block_id)
            return frame
        self.misses += 1
        self._notify("miss", block_id)
        self._make_room(1)
        if not self._charge_frame():
            self.bypasses += 1
            self._notify("bypass", block_id)
            return self._read_through(block_id)
        try:
            frame = self._read_through(block_id)
        except BaseException:
            self._budget.release(self._frame_records, reclaimable=True)
            raise
        self._frames[block_id] = frame
        self.policy.on_insert(block_id)
        return frame

    def get_many(self, block_ids: Sequence[int]) -> List[Block]:
        """Batched :meth:`get`: payloads for ``block_ids`` in request
        order (duplicates allowed; fetched once).

        Resident blocks are served as hits; on a machine-attached pool
        the misses are fetched through the scheduler in parallel waves —
        a batch with at most one miss per disk costs a single step — so
        B+-tree range queries, hashing ``items()``, and matrix tile
        reads pay ``ceil(k/D)`` steps for ``k`` misses instead of ``k``.
        Blocks the budget cannot cache are read in the same waves but
        not installed (*bypass*); the returned payloads are usable
        either way.  Intended for read paths: mutating callers must
        check residency and :meth:`mark_dirty` per block."""
        order = list(block_ids)
        payloads: Dict[int, Block] = {}
        missing: List[int] = []
        for block_id in order:
            if block_id in payloads or block_id in self._frames:
                if block_id not in payloads:
                    self.hits += 1
                    self.policy.on_access(block_id)
                    self._notify("hit", block_id)
                    payloads[block_id] = self._frames[block_id]
                continue
            if block_id in missing:
                continue
            self.misses += 1
            self._notify("miss", block_id)
            missing.append(block_id)
        runtime = self._runtime()
        if runtime is None:
            for block_id in missing:
                payloads[block_id] = self._install_miss(block_id)
        else:
            # Fetch misses chunk by chunk so a huge batch cannot evict
            # its own earlier blocks before the caller sees them.
            chunk_size = max(1, self.capacity - len(self._pins))
            for start in range(0, len(missing), chunk_size):
                chunk = missing[start:start + chunk_size]
                self._fetch_wave(chunk, payloads, runtime)
        return [payloads[block_id] for block_id in order]

    def _fetch_wave(
        self,
        chunk: List[int],
        payloads: Dict[int, Block],
        runtime,
    ) -> None:
        """Read one chunk of misses as parallel waves, installing what
        the frame and memory budgets allow and bypassing the rest."""
        cacheable: List[int] = []
        short_of_memory = False
        for block_id in chunk:
            roomy = True
            try:
                self._make_room(1 + len(cacheable))
            except PoolError:
                roomy = False  # every frame pinned: serve uncached
            if roomy and not short_of_memory and self._charge_frame():
                cacheable.append(block_id)
            else:
                short_of_memory = short_of_memory or roomy
        try:
            try:
                results = runtime.read_batch(chunk)
            except ChecksumError:
                # Re-issue block by block so the torn block(s) can be
                # repaired through the redo hook (fault plans only).
                results = [
                    self._read_through(block_id) for block_id in chunk
                ]
        except BaseException:
            for _ in cacheable:
                self._budget.release(self._frame_records, reclaimable=True)
            raise
        cacheable_set = set(cacheable)
        for block_id, payload in zip(chunk, results):
            payloads[block_id] = payload
            if block_id in cacheable_set:
                self._frames[block_id] = payload
                self.policy.on_insert(block_id)
            else:
                self.bypasses += 1
                self._notify("bypass", block_id)

    def put_new(self, block_id: int,
                records: Optional[Iterable[Any]] = None) -> Block:
        """Install a freshly allocated block into the pool, dirty, without
        reading it from disk (there is nothing to read yet).

        Raises:
            MemoryLimitExceeded: on a budget-attached pool when even
                reclaim cannot free a frame's worth of memory (a new
                dirty block cannot be served uncached).
        """
        if block_id in self._frames:
            raise PoolError(f"block {block_id} is already resident")
        self._make_room(1)
        if not self._charge_frame():
            raise MemoryLimitExceeded(
                self._frame_records, self._budget.occupancy,
                self._budget.capacity,
            )
        # Type-preserving: a typed payload installed into the pool
        # stays typed through residency, eviction, and write-back.
        frame = copy_payload(records) if records is not None else []
        self._frames[block_id] = frame
        self._dirty.add(block_id)
        self.policy.on_insert(block_id)
        return frame

    def mark_dirty(self, block_id: int) -> None:
        """Record that the resident payload differs from the disk image."""
        if block_id not in self._frames:
            raise PoolError(f"block {block_id} is not resident")
        self._dirty.add(block_id)

    def is_resident(self, block_id: int) -> bool:
        """Return whether ``block_id`` currently occupies a frame."""
        return block_id in self._frames

    @property
    def resident_count(self) -> int:
        """Number of occupied frames."""
        return len(self._frames)

    # ------------------------------------------------------------------
    # pinning
    # ------------------------------------------------------------------
    def pin(self, block_id: int) -> None:
        """Protect a resident block from eviction until unpinned.  On a
        budget-attached pool the frame's charge hardens: the budget's
        reclaimer may no longer take it."""
        if block_id not in self._frames:
            raise PoolError(f"cannot pin non-resident block {block_id}")
        count = self._pins.get(block_id, 0)
        if count == 0 and self._budget is not None:
            self._budget.harden(self._frame_records)
        self._pins[block_id] = count + 1

    def unpin(self, block_id: int) -> None:
        """Release one pin on ``block_id``."""
        count = self._pins.get(block_id, 0)
        if count <= 0:
            raise PoolError(f"block {block_id} is not pinned")
        if count == 1:
            del self._pins[block_id]
            if self._budget is not None:
                self._budget.soften(self._frame_records)
        else:
            self._pins[block_id] = count - 1

    # ------------------------------------------------------------------
    # write-back
    # ------------------------------------------------------------------
    def flush(self, block_id: int) -> None:
        """Write a dirty resident block back to disk (one write I/O; on
        a machine-attached multi-disk pool the write joins the runtime's
        write-behind window and coalesces into a ``D``-block wave)."""
        if block_id not in self._frames:
            raise PoolError(f"block {block_id} is not resident")
        if block_id not in self._dirty:
            return
        runtime = self._runtime()
        if runtime is None:
            self.disk.write(block_id, self._frames[block_id])
        else:
            runtime.writer.put(block_id, self._frames[block_id])
        self._dirty.discard(block_id)

    def flush_all(self) -> None:
        """Write back every dirty resident block, then drain any
        deferred write-behind window so the disk image is current."""
        for block_id in list(self._dirty):
            self.flush(block_id)
        runtime = self._runtime()
        if runtime is not None:
            runtime.writer.flush()

    def drop(self, block_id: int) -> None:
        """Discard a resident block, flushing it first if dirty.

        Raises:
            PoolError: if the block is pinned.  Dropping a pinned frame
                used to succeed silently, leaving the pin count pointing
                at a ghost so the later ``unpin`` raised instead; the
                caller must unpin first.
        """
        if block_id not in self._frames:
            return
        pins = self._pins.get(block_id, 0)
        if pins:
            raise PoolError(
                f"cannot drop pinned block {block_id} "
                f"({pins} pin(s) held); unpin it first"
            )
        self._retire(block_id)

    def drop_all(self) -> None:
        """Flush and discard every resident block (e.g. between phases).
        Raises :class:`~repro.core.exceptions.PoolError` if any frame is
        still pinned."""
        for block_id in list(self._frames):
            self.drop(block_id)

    def invalidate(self, block_id: int) -> None:
        """Discard a resident block *without* flushing (the caller freed
        the underlying disk block).  Any write still deferred for it in
        the write-behind window is discarded too — flushing it later
        would resurrect the freed block."""
        if block_id not in self._frames:
            return
        pinned = self._pins.pop(block_id, 0)
        del self._frames[block_id]
        self._dirty.discard(block_id)
        self.policy.on_remove(block_id)
        if self._budget is not None:
            # A pinned frame's charge was hardened; release the right
            # column either way.
            self._budget.release(self._frame_records,
                                 reclaimable=not pinned)
        runtime = self._runtime()
        if runtime is not None:
            runtime.writer.discard([block_id])

    # ------------------------------------------------------------------
    # budget cooperation
    # ------------------------------------------------------------------
    def reclaim(self, deficit: int) -> int:
        """Shrink the pool under memory pressure: evict unpinned frames
        until at least ``deficit`` records are freed (or nothing
        evictable remains), clean frames first so dropping cache costs
        no transfer before write-backs do.  Dirty victims are written as
        one batched wave.  Called by the runtime on behalf of
        :attr:`~repro.core.memory.MemoryBudget.reclaimer`; returns the
        records freed."""
        if self._budget is None or deficit <= 0:
            return 0
        freed = 0
        dirty_victims: List[Tuple[int, Block]] = []
        while freed < deficit:
            candidates = {
                block_id
                for block_id in self._frames
                if self._pins.get(block_id, 0) == 0
            }
            if not candidates:
                break
            clean = candidates - self._dirty
            if clean:
                victim = self.policy.victim(clean)
                payload = self._frames.pop(victim)
                self.policy.on_remove(victim)
                self._verify_retired(victim, payload, was_dirty=False)
            else:
                victim = self.policy.victim(candidates)
                payload = self._frames.pop(victim)
                self._dirty.discard(victim)
                self.policy.on_remove(victim)
                dirty_victims.append((victim, payload))
            self._budget.release(self._frame_records, reclaimable=True)
            freed += self._frame_records
            self.evictions += 1
            self._notify("eviction", victim)
        if dirty_victims:
            runtime = self._runtime()
            if runtime is None:  # pragma: no cover - reclaim implies runtime
                for block_id, payload in dirty_victims:
                    self.disk.write(block_id, payload)
            else:
                runtime.writer.discard([b for b, _ in dirty_victims])
                runtime.scheduler.write_batch(dirty_victims)
                for block_id, payload in dirty_victims:
                    self._verify_written(block_id, payload, runtime)
        return freed

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    @property
    def _frame_records(self) -> int:
        """Records one frame charges to the budget (the disk's ``B``)."""
        return self.disk.block_capacity

    def _runtime(self):
        if self._runtime_provider is None:
            return None
        return self._runtime_provider()

    def _notify(self, event: str, block_id: int) -> None:
        """Tell the disk's listener (the tracer) about pool traffic."""
        listener = self.disk.listener
        if listener is not None:
            handler = getattr(listener, "on_pool", None)
            if handler is not None:
                handler(event, block_id)

    def _charge_frame(self) -> bool:
        """Charge one frame (``B`` reclaimable records) to the budget.
        False — after the budget's reclaimer already had its chance —
        means memory is hard-committed elsewhere and the caller must
        bypass the cache."""
        if self._budget is None:
            return True
        try:
            self._budget.acquire(self._frame_records, reclaimable=True)
        except MemoryLimitExceeded:
            return False
        return True

    def _read_through(self, block_id: int) -> Block:
        """Read a block via the runtime (retry + read-your-writes), with
        redo-hook repair for torn blocks; direct when standalone."""
        runtime = self._runtime()
        if runtime is None:
            return self.disk.read(block_id)
        try:
            return runtime.read_block(block_id)
        except ChecksumError:
            return self._redo(block_id, runtime)

    def _redo(self, block_id: int, runtime) -> Block:
        """Repair a torn block through :attr:`redo_hook`, rewriting and
        verifying the disk image (a read-triggered scrub)."""
        hook = self.redo_hook
        payload = hook(block_id) if hook is not None else None
        if payload is None:
            raise  # noqa: PLE0704 - re-raise the active ChecksumError
        payload = copy_payload(payload)
        self._scrub_write(block_id, payload, runtime)
        return payload

    def _scrub_write(self, block_id: int, payload: Block, runtime) -> None:
        """Rewrite ``payload`` until the disk image verifies, bounded by
        the retry policy's attempt budget (each rewrite may tear again
        under an adversarial plan)."""
        attempts = runtime.scheduler.retry.max_attempts
        while True:
            runtime.scheduler.write_batch([(block_id, payload)])
            self.scrubs += 1
            self._notify("scrub", block_id)
            if self.disk.verify_checksum(block_id):
                return
            attempts -= 1
            if attempts <= 0:
                raise ChecksumError(block_id)

    def _verify_written(self, block_id: int, payload: Block,
                        runtime) -> None:
        if self.disk.checksums_enabled and \
                not self.disk.verify_checksum(block_id):
            self._scrub_write(block_id, payload, runtime)

    def _verify_retired(self, block_id: int, payload: Block,
                        was_dirty: bool) -> None:
        """A payload is leaving memory: make the disk image current and
        — with checksums on — verified, while the good copy is still in
        hand.  This is the last moment a torn flush is recoverable
        without a redo hook."""
        if not was_dirty and not self.disk.is_allocated(block_id):
            # The caller freed the block while its clean frame stayed
            # resident (e.g. a table deleted right after extraction);
            # there is nothing on disk left to verify against.
            return
        runtime = self._runtime()
        if runtime is None:
            if was_dirty:
                self.disk.write(block_id, payload)
            return
        if not self.disk.checksums_enabled:
            if was_dirty:
                runtime.writer.put(block_id, payload)
            return
        if was_dirty:
            # Supersede any older deferred write and write through so
            # the image can be verified now (coalescing is sacrificed
            # only while a fault plan is or was installed).
            runtime.writer.discard([block_id])
            runtime.scheduler.write_batch([(block_id, payload)])
        else:
            runtime.writer.ensure_flushed(block_id)
        self._verify_written(block_id, payload, runtime)

    def _retire(self, block_id: int) -> None:
        """Remove an unpinned frame, writing back and verifying as
        needed, and return its budget charge."""
        payload = self._frames.pop(block_id)
        was_dirty = block_id in self._dirty
        self._dirty.discard(block_id)
        self.policy.on_remove(block_id)
        self._verify_retired(block_id, payload, was_dirty)
        if self._budget is not None:
            self._budget.release(self._frame_records, reclaimable=True)

    def _make_room(self, needed: int) -> None:
        """Evict victims until ``needed`` frames are free."""
        while len(self._frames) > self.capacity - needed:
            candidates = {
                block_id
                for block_id in self._frames
                if self._pins.get(block_id, 0) == 0
            }
            if not candidates:
                raise PoolError(
                    "buffer pool exhausted: every frame is pinned"
                )
            victim = self.policy.victim(candidates)
            self._retire(victim)
            self.evictions += 1
            self._notify("eviction", victim)

    def _ensure_free_frame(self) -> None:
        self._make_room(1)

    def _install_miss(self, block_id: int) -> Block:
        """Fault in one block whose miss is already counted (standalone
        ``get_many`` path)."""
        self._make_room(1)
        frame = self.disk.read(block_id)
        self._frames[block_id] = frame
        self.policy.on_insert(block_id)
        return frame


POLICIES = {
    "lru": LRUPolicy,
    "mru": MRUPolicy,
    "fifo": FIFOPolicy,
    "clock": ClockPolicy,
}
"""Registry of online policies by name (MIN is offline and excluded)."""

"""Buffer pool with pluggable eviction policies.

The I/O model assumes the algorithm controls which ``M/B`` blocks reside in
internal memory.  Data structures in this library (B+-tree, hashing, buffer
tree) access disk through a :class:`BufferPool` whose frame budget is the
machine's ``m = M/B``; repeated access to a cached block is then free, and
the pool's hit/miss statistics expose the paging behaviour.

Eviction is pluggable so the survey's remark that the model assumes optimal
(or at least explicit) paging can be quantified: the ablation benchmark
compares LRU, FIFO, Clock, MRU, and Belady's offline MIN on the same access
traces.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Any, Dict, Iterable, List, Optional, Sequence

from .disk import Block
from .exceptions import ConfigurationError, PoolError


class EvictionPolicy:
    """Interface for eviction policies.

    The pool notifies the policy of every access and insertion; when a frame
    is needed the pool asks :meth:`victim` which resident, unpinned block to
    evict.
    """

    name = "abstract"

    def on_insert(self, block_id: int) -> None:
        """A block became resident."""
        raise NotImplementedError

    def on_access(self, block_id: int) -> None:
        """A resident block was accessed (pool hit)."""
        raise NotImplementedError

    def on_remove(self, block_id: int) -> None:
        """A block left the pool (evicted or explicitly dropped)."""
        raise NotImplementedError

    def victim(self, candidates) -> int:
        """Choose one of ``candidates`` (a set of evictable ids) to evict."""
        raise NotImplementedError


class LRUPolicy(EvictionPolicy):
    """Evict the least recently used block."""

    name = "lru"

    def __init__(self):
        self._order: "OrderedDict[int, None]" = OrderedDict()

    def on_insert(self, block_id: int) -> None:
        self._order[block_id] = None

    def on_access(self, block_id: int) -> None:
        self._order.move_to_end(block_id)

    def on_remove(self, block_id: int) -> None:
        self._order.pop(block_id, None)

    def victim(self, candidates) -> int:
        for block_id in self._order:
            if block_id in candidates:
                return block_id
        raise PoolError("no evictable frame (all pinned)")


class MRUPolicy(EvictionPolicy):
    """Evict the most recently used block.

    MRU is optimal for cyclic scans that slightly exceed the pool size,
    which is exactly the trace where LRU degenerates to 100% misses.
    """

    name = "mru"

    def __init__(self):
        self._order: "OrderedDict[int, None]" = OrderedDict()

    def on_insert(self, block_id: int) -> None:
        self._order[block_id] = None

    def on_access(self, block_id: int) -> None:
        self._order.move_to_end(block_id)

    def on_remove(self, block_id: int) -> None:
        self._order.pop(block_id, None)

    def victim(self, candidates) -> int:
        for block_id in reversed(self._order):
            if block_id in candidates:
                return block_id
        raise PoolError("no evictable frame (all pinned)")


class FIFOPolicy(EvictionPolicy):
    """Evict blocks in the order they entered the pool."""

    name = "fifo"

    def __init__(self):
        self._queue: deque = deque()
        self._resident: set = set()

    def on_insert(self, block_id: int) -> None:
        self._queue.append(block_id)
        self._resident.add(block_id)

    def on_access(self, block_id: int) -> None:
        pass  # FIFO ignores accesses

    def on_remove(self, block_id: int) -> None:
        self._resident.discard(block_id)

    def victim(self, candidates) -> int:
        while self._queue:
            block_id = self._queue[0]
            if block_id not in self._resident:
                self._queue.popleft()
                continue
            if block_id in candidates:
                return block_id
            # Pinned: rotate it to the back so we can make progress.
            self._queue.popleft()
            self._queue.append(block_id)
        raise PoolError("no evictable frame (all pinned)")


class ClockPolicy(EvictionPolicy):
    """Second-chance (clock) approximation of LRU."""

    name = "clock"

    def __init__(self):
        self._ref: "OrderedDict[int, bool]" = OrderedDict()

    def on_insert(self, block_id: int) -> None:
        self._ref[block_id] = True

    def on_access(self, block_id: int) -> None:
        if block_id in self._ref:
            self._ref[block_id] = True

    def on_remove(self, block_id: int) -> None:
        self._ref.pop(block_id, None)

    def victim(self, candidates) -> int:
        # Sweep the clock hand: clear reference bits until an unreferenced
        # evictable block is found.
        for _ in range(2 * len(self._ref) + 1):
            if not self._ref:
                break
            block_id, referenced = next(iter(self._ref.items()))
            self._ref.move_to_end(block_id)
            if block_id not in candidates:
                continue
            if referenced:
                self._ref[block_id] = False
            else:
                return block_id
        # Everything was referenced; fall back to the current hand position.
        for block_id in self._ref:
            if block_id in candidates:
                return block_id
        raise PoolError("no evictable frame (all pinned)")


class MinPolicy(EvictionPolicy):
    """Belady's offline-optimal MIN policy.

    Requires the full future access trace up front, so it is only usable in
    ablation experiments where the trace is known.  Evicts the evictable
    block whose next use is farthest in the future.
    """

    name = "min"

    def __init__(self, trace: Sequence[int]):
        self._future: Dict[int, deque] = {}
        for position, block_id in enumerate(trace):
            self._future.setdefault(block_id, deque()).append(position)
        self._clock = 0

    def on_insert(self, block_id: int) -> None:
        self._advance(block_id)

    def on_access(self, block_id: int) -> None:
        self._advance(block_id)

    def on_remove(self, block_id: int) -> None:
        pass

    def _advance(self, block_id: int) -> None:
        # Drop every trace position up to and including the current
        # access, leaving only strictly future uses of this block.
        positions = self._future.get(block_id)
        while positions and positions[0] <= self._clock:
            positions.popleft()
        self._clock += 1

    def victim(self, candidates) -> int:
        farthest_block = None
        farthest_next = -1
        for block_id in candidates:
            positions = self._future.get(block_id)
            next_use = positions[0] if positions else float("inf")
            if next_use > farthest_next:
                farthest_next = next_use
                farthest_block = block_id
                if next_use == float("inf"):
                    break
        if farthest_block is None:
            raise PoolError("no evictable frame (all pinned)")
        return farthest_block


class BufferPool:
    """A fixed budget of in-memory frames caching disk blocks.

    Args:
        disk: the backing :class:`~repro.core.disk.SimulatedDisk` or
            :class:`~repro.core.disk.DiskArray`.
        capacity: frame budget in blocks (the model's ``m = M/B``).
        policy: eviction policy instance; defaults to a fresh
            :class:`LRUPolicy`.

    The payload handed out by :meth:`get` is the pool's own mutable list;
    callers that mutate it must call :meth:`mark_dirty` so the block is
    flushed on eviction.
    """

    def __init__(self, disk, capacity: int, policy: Optional[EvictionPolicy] = None):
        if capacity < 1:
            raise ConfigurationError(
                f"buffer pool capacity must be >= 1, got {capacity}"
            )
        self.disk = disk
        self.capacity = capacity
        self.policy = policy if policy is not None else LRUPolicy()
        self._frames: Dict[int, Block] = {}
        self._dirty: set = set()
        self._pins: Dict[int, int] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # frame access
    # ------------------------------------------------------------------
    def get(self, block_id: int) -> Block:
        """Return the in-memory payload of ``block_id``, faulting it in
        (one read I/O) on a miss."""
        frame = self._frames.get(block_id)
        if frame is not None:
            self.hits += 1
            self.policy.on_access(block_id)
            return frame
        self.misses += 1
        self._ensure_free_frame()
        frame = self.disk.read(block_id)
        self._frames[block_id] = frame
        self.policy.on_insert(block_id)
        return frame

    def put_new(self, block_id: int, records: Optional[Iterable[Any]] = None) -> Block:
        """Install a freshly allocated block into the pool, dirty, without
        reading it from disk (there is nothing to read yet)."""
        if block_id in self._frames:
            raise PoolError(f"block {block_id} is already resident")
        self._ensure_free_frame()
        frame = list(records) if records is not None else []
        self._frames[block_id] = frame
        self._dirty.add(block_id)
        self.policy.on_insert(block_id)
        return frame

    def mark_dirty(self, block_id: int) -> None:
        """Record that the resident payload differs from the disk image."""
        if block_id not in self._frames:
            raise PoolError(f"block {block_id} is not resident")
        self._dirty.add(block_id)

    def is_resident(self, block_id: int) -> bool:
        """Return whether ``block_id`` currently occupies a frame."""
        return block_id in self._frames

    @property
    def resident_count(self) -> int:
        """Number of occupied frames."""
        return len(self._frames)

    # ------------------------------------------------------------------
    # pinning
    # ------------------------------------------------------------------
    def pin(self, block_id: int) -> None:
        """Protect a resident block from eviction until unpinned."""
        if block_id not in self._frames:
            raise PoolError(f"cannot pin non-resident block {block_id}")
        self._pins[block_id] = self._pins.get(block_id, 0) + 1

    def unpin(self, block_id: int) -> None:
        """Release one pin on ``block_id``."""
        count = self._pins.get(block_id, 0)
        if count <= 0:
            raise PoolError(f"block {block_id} is not pinned")
        if count == 1:
            del self._pins[block_id]
        else:
            self._pins[block_id] = count - 1

    # ------------------------------------------------------------------
    # write-back
    # ------------------------------------------------------------------
    def flush(self, block_id: int) -> None:
        """Write a dirty resident block back to disk (one write I/O)."""
        if block_id not in self._frames:
            raise PoolError(f"block {block_id} is not resident")
        if block_id in self._dirty:
            self.disk.write(block_id, self._frames[block_id])
            self._dirty.discard(block_id)

    def flush_all(self) -> None:
        """Write back every dirty resident block."""
        for block_id in list(self._dirty):
            self.flush(block_id)

    def drop(self, block_id: int) -> None:
        """Discard a resident block, flushing it first if dirty."""
        if block_id not in self._frames:
            return
        self.flush(block_id)
        del self._frames[block_id]
        self._pins.pop(block_id, None)
        self.policy.on_remove(block_id)

    def drop_all(self) -> None:
        """Flush and discard every resident block (e.g. between phases)."""
        for block_id in list(self._frames):
            self.drop(block_id)

    def invalidate(self, block_id: int) -> None:
        """Discard a resident block *without* flushing (the caller freed the
        underlying disk block)."""
        if block_id in self._frames:
            del self._frames[block_id]
            self._dirty.discard(block_id)
            self._pins.pop(block_id, None)
            self.policy.on_remove(block_id)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _ensure_free_frame(self) -> None:
        if len(self._frames) < self.capacity:
            return
        candidates = {
            block_id
            for block_id in self._frames
            if self._pins.get(block_id, 0) == 0
        }
        if not candidates:
            raise PoolError("buffer pool exhausted: every frame is pinned")
        victim = self.policy.victim(candidates)
        self.flush(victim)
        del self._frames[victim]
        self.policy.on_remove(victim)
        self.evictions += 1


POLICIES = {
    "lru": LRUPolicy,
    "mru": MRUPolicy,
    "fifo": FIFOPolicy,
    "clock": ClockPolicy,
}
"""Registry of online policies by name (MIN is offline and excluded)."""

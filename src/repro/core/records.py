"""Typed block payloads: buffers instead of lists of Python objects.

The I/O model measures block capacity in *records*, so nothing in the
substrate cares how a payload is represented — but wall-clock time does.
A block of 64 Python ints costs 64 object headers, 64 refcount bumps per
copy, and 64 interpreter-dispatched comparisons per merge step.  The same
block as a numpy array (or an ``array.array``) is one contiguous buffer:
copies are ``memcpy``, comparisons are batched per block (Arge–Thorup's
RAM-efficient sorting), and serialization to a real file is ``tobytes()``.

This module is the single place that knows the payload representations:

* ``list`` — the seed representation, arbitrary Python objects;
* ``numpy.ndarray`` — scalar or structured dtype, the vectorized path;
* ``array.array`` — typed scalars without numpy.

Every helper preserves the input's representation, so a typed payload
stays typed through streams, the buffer pool, the write-behind window,
and the fault injector's torn prefixes.  Algorithms never branch on the
representation themselves; they call :func:`argsort` / :func:`take` /
:func:`concat` and get the batch implementation when one exists.
"""

from __future__ import annotations

import pickle
import struct
from array import array
from typing import Any, Callable, Iterable, List, Optional, Sequence

try:  # numpy is the preferred typed backend but never a hard dependency
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None

np = _np  # re-exported so callers can gate their own fast paths


def is_typed(payload: Any) -> bool:
    """Whether ``payload`` is a buffer-backed (vectorizable) payload."""
    if isinstance(payload, array):
        return True
    return np is not None and isinstance(payload, np.ndarray)


def copy_payload(payload: Sequence[Any]) -> Sequence[Any]:
    """An independent, same-representation copy of ``payload``.

    The device layer's isolation contract: a stored block never aliases
    caller memory.  ``ndarray.copy()`` also compacts a view (a slice of a
    permuted memoryload) into an owned contiguous buffer.
    """
    if np is not None and isinstance(payload, np.ndarray):
        return payload.copy()
    if isinstance(payload, array):
        return array(payload.typecode, payload)
    return list(payload)


def concat(parts: Sequence[Sequence[Any]]) -> Sequence[Any]:
    """Concatenate payload ``parts``, preserving their representation.

    Mixed representations (or no parts) fall back to a plain list.
    """
    if not parts:
        return []
    if len(parts) == 1:
        return copy_payload(parts[0])
    first = parts[0]
    if np is not None and isinstance(first, np.ndarray) \
            and all(isinstance(p, np.ndarray) for p in parts):
        if first.ndim == 1 and all(p.ndim == 1
                                   and p.dtype == first.dtype
                                   for p in parts):
            # Preallocate-and-assign: ``np.concatenate`` re-derives a
            # promoted dtype per input, which is measurably hot for
            # structured dtypes on the merge path; same-dtype parts
            # need only memcpy.
            out = np.empty(sum(len(p) for p in parts),
                           dtype=first.dtype)
            pos = 0
            for part in parts:
                out[pos:pos + len(part)] = part
                pos += len(part)
            return out
        return np.concatenate(parts)
    if isinstance(first, array) \
            and all(isinstance(p, array)
                    and p.typecode == first.typecode for p in parts):
        out = array(first.typecode)
        for part in parts:
            out.extend(part)
        return out
    out_list: List[Any] = []
    for part in parts:
        out_list.extend(part)
    return out_list


def take(payload: Sequence[Any], indices: Sequence[int]) -> Sequence[Any]:
    """``[payload[i] for i in indices]`` in the payload's representation.

    The key-pointer sort's single permutation pass: records move once,
    through their pointers, never during the comparison sort.
    """
    if np is not None and isinstance(payload, np.ndarray):
        return payload[np.asarray(indices)]
    if isinstance(payload, array):
        return array(payload.typecode, (payload[i] for i in indices))
    return [payload[i] for i in indices]


class FieldKey:
    """A key function that names a record field (``record[name]``).

    Naming the field (instead of closing over it in a lambda) lets the
    batch helpers vectorize: a structured-array payload's keys are the
    column ``payload[name]``, extracted once per block.
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __call__(self, record: Any) -> Any:
        return record[self.name]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"field({self.name!r})"


def field(name: str) -> FieldKey:
    """Key function selecting ``record[name]``, vectorizable on
    structured-array payloads."""
    return FieldKey(name)


def _vector_keys(payload: Sequence[Any],
                 key: Optional[Callable[[Any], Any]]):
    """The key column of an ndarray payload, or None when the key cannot
    be applied batch-wise."""
    if np is None or not isinstance(payload, np.ndarray):
        return None
    if key is None or getattr(key, "__name__", "") == "identity":
        return payload if payload.dtype.names is None else None
    if isinstance(key, FieldKey) and payload.dtype.names \
            and key.name in payload.dtype.names:
        return payload[key.name]
    return None


def key_column(payload: Sequence[Any],
               key: Optional[Callable[[Any], Any]] = None):
    """The key column of a typed payload as an ndarray, or ``None``
    when no batch extraction exists (object payloads, opaque keys) —
    the gate for vectorized scatter/search fast paths."""
    return _vector_keys(payload, key)


def argsort(payload: Sequence[Any],
            key: Optional[Callable[[Any], Any]] = None) -> Sequence[int]:
    """Stable sort order of ``payload`` under ``key``, as indices.

    Vectorized (``numpy.argsort(kind="stable")``) when the payload is an
    ndarray and the key is the identity or a :func:`field` of it;
    otherwise a Python sort over an extracted key list — still one key
    call per record, never a full-record comparison.
    """
    column = _vector_keys(payload, key)
    if column is not None:
        return np.argsort(column, kind="stable")
    if key is None or getattr(key, "__name__", "") == "identity":
        keys: Sequence[Any] = payload
    else:
        keys = [key(record) for record in payload]
    return sorted(range(len(payload)), key=keys.__getitem__)


def key_list(payload: Sequence[Any],
             key: Optional[Callable[[Any], Any]] = None) -> List[Any]:
    """The block's keys as a Python list (for ``bisect`` galloping).

    ``ndarray.tolist()`` converts a whole column in C, yielding plain
    ints/floats/strs whose comparisons are an order of magnitude faster
    than numpy scalars under ``bisect``.  The returned list may alias
    ``payload`` when it already is a plain list of keys — callers must
    treat it as read-only.
    """
    column = _vector_keys(payload, key)
    if column is not None:
        return column.tolist()
    if key is None or getattr(key, "__name__", "") == "identity":
        if isinstance(payload, array):
            return payload.tolist()
        if isinstance(payload, list):
            return payload
        return list(payload)
    return [key(record) for record in payload]


# ----------------------------------------------------------------------
# canonical bytes: serialization and checksums
# ----------------------------------------------------------------------

_KIND_NDARRAY = b"N"
_KIND_ARRAY = b"A"
_KIND_PICKLE = b"P"

# (dtype, shape) <-> pickled header caches: a stream writes thousands of
# blocks sharing a handful of dtypes/lengths, and pickling the dtype per
# block costs more than the tobytes() that follows.  Bounded: cleared
# wholesale if a workload somehow produces unbounded distinct shapes.
_HEADER_CACHE_LIMIT = 1024
_encode_headers: dict = {}
_decode_headers: dict = {}
_dtype_tags: dict = {}


def _dtype_tag(dtype) -> bytes:
    # str() of a structured dtype rebuilds the full field spec every
    # call — several times the cost of hashing the block it tags.
    tag = _dtype_tags.get(dtype)
    if tag is None:
        if len(_dtype_tags) >= _HEADER_CACHE_LIMIT:
            _dtype_tags.clear()
        tag = b"N:" + str(dtype).encode("utf-8") + b":"
        _dtype_tags[dtype] = tag
    return tag


def _ndarray_header(dtype, shape) -> bytes:
    cache_key = (dtype, shape)
    header = _encode_headers.get(cache_key)
    if header is None:
        if len(_encode_headers) >= _HEADER_CACHE_LIMIT:
            _encode_headers.clear()
        header = pickle.dumps((dtype, shape), protocol=4)
        _encode_headers[cache_key] = header
    return header


def _ndarray_meta(header: bytes):
    meta = _decode_headers.get(header)
    if meta is None:
        if len(_decode_headers) >= _HEADER_CACHE_LIMIT:
            _decode_headers.clear()
        meta = pickle.loads(header)
        _decode_headers[header] = meta
    return meta


def canonical_bytes(records: Sequence[Any]) -> bytes:
    """Deterministic bytes covering **every** record of the payload.

    The checksum input.  ``repr`` is not usable here: numpy elides the
    middle of large arrays with ``...``, so two blocks differing only in
    elided elements would collide and a torn write would go undetected.
    Typed payloads hash their raw buffer (tagged with dtype/typecode so a
    reinterpreted buffer never collides); object payloads hash their
    pickle, falling back to ``repr`` for unpicklable records.
    """
    if np is not None and isinstance(records, np.ndarray) \
            and not records.dtype.hasobject:
        return _dtype_tag(records.dtype) + records.tobytes()
    if isinstance(records, array):
        return b"A:" + records.typecode.encode("utf-8") + b":" \
            + records.tobytes()
    try:
        return b"P:" + pickle.dumps(list(records), protocol=4)
    except Exception:
        return b"R:" + repr(list(records)).encode("utf-8")


def encode_block(records: Sequence[Any]) -> bytes:
    """Serialize a payload for a real-file backend.

    Typed payloads are a fixed header plus ``tobytes()``; object payloads
    (and object-dtype arrays) are pickled whole, so :func:`decode_block`
    restores exactly the representation that was written.
    """
    if np is not None and isinstance(records, np.ndarray) \
            and not records.dtype.hasobject:
        header = _ndarray_header(records.dtype, records.shape)
        return _KIND_NDARRAY + struct.pack("<I", len(header)) + header \
            + records.tobytes()
    if isinstance(records, array):
        typecode = records.typecode.encode("ascii")
        return _KIND_ARRAY + struct.pack("<I", len(typecode)) + typecode \
            + records.tobytes()
    payload = records if (np is not None
                          and isinstance(records, np.ndarray)) \
        else list(records)
    return _KIND_PICKLE + pickle.dumps(payload, protocol=4)


def decode_block(data: bytes) -> Sequence[Any]:
    """Inverse of :func:`encode_block`; returns an owned, writable
    payload in the representation that was encoded."""
    kind = data[:1]
    if kind == _KIND_NDARRAY:
        (header_len,) = struct.unpack_from("<I", data, 1)
        dtype, shape = _ndarray_meta(data[5:5 + header_len])
        flat = np.frombuffer(data, dtype=dtype, offset=5 + header_len)
        return flat.reshape(shape).copy()
    if kind == _KIND_ARRAY:
        (code_len,) = struct.unpack_from("<I", data, 1)
        typecode = data[5:5 + code_len].decode("ascii")
        out = array(typecode)
        out.frombytes(data[5 + code_len:])
        return out
    if kind == _KIND_PICKLE:
        return pickle.loads(data[1:])
    raise ValueError(f"unknown block encoding {kind!r}")


# ----------------------------------------------------------------------
# block assembly
# ----------------------------------------------------------------------

class BlockBuilder:
    """Accumulate payload segments and emit exactly-``B``-record blocks.

    The bridge between data-dependent producers (a distribution sort's
    buckets, a galloping merge's segments) and ``append_block``: segments
    of any length go in; every emitted block holds exactly ``B`` records
    except the one produced by the final :meth:`flush`.  This keeps block
    counts — and therefore simulated I/O — identical to the seed's
    record-at-a-time buffered writers.

    Segments are sliced lazily: ndarray slices are views, so a full
    aligned block passes through without a copy (the sink copies on
    store).
    """

    __slots__ = ("block_size", "_emit", "_parts", "_count")

    def __init__(self, block_size: int,
                 emit: Callable[[Sequence[Any]], None]):
        self.block_size = block_size
        self._emit = emit
        self._parts: List[Sequence[Any]] = []
        self._count = 0

    def __len__(self) -> int:
        """Records currently pending (always < ``B`` between calls)."""
        return self._count

    def push(self, payload: Sequence[Any], start: int = 0,
             stop: Optional[int] = None) -> None:
        """Append ``payload[start:stop]`` to the pending stream."""
        if stop is None:
            stop = len(payload)
        block_size = self.block_size
        while start < stop:
            if not self._parts and stop - start >= block_size:
                # Aligned full block: emit the slice directly.
                self._emit(payload[start:start + block_size])
                start += block_size
                continue
            chunk = min(block_size - self._count, stop - start)
            self._parts.append(payload[start:start + chunk])
            self._count += chunk
            start += chunk
            if self._count == block_size:
                self._emit(concat(self._parts))
                self._parts = []
                self._count = 0

    def flush(self) -> None:
        """Emit the pending partial block (if any)."""
        if self._parts:
            self._emit(concat(self._parts))
            self._parts = []
            self._count = 0

"""I/O intents: the contract between cooperative jobs and their driver.

A *cooperative* algorithm variant runs as a generator that, instead of
touching the pool or runtime directly, ``yield``\\ s an intent describing
the blocks it needs next and receives their payloads back via
``generator.send``.  The driver — :class:`repro.service.QueryService`,
or the trivial :func:`drive` loop below — decides *when* and *how* each
intent is fulfilled: it can interleave many jobs' intents, batch them
into parallel-disk waves, attribute their I/O and stalls to the tenant
that asked, and fail one job with ``generator.throw`` while the rest
keep running.

Two intents cover the substrate's two read paths:

* :class:`PoolRead` — blocks that live behind the buffer pool (B+-tree
  nodes, hash buckets, packed adjacency blocks).  Payloads may be dirty
  in the pool; fulfillment goes through
  :meth:`~repro.core.cache.BufferPool.get_many`.
* :class:`StreamRead` — write-once stream blocks (sorted runs, table
  scans).  Fulfillment goes through
  :meth:`~repro.runtime.Runtime.read_batch`, which observes deferred
  write-behind blocks first.

A bare ``yield`` (or ``yield None``) is a *checkpoint*: no I/O is
requested, the job only offers the driver a chance to reschedule.

The generator's ``return`` value is the job's result; drivers surface
it from the terminating ``StopIteration``.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple


class PoolRead:
    """Request payloads of blocks resident behind the buffer pool.

    The driver answers with ``pool.get_many(block_ids)`` — a list of
    payloads in request order (duplicates allowed, fetched once).
    """

    __slots__ = ("block_ids",)

    def __init__(self, block_ids: Sequence[int]):
        self.block_ids: Tuple[int, ...] = tuple(block_ids)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PoolRead({list(self.block_ids)!r})"


class StreamRead:
    """Request payloads of write-once stream blocks.

    The driver answers with ``runtime.read_batch(block_ids)`` — a list
    of payloads in request order, deferred writes observed first.
    """

    __slots__ = ("block_ids",)

    def __init__(self, block_ids: Sequence[int]):
        self.block_ids: Tuple[int, ...] = tuple(block_ids)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StreamRead({list(self.block_ids)!r})"


def fulfill(machine, intent) -> List[Any]:
    """Serve one intent against ``machine`` and return the payloads.

    The shared single-intent fulfillment path: the service's scheduler
    and the standalone :func:`drive` loop both route through here so an
    intent means the same I/O no matter which driver runs the job.
    """
    if isinstance(intent, PoolRead):
        return machine.pool.get_many(list(intent.block_ids))
    if isinstance(intent, StreamRead):
        return machine.runtime.read_batch(list(intent.block_ids))
    raise TypeError(f"not an I/O intent: {intent!r}")


def drive(machine, job) -> Any:
    """Run a cooperative ``job`` generator to completion, serving every
    intent immediately — the single-tenant driver.

    Equivalent to the eager algorithm it wraps (same blocks, same
    order), useful for testing a cooperative variant in isolation.
    Returns the job's ``return`` value.
    """
    payloads = None
    try:
        while True:
            intent = job.send(payloads)
            payloads = None if intent is None else fulfill(machine, intent)
    except StopIteration as done:
        return done.value

"""The simulated external-memory machine.

A :class:`Machine` bundles the model parameters (``B`` records per block,
``m`` frames of internal memory, ``D`` disks) with the devices implementing
them: a :class:`~repro.core.disk.DiskArray`, a
:class:`~repro.core.cache.BufferPool` whose frame budget is ``m``, and a
:class:`~repro.core.memory.MemoryBudget` of ``M = m·B`` records.  The
pool charges its resident frames to that same budget (as reclaimable
records the runtime can evict under algorithm pressure), so cached
structures and algorithm working space share one ``M``.

Every algorithm in the library takes a machine as its first argument and
charges all of its I/O to the machine's disk, so experiments measure cost
with::

    with machine.measure() as io:
        external_merge_sort(machine, stream)
    print(io.total, "I/Os")
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from .cache import BufferPool, EvictionPolicy
from .disk import DiskArray
from .exceptions import ConfigurationError
from .memory import MemoryBudget
from .stats import IOStats, Measurement


class Machine:
    """A configured instance of the I/O model.

    Args:
        block_size: ``B``, records per block.
        memory_blocks: ``m = M/B``, number of block frames of internal
            memory.  The model requires at least 2 (one input frame plus one
            output frame); sorting wants at least 3.
        num_disks: ``D``, independent disks (Parallel Disk Model).
        policy: optional eviction policy for the buffer pool.
        disk: optional pre-built block device (e.g. a
            :class:`~repro.core.filedisk.FileDiskArray` mapping blocks
            onto a real file).  Must agree with ``block_size`` and
            ``num_disks``; every algorithm, fault plan, and scheduler
            then runs unchanged against it.

    Attributes:
        disk: the backing :class:`~repro.core.disk.DiskArray`.
        pool: the buffer pool shared by the machine's data structures.
        budget: cooperative :class:`~repro.core.memory.MemoryBudget` of
            ``M`` records.
    """

    def __init__(
        self,
        block_size: int,
        memory_blocks: int,
        num_disks: int = 1,
        policy: Optional[EvictionPolicy] = None,
        disk: Optional[DiskArray] = None,
    ):
        if block_size < 1:
            raise ConfigurationError(
                f"block size must be >= 1, got {block_size}"
            )
        if memory_blocks < 2:
            raise ConfigurationError(
                f"memory must hold at least 2 blocks, got {memory_blocks}"
            )
        if num_disks < 1:
            raise ConfigurationError(
                f"number of disks must be >= 1, got {num_disks}"
            )
        if disk is not None:
            if disk.block_capacity != block_size:
                raise ConfigurationError(
                    f"disk block capacity {disk.block_capacity} does not "
                    f"match machine block size {block_size}"
                )
            if disk.num_disks != num_disks:
                raise ConfigurationError(
                    f"disk array has {disk.num_disks} disks, machine "
                    f"configured for {num_disks}"
                )
        self.block_size = block_size
        self.memory_blocks = memory_blocks
        self.num_disks = num_disks
        self.disk = disk if disk is not None \
            else DiskArray(block_size, num_disks)
        self.budget = MemoryBudget(block_size * memory_blocks)
        # The pool shares the single memory budget (each resident frame
        # charges B reclaimable records — structures plus algorithms get
        # one M, not one each) and routes misses/write-backs through the
        # machine's runtime for retry, coalescing, and tracing.
        self.pool = BufferPool(
            self.disk,
            memory_blocks,
            policy,
            budget=self.budget,
            runtime_provider=lambda: self.runtime,
        )
        self._runtime = None  # built lazily by the `runtime` property

    # ------------------------------------------------------------------
    # derived parameters
    # ------------------------------------------------------------------
    @property
    def B(self) -> int:
        """Block size in records."""
        return self.block_size

    @property
    def m(self) -> int:
        """Internal memory in blocks (frame budget)."""
        return self.memory_blocks

    @property
    def M(self) -> int:
        """Internal memory in records."""
        return self.block_size * self.memory_blocks

    @property
    def D(self) -> int:
        """Number of independent disks."""
        return self.num_disks

    @property
    def fan_in(self) -> int:
        """Maximum merge arity: ``m - 1`` (one input frame per run, plus
        one output frame, must fit in ``m``).

        A machine with ``m == 2`` reports fan-in 1: it can hold one input
        and the output frame, so it cannot merge at all — callers must
        raise rather than silently exceed the frame budget.
        """
        return self.memory_blocks - 1

    # ------------------------------------------------------------------
    # runtime
    # ------------------------------------------------------------------
    @property
    def runtime(self):
        """The machine's I/O runtime (scheduler, write-behind, tracer),
        built on first use — see :mod:`repro.runtime`."""
        if self._runtime is None:
            from ..runtime import Runtime
            self._runtime = Runtime(self)
        return self._runtime

    def trace(self, phase: str):
        """Attribute the I/O inside the ``with`` block to ``phase``::

            tracer = machine.runtime.start_trace()
            with machine.trace("merge-pass-1"):
                ...
            print(tracer.summary_table())
        """
        return self.runtime.tracer.phase(phase)

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    @contextmanager
    def inject_faults(self, plan):
        """Inject the seeded :class:`~repro.faults.plan.FaultPlan` into
        the machine's disk array for the duration of the ``with`` block::

            with machine.inject_faults(FaultPlan(seed=7,
                                                 read_error_rate=0.01)):
                external_merge_sort(machine, stream)

        Yields the live :class:`~repro.faults.plan.FaultInjector` so
        tests can assert exactly which faults fired.  Installing a plan
        enables per-block checksums on the disk (they stay enabled after
        the block exits, so torn blocks written under the plan are still
        detected later).  Nestable: the previous injector is restored on
        exit.
        """
        from ..faults.plan import FaultInjector
        injector = FaultInjector(plan)
        previous = self.disk.fault_injector
        self.disk.fault_injector = injector
        try:
            yield injector
        finally:
            self.disk.fault_injector = previous

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------
    def stats(self) -> IOStats:
        """Snapshot of cumulative I/O since the machine was created."""
        return self.disk.counter.snapshot()

    @contextmanager
    def measure(self, flush: bool = True) -> Iterator[Measurement]:
        """Measure the I/O performed inside a ``with`` block.

        Args:
            flush: when true (default), deferred runtime writes and dirty
                pool frames are flushed as the block exits so write-backs
                are charged to the region that dirtied them.
        """
        measurement = Measurement()
        before = self.stats()
        try:
            yield measurement
        finally:
            if flush:
                # Pool first: its dirty frames may enter the runtime's
                # write-behind window and must be drained by the
                # runtime flush that follows.
                self.pool.flush_all()
                if self._runtime is not None:
                    self._runtime.flush()
            measurement.stats = self.stats() - before

    def reset_stats(self) -> None:
        """Zero the machine's I/O counters (between experiment phases)."""
        self.disk.counter.reset()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Machine(B={self.B}, m={self.m}, M={self.M}, D={self.D})"
        )

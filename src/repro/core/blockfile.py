"""Fixed-size random-access block files.

:class:`~repro.core.stream.FileStream` is append-only; matrix operations
and naive permuting need to *write* blocks in arbitrary order.  A
:class:`BlockFile` is a fixed array of ``n`` blocks addressed by index,
reading and writing through the machine's runtime (one I/O each,
retried on transient faults; a single-block write wave costs the same
step a direct write would).

Direct block traffic stages through one ``B``-record memory frame that
the file holds from construction until :meth:`close` (or
:meth:`delete`), accounted against the machine's budget.  Use the file
as a context manager so the frame is released even when an error occurs
mid-use::

    with BlockFile(machine, num_blocks, name="out") as bf:
        bf.write_block(0, records)

After ``close`` the blocks stay on disk and remain addressable through
:meth:`block_id` (pool-mediated access has its own frame accounting);
only the direct :meth:`read_block`/:meth:`write_block`/:meth:`scan`
paths — the ones that need the staging frame — are refused.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence

from .exceptions import ConfigurationError, StreamError
from .machine import Machine


class BlockFile:
    """``num_blocks`` disk blocks addressable by index.

    Args:
        machine: the owning machine.
        num_blocks: number of blocks; fixed for the file's lifetime.
        name: debugging label.
    """

    def __init__(self, machine: Machine, num_blocks: int, name: str = ""):
        if num_blocks < 0:
            raise ConfigurationError(
                f"num_blocks must be >= 0, got {num_blocks}"
            )
        self.machine = machine
        self.name = name
        self._block_ids: List[int] = [
            machine.disk.allocate() for _ in range(num_blocks)
        ]
        self._deleted = False
        self._closed = False
        try:
            machine.budget.acquire(machine.block_size)
        except BaseException:
            for block_id in self._block_ids:
                machine.disk.free(block_id)
            self._block_ids = []
            self._deleted = True
            self._closed = True
            raise

    # ------------------------------------------------------------------
    # context manager / lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "BlockFile":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def close(self) -> None:
        """Release the staging frame (idempotent).

        The blocks stay allocated and :meth:`block_id` keeps working for
        pool-mediated access; direct reads/writes/scans are refused."""
        if not self._closed:
            self.machine.budget.release(self.machine.block_size)
            self._closed = True

    def delete(self) -> None:
        """Release the frame and free every block; the file becomes
        unusable.  Idempotent."""
        self.close()
        if self._deleted:
            return
        for block_id in self._block_ids:
            self.machine.disk.free(block_id)
        self._block_ids = []
        self._deleted = True

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @property
    def num_blocks(self) -> int:
        """Number of blocks in the file."""
        return len(self._block_ids)

    def block_id(self, index: int) -> int:
        """The underlying disk block id of block ``index`` (for use with
        the machine's buffer pool)."""
        self._check_index(index)
        return self._block_ids[index]

    def read_block(self, index: int) -> List[Any]:
        """Read block ``index`` (one read I/O), retried on transient
        faults under the runtime's policy and observing any deferred
        write-behind for the block."""
        self._check_frame()
        self._check_index(index)
        return self.machine.runtime.read_block(self._block_ids[index])

    def write_block(self, index: int, records: Sequence[Any]) -> None:
        """Write block ``index`` (one write I/O), issued through the
        scheduler so it is retried on transient faults.  Counts are
        bit-identical to a direct write: a one-block wave is one step."""
        self._check_frame()
        self._check_index(index)
        self.machine.runtime.scheduler.write_batch(
            [(self._block_ids[index], records)]
        )

    def scan(self) -> Iterator[Any]:
        """Yield every record in block order (one read I/O per block),
        staging through the file's held frame."""
        self._check_frame()
        return self._scan_blocks()

    def verify(self) -> List[int]:
        """Indices of blocks whose stored payload fails its checksum.

        Free (no charged I/O): like a storage scrubber's metadata pass,
        it compares stored payloads against the recorded checksums via
        :meth:`~repro.core.disk.DiskArray.verify_checksum` without
        transferring blocks into memory.  Returns an empty list when no
        fault plan has been installed (checksums disabled) or every
        block is intact; the caller repairs by rewriting the listed
        blocks.
        """
        if self._deleted:
            raise StreamError(f"block file {self.name!r} has been deleted")
        return [
            index
            for index, block_id in enumerate(self._block_ids)
            if not self.machine.disk.verify_checksum(block_id)
        ]

    def _scan_blocks(self) -> Iterator[Any]:
        runtime = self.machine.runtime
        for block_id in self._block_ids:
            for record in runtime.read_block(block_id):
                yield record

    def _check_frame(self) -> None:
        if self._closed:
            raise StreamError(
                f"block file {self.name!r} is closed (staging frame "
                "released); only block_id/pool access remains"
            )

    def _check_index(self, index: int) -> None:
        if self._deleted:
            raise StreamError(f"block file {self.name!r} has been deleted")
        if not 0 <= index < len(self._block_ids):
            raise StreamError(
                f"block file {self.name!r} has no block {index} "
                f"(has {len(self._block_ids)})"
            )

    @classmethod
    def from_records(
        cls,
        machine: Machine,
        records: Sequence[Any],
        name: str = "",
    ) -> "BlockFile":
        """Build a block file holding ``records`` packed ``B`` per block.

        The caller owns the returned (open) file and must ``close`` or
        ``delete`` it."""
        B = machine.block_size
        num_blocks = (len(records) + B - 1) // B
        block_file = cls(machine, num_blocks, name=name)
        try:
            for index in range(num_blocks):
                block_file.write_block(
                    index, records[index * B:(index + 1) * B]
                )
        except BaseException:
            block_file.delete()
            raise
        return block_file

"""Fixed-size random-access block files.

:class:`~repro.core.stream.FileStream` is append-only; matrix operations
and naive permuting need to *write* blocks in arbitrary order.  A
:class:`BlockFile` is a fixed array of ``n`` blocks addressed by index,
reading and writing directly against the disk (one I/O each).
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence

from .exceptions import ConfigurationError, StreamError
from .machine import Machine


class BlockFile:
    """``num_blocks`` disk blocks addressable by index.

    Args:
        machine: the owning machine.
        num_blocks: number of blocks; fixed for the file's lifetime.
        name: debugging label.
    """

    def __init__(self, machine: Machine, num_blocks: int, name: str = ""):
        if num_blocks < 0:
            raise ConfigurationError(
                f"num_blocks must be >= 0, got {num_blocks}"
            )
        self.machine = machine
        self.name = name
        self._block_ids: List[int] = [
            machine.disk.allocate() for _ in range(num_blocks)
        ]
        self._deleted = False

    @property
    def num_blocks(self) -> int:
        """Number of blocks in the file."""
        return len(self._block_ids)

    def block_id(self, index: int) -> int:
        """The underlying disk block id of block ``index`` (for use with
        the machine's buffer pool)."""
        self._check_index(index)
        return self._block_ids[index]

    def read_block(self, index: int) -> List[Any]:
        """Read block ``index`` (one read I/O)."""
        self._check_index(index)
        return self.machine.disk.read(self._block_ids[index])

    def write_block(self, index: int, records: Sequence[Any]) -> None:
        """Write block ``index`` (one write I/O)."""
        self._check_index(index)
        self.machine.disk.write(self._block_ids[index], records)

    def scan(self) -> Iterator[Any]:
        """Yield every record in block order (one read I/O per block)."""
        budget = self.machine.budget
        budget.acquire(self.machine.block_size)
        try:
            for block_id in self._block_ids:
                for record in self.machine.disk.read(block_id):
                    yield record
        finally:
            budget.release(self.machine.block_size)

    def delete(self) -> None:
        """Free every block; the file becomes unusable."""
        if self._deleted:
            return
        for block_id in self._block_ids:
            self.machine.disk.free(block_id)
        self._block_ids = []
        self._deleted = True

    def _check_index(self, index: int) -> None:
        if self._deleted:
            raise StreamError(f"block file {self.name!r} has been deleted")
        if not 0 <= index < len(self._block_ids):
            raise StreamError(
                f"block file {self.name!r} has no block {index} "
                f"(has {len(self._block_ids)})"
            )

    @classmethod
    def from_records(
        cls,
        machine: Machine,
        records: Sequence[Any],
        name: str = "",
    ) -> "BlockFile":
        """Build a block file holding ``records`` packed ``B`` per block."""
        B = machine.block_size
        num_blocks = (len(records) + B - 1) // B
        block_file = cls(machine, num_blocks, name=name)
        for index in range(num_blocks):
            block_file.write_block(index, records[index * B:(index + 1) * B])
        return block_file

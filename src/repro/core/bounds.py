"""Closed-form theoretical I/O bounds from the survey.

These are the rows of the survey's fundamental-bounds table, expressed as
functions of the model parameters so experiments can print measured-vs-
theory ratios.  Units are block transfers (or parallel I/O steps when
``num_disks > 1``).

Notation (matching the survey): ``N`` problem size in records, ``M``
internal memory in records, ``B`` block size in records, ``D`` number of
disks, ``n = N/B``, ``m = M/B``, ``Z`` output size in records.
"""

from __future__ import annotations

import math

from .exceptions import ConfigurationError


def _check(N: int, M: int, B: int, D: int = 1) -> None:
    if B < 1 or M < B or N < 0 or D < 1:
        raise ConfigurationError(
            f"invalid model parameters N={N}, M={M}, B={B}, D={D}"
        )


def scan_io(N: int, B: int, D: int = 1) -> int:
    """``Scan(N) = ceil(N / (D*B))`` — read N contiguous records."""
    if N == 0:
        return 0
    return math.ceil(math.ceil(N / B) / D)


def merge_passes(N: int, M: int, B: int, fan_in: int = 0) -> int:
    """Number of passes over the data made by external merge sort.

    Run formation is one pass producing ``ceil(N/M)`` runs; each merge pass
    reduces the run count by the fan-in ``m - 1`` (one frame is reserved for
    output), so the total is ``1 + ceil(log_{m-1} ceil(N/M))``.

    Args:
        fan_in: override the merge arity; 0 means use the maximum ``m - 1``.
    """
    _check(N, M, B)
    if N <= M:
        return 1 if N > 0 else 0
    arity = fan_in if fan_in > 0 else max(2, M // B - 1)
    runs = math.ceil(N / M)
    passes = 1
    while runs > 1:
        runs = math.ceil(runs / arity)
        passes += 1
    return passes


def sort_io(N: int, M: int, B: int, D: int = 1, fan_in: int = 0) -> int:
    """``Sort(N) = Θ((N/(D·B)) · log_{M/B}(N/B))`` block transfers.

    Returned as the concrete pass-counting estimate used by external merge
    sort: each pass reads and writes all ``ceil(N/B)`` blocks once, so the
    total is ``2 · ceil(N/(D·B)) · passes``.
    """
    _check(N, M, B, D)
    if N == 0:
        return 0
    return 2 * scan_io(N, B, D) * merge_passes(N, M, B, fan_in)


def search_io(N: int, B: int) -> int:
    """``Search(N) = Θ(log_B N)`` I/Os per point query (B-tree height)."""
    if N <= 1:
        return 1
    return max(1, math.ceil(math.log(N, max(2, B))))


def output_io(N: int, B: int, Z: int, D: int = 1) -> int:
    """``Output = Θ(log_B N + Z/(D·B))`` for a reporting query returning
    ``Z`` records."""
    return search_io(N, B) + scan_io(Z, B, D)


def permute_io(N: int, M: int, B: int, D: int = 1) -> int:
    """``Permute(N) = Θ(min(N/D, Sort(N)))``.

    Moving each record individually costs ``N/D`` I/Os; routing records to
    their targets with a sort costs ``Sort(N)``.  The optimum takes the
    cheaper branch, which is the survey's (counter-intuitive) observation
    that permuting is as hard as sorting unless blocks are tiny.
    """
    _check(N, M, B, D)
    if N == 0:
        return 0
    return min(math.ceil(N / D), sort_io(N, M, B, D))


def transpose_io(p: int, q: int, M: int, B: int, D: int = 1) -> int:
    """Matrix transpose bound for a ``p × q`` matrix (``N = p·q``):
    ``Θ((N/(D·B)) · log_{M/B} min(M, p, q, N/B))``.
    """
    N = p * q
    _check(N, max(M, B), B, D)
    if N == 0:
        return 0
    m = max(2, M // B)
    inner = max(2, min(M, p, q, math.ceil(N / B)))
    factor = max(1, math.ceil(math.log(inner, m)))
    return scan_io(N, B, D) * factor


def buffer_tree_amortized_io(N: int, M: int, B: int) -> float:
    """Amortized I/Os per operation on a buffer tree:
    ``O((1/B) · log_{M/B}(N/B))`` — i.e. ``Sort(N)/N`` up to constants."""
    _check(N, M, B)
    if N == 0:
        return 0.0
    n = max(2.0, N / B)
    m = max(2.0, M / B)
    return math.log(n, m) / B


def list_ranking_io(N: int, M: int, B: int, D: int = 1) -> int:
    """List ranking is ``Θ(Sort(N))`` — a geometric series of sorts over
    shrinking sublists."""
    return sort_io(N, M, B, D)

"""Core substrate: the simulated I/O-model machine.

Public surface:

* :class:`~repro.core.machine.Machine` — configured instance of the model.
* :class:`~repro.core.disk.SimulatedDisk` / :class:`~repro.core.disk.DiskArray`
  — block devices with exact I/O counters.
* :class:`~repro.core.filedisk.FileDiskArray` — the same device backed
  by a real file (identical counters, actual bytes).
* :mod:`~repro.core.records` — typed block payloads (numpy /
  ``array.array`` buffers) with batch sort/permute/serialize helpers.
* :class:`~repro.core.cache.BufferPool` and eviction policies.
* :class:`~repro.core.stream.FileStream` / :class:`~repro.core.stream.StripedStream`
  — sequential record streams.
* :mod:`~repro.core.bounds` — the survey's closed-form I/O bounds.
"""

from .bounds import (
    buffer_tree_amortized_io,
    list_ranking_io,
    merge_passes,
    output_io,
    permute_io,
    scan_io,
    search_io,
    sort_io,
    transpose_io,
)
from .cache import (
    POLICIES,
    BufferPool,
    ClockPolicy,
    EvictionPolicy,
    FIFOPolicy,
    LRUPolicy,
    MinPolicy,
    MRUPolicy,
)
from .blockfile import BlockFile
from .collections import ExternalQueue, ExternalStack
from .disk import DiskArray, SimulatedDisk
from .exceptions import (
    AdmissionError,
    BlockNotAllocatedError,
    BlockOverflowError,
    ConfigurationError,
    DiskError,
    EMError,
    KeyNotFound,
    MemoryLimitExceeded,
    PoolError,
    ShareLimitExceeded,
    StreamError,
)
from .filedisk import FileDiskArray
from .machine import Machine
from .memory import FairShare, MemoryBudget, SubBudget
from .records import (
    BlockBuilder,
    FieldKey,
    argsort,
    canonical_bytes,
    concat,
    copy_payload,
    decode_block,
    encode_block,
    field,
    is_typed,
    key_column,
    key_list,
    take,
)
from .stats import IOCounter, IOStats, Measurement, format_table
from .stream import FileStream, StripedStream

__all__ = [
    "Machine",
    "SimulatedDisk",
    "DiskArray",
    "FileDiskArray",
    "BlockBuilder",
    "FieldKey",
    "argsort",
    "canonical_bytes",
    "concat",
    "copy_payload",
    "decode_block",
    "encode_block",
    "field",
    "is_typed",
    "key_column",
    "key_list",
    "take",
    "BufferPool",
    "EvictionPolicy",
    "LRUPolicy",
    "MRUPolicy",
    "FIFOPolicy",
    "ClockPolicy",
    "MinPolicy",
    "POLICIES",
    "MemoryBudget",
    "FairShare",
    "SubBudget",
    "FileStream",
    "StripedStream",
    "BlockFile",
    "ExternalStack",
    "ExternalQueue",
    "IOCounter",
    "IOStats",
    "Measurement",
    "format_table",
    "scan_io",
    "sort_io",
    "search_io",
    "output_io",
    "permute_io",
    "transpose_io",
    "merge_passes",
    "buffer_tree_amortized_io",
    "list_ranking_io",
    "EMError",
    "ConfigurationError",
    "DiskError",
    "BlockNotAllocatedError",
    "BlockOverflowError",
    "MemoryLimitExceeded",
    "ShareLimitExceeded",
    "AdmissionError",
    "PoolError",
    "StreamError",
    "KeyNotFound",
]

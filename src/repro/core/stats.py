"""I/O statistics: snapshots, deltas, and pretty-printing.

The unit of cost in the I/O model is the *block transfer*.  Every component
of the substrate funnels its transfers through :class:`IOCounter` objects so
that an experiment can take a snapshot before running an algorithm and
report the exact number of reads and writes it caused.

With ``D > 1`` disks the relevant cost is the number of *parallel I/O
steps*: one step moves up to ``D`` blocks, one per disk.  The
:class:`~repro.core.disk.DiskArray` tracks those separately as
``read_steps`` / ``write_steps``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class IOCounter:
    """Mutable tally of block transfers performed by one device.

    Attributes:
        reads: number of blocks transferred from disk to memory.
        writes: number of blocks transferred from memory to disk.
        read_steps: parallel read steps (== ``reads`` on a single disk).
        write_steps: parallel write steps (== ``writes`` on a single disk).
        faults: injected failures observed (transient errors and torn
            writes; see :mod:`repro.faults`).
        retries: transfer attempts re-issued after a transient failure.
        stall_steps: parallel steps during which a disk was busy without
            transferring a block — retry backoff and stuck-slow latency.
    """

    reads: int = 0
    writes: int = 0
    read_steps: int = 0
    write_steps: int = 0
    faults: int = 0
    retries: int = 0
    stall_steps: int = 0

    def snapshot(self) -> "IOStats":
        """Return an immutable copy of the current totals."""
        return IOStats(
            reads=self.reads,
            writes=self.writes,
            read_steps=self.read_steps,
            write_steps=self.write_steps,
            faults=self.faults,
            retries=self.retries,
            stall_steps=self.stall_steps,
        )

    def reset(self) -> None:
        """Zero every counter."""
        self.reads = 0
        self.writes = 0
        self.read_steps = 0
        self.write_steps = 0
        self.faults = 0
        self.retries = 0
        self.stall_steps = 0


@dataclass(frozen=True)
class IOStats:
    """Immutable snapshot of I/O totals, supporting subtraction.

    ``stats_after - stats_before`` yields the I/O performed in between,
    which is how :meth:`repro.core.machine.Machine.measure` reports the
    cost of a measured region.
    """

    reads: int = 0
    writes: int = 0
    read_steps: int = 0
    write_steps: int = 0
    faults: int = 0
    retries: int = 0
    stall_steps: int = 0

    @property
    def total(self) -> int:
        """Total block transfers (reads + writes)."""
        return self.reads + self.writes

    @property
    def total_steps(self) -> int:
        """Total parallel I/O steps (read steps + write steps).

        Stall steps are excluded: they occupy wall-clock on a disk but
        move no blocks, so the model's transfer bounds stay comparable
        with and without fault injection.  Use :attr:`wall_steps` for the
        degraded schedule length."""
        return self.read_steps + self.write_steps

    @property
    def wall_steps(self) -> int:
        """Parallel steps including stalls (backoff and slow-disk
        latency) — the length of the schedule a faulted run actually
        experienced."""
        return self.read_steps + self.write_steps + self.stall_steps

    def __sub__(self, other: "IOStats") -> "IOStats":
        return IOStats(
            reads=self.reads - other.reads,
            writes=self.writes - other.writes,
            read_steps=self.read_steps - other.read_steps,
            write_steps=self.write_steps - other.write_steps,
            faults=self.faults - other.faults,
            retries=self.retries - other.retries,
            stall_steps=self.stall_steps - other.stall_steps,
        )

    def __add__(self, other: "IOStats") -> "IOStats":
        return IOStats(
            reads=self.reads + other.reads,
            writes=self.writes + other.writes,
            read_steps=self.read_steps + other.read_steps,
            write_steps=self.write_steps + other.write_steps,
            faults=self.faults + other.faults,
            retries=self.retries + other.retries,
            stall_steps=self.stall_steps + other.stall_steps,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IOStats(reads={self.reads}, writes={self.writes}, "
            f"total={self.total}, steps={self.total_steps})"
        )


@dataclass
class Measurement:
    """Mutable holder filled in by ``Machine.measure()`` context managers.

    The ``stats`` field is populated when the ``with`` block exits; until
    then it holds an all-zero :class:`IOStats`.
    """

    stats: IOStats = field(default_factory=IOStats)

    @property
    def reads(self) -> int:
        return self.stats.reads

    @property
    def writes(self) -> int:
        return self.stats.writes

    @property
    def read_steps(self) -> int:
        return self.stats.read_steps

    @property
    def write_steps(self) -> int:
        return self.stats.write_steps

    @property
    def total(self) -> int:
        return self.stats.total

    @property
    def total_steps(self) -> int:
        return self.stats.total_steps

    @property
    def faults(self) -> int:
        return self.stats.faults

    @property
    def retries(self) -> int:
        return self.stats.retries

    @property
    def stall_steps(self) -> int:
        return self.stats.stall_steps


def format_table(headers, rows) -> str:
    """Render ``rows`` (sequences of cells) under ``headers`` as an aligned
    plain-text table.  Used by the benchmark harnesses to print the series
    each experiment reproduces.
    """
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        line = "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        lines.append(line)
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)

"""Exception hierarchy for the external-memory substrate.

Every error raised by :mod:`repro` derives from :class:`EMError`, so callers
can catch substrate failures with a single ``except`` clause while still
being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class EMError(Exception):
    """Base class for all errors raised by the external-memory toolkit."""


class ConfigurationError(EMError):
    """A :class:`~repro.core.machine.Machine` was configured inconsistently.

    Examples: non-positive block size, fewer memory frames than the model
    minimum (``M >= 2B``, i.e. at least two frames), or a disk count that is
    not a positive integer.
    """


class DiskError(EMError):
    """Base class for block-device failures."""


class BlockNotAllocatedError(DiskError):
    """A read, write, or free targeted a block id that is not allocated."""

    def __init__(self, block_id: int):
        super().__init__(f"block {block_id} is not allocated")
        self.block_id = block_id


class BlockOverflowError(DiskError):
    """A write attempted to store more records than fit in one block."""

    def __init__(self, block_id: int, size: int, capacity: int):
        super().__init__(
            f"block {block_id}: payload of {size} records exceeds block "
            f"capacity of {capacity}"
        )
        self.block_id = block_id
        self.size = size
        self.capacity = capacity


class TransientIOError(DiskError):
    """A transfer failed in a way that a retry may fix (injected by
    :mod:`repro.faults`).  The attempt charges no transfer; the retry
    machinery charges its backoff as stall steps instead."""

    def __init__(self, op: str, block_id: int, disk: int):
        super().__init__(
            f"transient {op} error on block {block_id} (disk {disk})"
        )
        self.op = op
        self.block_id = block_id
        self.disk = disk


class TransientReadError(TransientIOError):
    """A read transfer failed transiently."""

    def __init__(self, block_id: int, disk: int):
        super().__init__("read", block_id, disk)


class TransientWriteError(TransientIOError):
    """A write transfer failed transiently."""

    def __init__(self, block_id: int, disk: int):
        super().__init__("write", block_id, disk)


class ChecksumError(DiskError):
    """A block's stored payload does not match its recorded checksum.

    This is how a *torn* (partial) write surfaces: the checksum is
    recorded for the intended payload, so reading back the truncated
    data is detected instead of silently returned.  Not transient —
    re-reading the same block cannot repair it; recovery must rewrite
    the block (e.g. re-run the pass that produced it)."""

    def __init__(self, block_id: int):
        super().__init__(
            f"block {block_id}: stored payload does not match its "
            "checksum (torn or corrupt write)"
        )
        self.block_id = block_id


class RetryExhaustedError(DiskError):
    """A transfer kept failing transiently until the
    :class:`~repro.faults.retry.RetryPolicy` ran out of attempts."""

    def __init__(self, attempts: int, last_error: TransientIOError):
        super().__init__(
            f"transfer failed {attempts} time(s); giving up: {last_error}"
        )
        self.attempts = attempts
        self.last_error = last_error


class SimulatedCrash(DiskError):
    """The fault plan simulated a process/machine crash mid-run.

    Deliberately *not* a :class:`TransientIOError`: the retry machinery
    must never swallow it.  Recovery is the caller's job — e.g. invoking
    :func:`repro.faults.checkpoint.checkpointed_merge_sort` again with
    the same manifest."""

    def __init__(self, after_writes: int):
        super().__init__(
            f"simulated crash after {after_writes} write transfer(s)"
        )
        self.after_writes = after_writes


class MemoryLimitExceeded(EMError):
    """An algorithm tried to reserve more working memory than ``M`` records.

    Raised by :class:`~repro.core.memory.MemoryBudget`.  Algorithms in this
    library account for their in-memory working space cooperatively; this
    error firing in a test means the algorithm would have cheated the I/O
    model by holding more than ``M`` records in RAM.
    """

    def __init__(self, requested: int, in_use: int, capacity: int):
        super().__init__(
            f"memory budget exceeded: requested {requested} records with "
            f"{in_use} already in use out of {capacity}"
        )
        self.requested = requested
        self.in_use = in_use
        self.capacity = capacity


class ShareLimitExceeded(MemoryLimitExceeded):
    """A tenant tried to hard-reserve beyond its fair share while
    borrowing was not permitted.

    Raised by :class:`~repro.core.memory.SubBudget`.  Borrowing beyond a
    share is allowed only from capacity other tenants are not using, and
    never while an under-share tenant has registered unmet demand — the
    deficit-aware reclaim rule of the fair-share partition.
    """

    def __init__(self, name: str, requested: int, in_use: int,
                 share: int):
        super().__init__(requested, in_use, share)
        # Override the parent's message with the share-level context.
        self.args = (
            f"share {name!r} exceeded: requested {requested} records "
            f"with {in_use} already in use out of a share of {share} "
            "(borrowing not permitted)",
        )
        self.name = name


class AdmissionError(EMError):
    """The query service refused a job submission outright — the bounded
    admission queue is full (see
    :class:`~repro.service.admission.AdmissionController`)."""


class StreamError(EMError):
    """Misuse of a :class:`~repro.core.stream.FileStream`.

    Examples: appending to a stream that has been finalized for reading, or
    reading a stream that was never finalized.
    """


class PoolError(EMError):
    """Misuse of the buffer pool, e.g. unpinning a frame that is not pinned,
    or requesting a frame when every frame is pinned."""


class KeyNotFound(EMError):
    """A dictionary-style structure (B+-tree, hash table) was asked to
    delete or look up a key that is not present (for APIs that raise
    rather than return a default)."""

    def __init__(self, key):
        super().__init__(f"key not found: {key!r}")
        self.key = key

"""Cooperative accounting of in-memory working space.

The I/O model's central constraint is that an algorithm may hold at most
``M`` records in internal memory at once.  Pure Python cannot enforce this
physically, so algorithms in this library *declare* their working space
through a :class:`MemoryBudget`.  Tests then run algorithms under small
budgets: an algorithm that tried to hold more than ``M`` records (i.e. to
cheat the model) raises :class:`~repro.core.exceptions.MemoryLimitExceeded`
instead of silently producing an unrealistically low I/O count.
"""

from __future__ import annotations

from contextlib import contextmanager

from .exceptions import ConfigurationError, MemoryLimitExceeded


class MemoryBudget:
    """Tracks reserved in-memory records against a hard capacity.

    Args:
        capacity: maximum records resident at once (the model's ``M``).

    Usage::

        budget = MemoryBudget(capacity=4096)
        with budget.reserve(1024):
            ...  # hold up to 1024 records here
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ConfigurationError(
                f"memory capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self.reclaimer = None  # see acquire()
        self._in_use = 0
        self._peak = 0

    @property
    def in_use(self) -> int:
        """Records currently reserved."""
        return self._in_use

    @property
    def peak(self) -> int:
        """High-water mark of reserved records."""
        return self._peak

    @property
    def available(self) -> int:
        """Records that may still be reserved."""
        return self.capacity - self._in_use

    def acquire(self, records: int) -> None:
        """Reserve ``records`` of working space.

        If the reservation would overflow and a ``reclaimer`` callback is
        installed (the machine's runtime: it flushes the write-behind
        window, whose pinned frames are droppable on demand), it is
        invoked once and the reservation retried.

        Raises:
            MemoryLimitExceeded: if the reservation still overflows ``M``.
        """
        if records < 0:
            raise ConfigurationError("cannot acquire a negative reservation")
        if self._in_use + records > self.capacity and \
                self.reclaimer is not None:
            self.reclaimer()
        if self._in_use + records > self.capacity:
            raise MemoryLimitExceeded(records, self._in_use, self.capacity)
        self._in_use += records
        self._peak = max(self._peak, self._in_use)

    def release(self, records: int) -> None:
        """Return ``records`` of working space to the budget."""
        if records < 0:
            raise ConfigurationError("cannot release a negative reservation")
        if records > self._in_use:
            raise ConfigurationError(
                f"releasing {records} records but only {self._in_use} in use"
            )
        self._in_use -= records

    @contextmanager
    def reserve(self, records: int):
        """Context manager combining :meth:`acquire` and :meth:`release`."""
        self.acquire(records)
        try:
            yield
        finally:
            self.release(records)

    def reset(self) -> None:
        """Clear all reservations and the peak (between experiments)."""
        self._in_use = 0
        self._peak = 0

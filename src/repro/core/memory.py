"""Cooperative accounting of in-memory working space.

The I/O model's central constraint is that an algorithm may hold at most
``M`` records in internal memory at once.  Pure Python cannot enforce this
physically, so algorithms in this library *declare* their working space
through a :class:`MemoryBudget`.  Tests then run algorithms under small
budgets: an algorithm that tried to hold more than ``M`` records (i.e. to
cheat the model) raises :class:`~repro.core.exceptions.MemoryLimitExceeded`
instead of silently producing an unrealistically low I/O count.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Optional

from .exceptions import (
    ConfigurationError,
    MemoryLimitExceeded,
    ShareLimitExceeded,
)


class MemoryBudget:
    """Tracks reserved in-memory records against a hard capacity.

    Args:
        capacity: maximum records resident at once (the model's ``M``).

    Usage::

        budget = MemoryBudget(capacity=4096)
        with budget.reserve(1024):
            ...  # hold up to 1024 records here

    The ledger has two columns.  :attr:`in_use` is *hard* working space —
    records an algorithm (or a pinned staging frame) is actively using,
    which only the owner can give back.  :attr:`reclaimable` is space the
    installed ``reclaimer`` can free on demand: the buffer pool's cached
    frames.  Their sum, :attr:`occupancy`, is what physically sits in
    memory and can never exceed ``capacity`` — structures plus algorithms
    share one ``M``.  :attr:`available` deliberately ignores the
    reclaimable column: an algorithm sizing its memoryloads sees the full
    machine, and its ``acquire`` evicts cached frames to make room.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ConfigurationError(
                f"memory capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self.reclaimer = None  # see acquire()
        self._in_use = 0
        self._reclaimable = 0
        self._peak = 0
        self._reclaiming = False

    @property
    def in_use(self) -> int:
        """Records hard-reserved (algorithm working space and pinned
        frames; cached pool frames are in :attr:`reclaimable` instead)."""
        return self._in_use

    @property
    def reclaimable(self) -> int:
        """Records the reclaimer can free on demand (the buffer pool's
        unpinned cached frames)."""
        return self._reclaimable

    @property
    def occupancy(self) -> int:
        """Records physically resident: ``in_use + reclaimable``.  The
        hard ``M`` constraint is enforced on this sum."""
        return self._in_use + self._reclaimable

    @property
    def peak(self) -> int:
        """High-water mark of :attr:`occupancy`."""
        return self._peak

    @property
    def available(self) -> int:
        """Records an algorithm may still hard-reserve.  Reclaimable
        (cached) space counts as free here — acquiring it evicts the
        cache on demand."""
        return self.capacity - self._in_use

    def acquire(self, records: int, reclaimable: bool = False) -> None:
        """Reserve ``records`` of working space.

        If the reservation would overflow ``capacity`` and a
        ``reclaimer`` callback is installed (the machine's runtime: it
        flushes the write-behind window and shrinks the buffer pool,
        clean frames first), it is invoked once with the record deficit
        and the reservation retried.

        Args:
            reclaimable: book the reservation in the reclaimable column
                (buffer-pool cached frames) instead of hard working
                space; see the class docstring.

        Raises:
            MemoryLimitExceeded: if the reservation still overflows ``M``.
        """
        if records < 0:
            raise ConfigurationError("cannot acquire a negative reservation")
        if self.occupancy + records > self.capacity and \
                self.reclaimer is not None and not self._reclaiming:
            self._reclaiming = True
            try:
                self.reclaimer(self.occupancy + records - self.capacity)
            finally:
                self._reclaiming = False
        if self.occupancy + records > self.capacity:
            raise MemoryLimitExceeded(records, self.occupancy, self.capacity)
        if reclaimable:
            self._reclaimable += records
        else:
            self._in_use += records
        self._peak = max(self._peak, self.occupancy)

    def release(self, records: int, reclaimable: bool = False) -> None:
        """Return ``records`` of working space to the budget."""
        if records < 0:
            raise ConfigurationError("cannot release a negative reservation")
        if reclaimable:
            if records > self._reclaimable:
                raise ConfigurationError(
                    f"releasing {records} reclaimable records but only "
                    f"{self._reclaimable} are reclaimable"
                )
            self._reclaimable -= records
            return
        if records > self._in_use:
            raise ConfigurationError(
                f"releasing {records} records but only {self._in_use} in use"
            )
        self._in_use -= records

    def harden(self, records: int) -> None:
        """Move ``records`` from the reclaimable column to hard working
        space (a pool frame being pinned: the reclaimer may no longer
        evict it).  Occupancy is unchanged."""
        if records > self._reclaimable:
            raise ConfigurationError(
                f"hardening {records} records but only "
                f"{self._reclaimable} are reclaimable"
            )
        self._reclaimable -= records
        self._in_use += records

    def soften(self, records: int) -> None:
        """Move ``records`` from hard working space back to the
        reclaimable column (a pool frame's last pin released)."""
        if records > self._in_use:
            raise ConfigurationError(
                f"softening {records} records but only {self._in_use} "
                "are hard-reserved"
            )
        self._in_use -= records
        self._reclaimable += records

    @contextmanager
    def reserve(self, records: int):
        """Context manager combining :meth:`acquire` and :meth:`release`."""
        self.acquire(records)
        try:
            yield
        finally:
            self.release(records)

    def reset(self) -> None:
        """Clear hard reservations and the peak (between experiments).
        The reclaimable column is left alone: the buffer pool still
        holds its cached frames and keeps its own books."""
        self._in_use = 0
        self._peak = self._reclaimable


class SubBudget:
    """One tenant's slice of a parent :class:`MemoryBudget`.

    A sub-budget is a *ledger over a ledger*: every ``acquire`` both
    charges the parent (so the machine-wide ``M`` stays enforced, and
    the parent's reclaimer can still evict cache to make room) and
    tallies the tenant's own hard use against its fair share.  Created
    by :meth:`FairShare.add_share`, never directly.

    Two rules connect the shares:

    * **Hard floor** — a tenant reserving at or below its share is never
      refused by the partition (only by the physical ``M``, which the
      parent's reclaimer defends by evicting reclaimable cache).
    * **Deficit-aware borrowing** — reserving *beyond* the share is
      allowed only out of capacity other tenants are not using, and
      never while any under-share tenant has registered unmet demand
      (see :meth:`FairShare.register_demand`); an over-share tenant is
      then refused with
      :class:`~repro.core.exceptions.ShareLimitExceeded` until the
      borrowers drain.
    """

    def __init__(self, fair: "FairShare", name: str):
        self._fair = fair
        self.name = name
        self._in_use = 0
        self._peak = 0

    @property
    def capacity(self) -> int:
        """The share's current fair capacity in records (recomputed when
        shares are added or removed; the capacities always sum to the
        parent's ``M``)."""
        return self._fair.capacity_of(self.name)

    @property
    def in_use(self) -> int:
        """Records this tenant has hard-reserved through the share."""
        return self._in_use

    @property
    def peak(self) -> int:
        """High-water mark of :attr:`in_use`."""
        return self._peak

    @property
    def available(self) -> int:
        """Records still reservable without borrowing (0 when the
        tenant is at or over its share)."""
        return max(0, self.capacity - self._in_use)

    @property
    def borrowed(self) -> int:
        """Records held beyond the share (0 when within it)."""
        return max(0, self._in_use - self.capacity)

    def headroom(self) -> int:
        """Records an :class:`~repro.service.admission.AdmissionController`
        may promise this tenant right now: the unreserved share plus
        whatever borrowing the fair-share rules currently permit."""
        return self.available + self._fair.borrowable(self.name)

    def acquire(self, records: int) -> None:
        """Hard-reserve ``records`` for this tenant.

        Raises:
            ShareLimitExceeded: the reservation overflows the share and
                borrowing is not permitted (spare capacity is committed,
                or an under-share tenant has registered demand).
            MemoryLimitExceeded: the parent budget is physically full
                even after reclaim.
        """
        if records < 0:
            raise ConfigurationError("cannot acquire a negative reservation")
        overshoot = self._in_use + records - self.capacity
        if overshoot > 0 and not self._fair.may_borrow(self.name, overshoot):
            raise ShareLimitExceeded(
                self.name, records, self._in_use, self.capacity
            )
        self._fair.budget.acquire(records)
        self._in_use += records
        self._peak = max(self._peak, self._in_use)

    def release(self, records: int) -> None:
        """Return ``records`` to the share (and the parent budget)."""
        if records < 0:
            raise ConfigurationError("cannot release a negative reservation")
        if records > self._in_use:
            raise ConfigurationError(
                f"share {self.name!r}: releasing {records} records but "
                f"only {self._in_use} in use"
            )
        self._fair.budget.release(records)
        self._in_use -= records

    @contextmanager
    def reserve(self, records: int):
        """Context manager combining :meth:`acquire` and :meth:`release`."""
        self.acquire(records)
        try:
            yield
        finally:
            self.release(records)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SubBudget({self.name!r}, in_use={self._in_use}, "
            f"share={self.capacity})"
        )


class FairShare:
    """Weighted partition of one :class:`MemoryBudget` across tenants.

    The partition is exact: share capacities are ``capacity·w_i/W``
    rounded by largest remainder (ties broken by insertion order), so
    they always sum to the parent's capacity — no record of ``M`` is
    unowned, and no phantom record exists for two tenants to both
    count on.

    Usage::

        fair = FairShare(machine.budget)
        oltp = fair.add_share("oltp", weight=2)
        olap = fair.add_share("olap", weight=1)
        with oltp.reserve(512):
            ...

    Demand registration makes reclaim *deficit-aware*: when an
    under-share tenant's job cannot be admitted because others borrowed
    its capacity, the admission layer registers the unmet demand, which
    immediately stops further borrowing until the deficit clears.
    """

    def __init__(self, budget: MemoryBudget):
        self.budget = budget
        self._weights: Dict[str, int] = {}
        self._capacities: Dict[str, int] = {}
        self._shares: Dict[str, SubBudget] = {}
        self._demand: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # shares
    # ------------------------------------------------------------------
    def add_share(self, name: str, weight: int = 1) -> SubBudget:
        """Create the share ``name`` with the given integer weight and
        recompute every share's capacity."""
        if name in self._shares:
            raise ConfigurationError(f"share {name!r} already exists")
        if weight < 1:
            raise ConfigurationError(
                f"share weight must be >= 1, got {weight}"
            )
        share = SubBudget(self, name)
        self._weights[name] = weight
        self._shares[name] = share
        self._recompute()
        return share

    def remove_share(self, name: str) -> None:
        """Remove an empty share, returning its capacity to the rest."""
        share = self._require(name)
        if share.in_use:
            raise ConfigurationError(
                f"share {name!r} still has {share.in_use} records in use"
            )
        del self._weights[name]
        del self._shares[name]
        del self._capacities[name]
        self._demand.pop(name, None)
        self._recompute()

    def share(self, name: str) -> SubBudget:
        """The :class:`SubBudget` registered under ``name``."""
        return self._require(name)

    @property
    def shares(self) -> Dict[str, SubBudget]:
        """Read-only view of the registered shares by name."""
        return dict(self._shares)

    def capacity_of(self, name: str) -> int:
        """Current fair capacity of share ``name`` in records."""
        self._require(name)
        return self._capacities[name]

    def _recompute(self) -> None:
        """Largest-remainder apportionment of the parent capacity."""
        if not self._weights:
            self._capacities = {}
            return
        total_weight = sum(self._weights.values())
        capacity = self.budget.capacity
        floors: Dict[str, int] = {}
        remainders = []
        for name, weight in self._weights.items():
            exact = capacity * weight
            floors[name] = exact // total_weight
            remainders.append((-(exact % total_weight), len(remainders),
                               name))
        leftover = capacity - sum(floors.values())
        for _, _, name in sorted(remainders)[:leftover]:
            floors[name] += 1
        self._capacities = floors

    def _require(self, name: str) -> SubBudget:
        try:
            return self._shares[name]
        except KeyError:
            raise ConfigurationError(f"no share named {name!r}") from None

    # ------------------------------------------------------------------
    # borrowing & deficit-aware demand
    # ------------------------------------------------------------------
    def idle_capacity(self, excluding: Optional[str] = None) -> int:
        """Records of share capacity their owners are not hard-using
        (the pool borrowers may draw from)."""
        return sum(
            share.available
            for name, share in self._shares.items()
            if name != excluding
        )

    def outstanding_borrow(self, excluding: Optional[str] = None) -> int:
        """Records currently held beyond their owners' shares."""
        return sum(
            share.borrowed
            for name, share in self._shares.items()
            if name != excluding
        )

    def has_deficit(self, excluding: Optional[str] = None) -> bool:
        """Whether any under-share tenant has registered demand it could
        not meet — the signal that stops further borrowing."""
        for name, records in self._demand.items():
            if name == excluding or records <= 0:
                continue
            share = self._shares.get(name)
            if share is not None and share.in_use < share.capacity:
                return True
        return False

    def may_borrow(self, name: str, overshoot: int) -> bool:
        """Whether share ``name`` may go ``overshoot`` records beyond
        its capacity right now: only out of other tenants' idle
        capacity (net of what is already borrowed), and never while an
        under-share tenant has registered unmet demand."""
        if self.has_deficit(excluding=name):
            return False
        spare = self.idle_capacity(excluding=name) \
            - self.outstanding_borrow(excluding=name)
        return overshoot <= spare

    def borrowable(self, name: str) -> int:
        """Records share ``name`` could borrow right now (0 while any
        other tenant runs a deficit)."""
        if self.has_deficit(excluding=name):
            return 0
        return max(0, self.idle_capacity(excluding=name)
                   - self.outstanding_borrow(excluding=name))

    def register_demand(self, name: str, records: int) -> None:
        """Record that tenant ``name`` has ``records`` of demand it
        could not reserve (a queued job).  While an under-share tenant
        has demand registered, no tenant may borrow further."""
        self._require(name)
        if records < 0:
            raise ConfigurationError("demand cannot be negative")
        self._demand[name] = records

    def clear_demand(self, name: str) -> None:
        """Drop tenant ``name``'s registered demand."""
        self._demand.pop(name, None)

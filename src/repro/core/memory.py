"""Cooperative accounting of in-memory working space.

The I/O model's central constraint is that an algorithm may hold at most
``M`` records in internal memory at once.  Pure Python cannot enforce this
physically, so algorithms in this library *declare* their working space
through a :class:`MemoryBudget`.  Tests then run algorithms under small
budgets: an algorithm that tried to hold more than ``M`` records (i.e. to
cheat the model) raises :class:`~repro.core.exceptions.MemoryLimitExceeded`
instead of silently producing an unrealistically low I/O count.
"""

from __future__ import annotations

from contextlib import contextmanager

from .exceptions import ConfigurationError, MemoryLimitExceeded


class MemoryBudget:
    """Tracks reserved in-memory records against a hard capacity.

    Args:
        capacity: maximum records resident at once (the model's ``M``).

    Usage::

        budget = MemoryBudget(capacity=4096)
        with budget.reserve(1024):
            ...  # hold up to 1024 records here

    The ledger has two columns.  :attr:`in_use` is *hard* working space —
    records an algorithm (or a pinned staging frame) is actively using,
    which only the owner can give back.  :attr:`reclaimable` is space the
    installed ``reclaimer`` can free on demand: the buffer pool's cached
    frames.  Their sum, :attr:`occupancy`, is what physically sits in
    memory and can never exceed ``capacity`` — structures plus algorithms
    share one ``M``.  :attr:`available` deliberately ignores the
    reclaimable column: an algorithm sizing its memoryloads sees the full
    machine, and its ``acquire`` evicts cached frames to make room.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ConfigurationError(
                f"memory capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self.reclaimer = None  # see acquire()
        self._in_use = 0
        self._reclaimable = 0
        self._peak = 0
        self._reclaiming = False

    @property
    def in_use(self) -> int:
        """Records hard-reserved (algorithm working space and pinned
        frames; cached pool frames are in :attr:`reclaimable` instead)."""
        return self._in_use

    @property
    def reclaimable(self) -> int:
        """Records the reclaimer can free on demand (the buffer pool's
        unpinned cached frames)."""
        return self._reclaimable

    @property
    def occupancy(self) -> int:
        """Records physically resident: ``in_use + reclaimable``.  The
        hard ``M`` constraint is enforced on this sum."""
        return self._in_use + self._reclaimable

    @property
    def peak(self) -> int:
        """High-water mark of :attr:`occupancy`."""
        return self._peak

    @property
    def available(self) -> int:
        """Records an algorithm may still hard-reserve.  Reclaimable
        (cached) space counts as free here — acquiring it evicts the
        cache on demand."""
        return self.capacity - self._in_use

    def acquire(self, records: int, reclaimable: bool = False) -> None:
        """Reserve ``records`` of working space.

        If the reservation would overflow ``capacity`` and a
        ``reclaimer`` callback is installed (the machine's runtime: it
        flushes the write-behind window and shrinks the buffer pool,
        clean frames first), it is invoked once with the record deficit
        and the reservation retried.

        Args:
            reclaimable: book the reservation in the reclaimable column
                (buffer-pool cached frames) instead of hard working
                space; see the class docstring.

        Raises:
            MemoryLimitExceeded: if the reservation still overflows ``M``.
        """
        if records < 0:
            raise ConfigurationError("cannot acquire a negative reservation")
        if self.occupancy + records > self.capacity and \
                self.reclaimer is not None and not self._reclaiming:
            self._reclaiming = True
            try:
                self.reclaimer(self.occupancy + records - self.capacity)
            finally:
                self._reclaiming = False
        if self.occupancy + records > self.capacity:
            raise MemoryLimitExceeded(records, self.occupancy, self.capacity)
        if reclaimable:
            self._reclaimable += records
        else:
            self._in_use += records
        self._peak = max(self._peak, self.occupancy)

    def release(self, records: int, reclaimable: bool = False) -> None:
        """Return ``records`` of working space to the budget."""
        if records < 0:
            raise ConfigurationError("cannot release a negative reservation")
        if reclaimable:
            if records > self._reclaimable:
                raise ConfigurationError(
                    f"releasing {records} reclaimable records but only "
                    f"{self._reclaimable} are reclaimable"
                )
            self._reclaimable -= records
            return
        if records > self._in_use:
            raise ConfigurationError(
                f"releasing {records} records but only {self._in_use} in use"
            )
        self._in_use -= records

    def harden(self, records: int) -> None:
        """Move ``records`` from the reclaimable column to hard working
        space (a pool frame being pinned: the reclaimer may no longer
        evict it).  Occupancy is unchanged."""
        if records > self._reclaimable:
            raise ConfigurationError(
                f"hardening {records} records but only "
                f"{self._reclaimable} are reclaimable"
            )
        self._reclaimable -= records
        self._in_use += records

    def soften(self, records: int) -> None:
        """Move ``records`` from hard working space back to the
        reclaimable column (a pool frame's last pin released)."""
        if records > self._in_use:
            raise ConfigurationError(
                f"softening {records} records but only {self._in_use} "
                "are hard-reserved"
            )
        self._in_use -= records
        self._reclaimable += records

    @contextmanager
    def reserve(self, records: int):
        """Context manager combining :meth:`acquire` and :meth:`release`."""
        self.acquire(records)
        try:
            yield
        finally:
            self.release(records)

    def reset(self) -> None:
        """Clear hard reservations and the peak (between experiments).
        The reclaimable column is left alone: the buffer pool still
        holds its cached frames and keeps its own books."""
        self._in_use = 0
        self._peak = self._reclaimable

"""Sequential record streams over the simulated disk.

Streams are the workhorse of every batched algorithm (sorting, joins, graph
contraction): write-once, read-many sequences of records stored in full
blocks.  A stream writer buffers up to ``B`` records (one frame of internal
memory, accounted against the machine's budget) and emits one write I/O per
full block; a reader holds one frame and costs one read I/O per block.

:class:`StripedStream` additionally stripes its blocks round-robin over the
machine's ``D`` disks and transfers ``D`` blocks per parallel I/O step, the
"disk striping" technique the survey describes for the Parallel Disk Model.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional, Sequence

from ..runtime.prefetch import read_ahead
from .exceptions import StreamError
from .machine import Machine
from .records import concat


class FileStream:
    """A write-once, read-many sequence of records on the simulated disk.

    Typical usage::

        out = FileStream(machine, name="runs/0")
        for record in data:
            out.append(record)
        out.finalize()
        for record in out:           # costs ceil(len/B) read I/Os
            ...

    Args:
        machine: the machine whose disk and memory budget the stream uses.
        name: optional label for debugging and error messages.
    """

    def __init__(self, machine: Machine, name: str = ""):
        self.machine = machine
        self.name = name
        self._block_ids: List[int] = []
        self._buffer: List[Any] = []
        self._buffer_reserved = False
        self._writer_reserve = machine.block_size
        self._length = 0
        self._finalized = False
        self._deleted = False
        self._stripe_offset = machine.disk.stripe_offset()

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(self, record: Any) -> None:
        """Append one record, flushing a block write when the buffer fills."""
        self._check_writable()
        if not self._buffer_reserved:
            self.machine.budget.acquire(self._writer_reserve)
            self._buffer_reserved = True
        self._buffer.append(record)
        self._length += 1
        if len(self._buffer) == self.machine.block_size:
            self._flush_buffer()

    def extend(self, records: Iterable[Any]) -> None:
        """Append every record of ``records`` in order."""
        for record in records:
            self.append(record)

    def append_block(self, records: Sequence[Any]) -> None:
        """Write ``records`` (at most ``B``) directly as one block.

        Unlike :meth:`append`, no staging buffer is used and no memory is
        reserved — the caller already holds the records and has accounted
        for them (e.g. a sorted memoryload during run formation).  Only
        allowed while the record buffer is empty, so blocks are never
        interleaved with buffered records.
        """
        self._check_writable()
        if self._buffer:
            raise StreamError(
                f"stream {self.name!r}: append_block while records are "
                "buffered would reorder data"
            )
        if len(records) > self.machine.block_size:
            raise StreamError(
                f"stream {self.name!r}: append_block of {len(records)} "
                f"records exceeds block size {self.machine.block_size}"
            )
        if len(records) == 0:  # ndarray truthiness is ambiguous
            return
        block_id = self._allocate_block(len(self._block_ids))
        # Record the id before the (faultable) write: if the write dies,
        # delete() still reclaims the allocated block.
        self._block_ids.append(block_id)
        # No defensive copy here: every holder downstream (the deferral
        # window, the device store) makes its own owning copy, so one
        # more per block would protect nothing.
        self._write_block(block_id, records)
        self._length += len(records)

    def append_blocks(self, payloads: Sequence[Sequence[Any]]) -> None:
        """Append several completed blocks in one runtime pass.

        The same contract as :meth:`append_block` per payload, but the
        writes reach the scheduler as one batch — identical transfer
        and step counts, one queue pass instead of one per block.  The
        caller already holds every payload (a sorted memoryload), so
        batching costs no extra frames.
        """
        self._check_writable()
        if self._buffer:
            raise StreamError(
                f"stream {self.name!r}: append_blocks while records are "
                "buffered would reorder data"
            )
        block_size = self.machine.block_size
        writes = []
        total = 0
        for records in payloads:
            count = len(records)
            if count > block_size:
                raise StreamError(
                    f"stream {self.name!r}: append_blocks payload of "
                    f"{count} records exceeds block size {block_size}"
                )
            if count == 0:  # ndarray truthiness is ambiguous
                continue
            block_id = self._allocate_block(len(self._block_ids))
            # Ids are recorded before the (faultable) writes: if the
            # batch dies part-way, delete() reclaims every allocation.
            self._block_ids.append(block_id)
            writes.append((block_id, records))
            total += count
        if writes:
            self.machine.runtime.writer.put_batch(writes)
            self._length += total

    @classmethod
    def writer_frames(cls, machine: Machine) -> int:
        """Frames a writer of this stream class will reserve (1 here;
        ``D`` for :class:`StripedStream`) — lets schedulers plan arity
        and staging around the writer's budget before it is acquired."""
        return 1

    @classmethod
    def reader_frames(cls, machine: Machine) -> int:
        """Frames a reader of this stream class will reserve (1 here;
        ``D`` for :class:`StripedStream`)."""
        return 1

    def reserve_writer(self) -> None:
        """Acquire the writer's staging reservation now instead of on the
        first :meth:`append`.

        Idempotent.  Callers that also make opportunistic reservations
        (the merge's prefetch pins) reserve the writer first so a pinned
        frame can never starve it.  Released by :meth:`finalize`,
        :meth:`sync`, or :meth:`delete` as usual.
        """
        self._check_writable()
        if not self._buffer_reserved:
            self.machine.budget.acquire(self._writer_reserve)
            self._buffer_reserved = True

    def sync(self) -> None:
        """Flush the staging buffer and release its memory frame while
        keeping the stream writable.

        A partially filled block is written out as a *short block* (fewer
        than ``B`` records); later appends start a fresh block.  Useful for
        long-lived buffers (e.g. buffer-tree node buffers) that must not
        hold a memory frame between batches.  Costs at most one write I/O.
        """
        self._check_writable()
        if self._buffer:
            self._flush_buffer()
        if self._buffer_reserved:
            self.machine.budget.release(self._writer_reserve)
            self._buffer_reserved = False

    def finalize(self) -> "FileStream":
        """Flush any partial block and switch the stream to read-only mode.

        Idempotent; returns ``self`` for chaining.
        """
        if self._deleted:
            raise StreamError(f"stream {self.name!r} has been deleted")
        if self._finalized:
            return self
        if self._buffer:
            self._flush_buffer()
        if self._buffer_reserved:
            self.machine.budget.release(self._writer_reserve)
            self._buffer_reserved = False
        self._finalized = True
        runtime = self.machine._runtime
        if runtime is not None:
            # Deferred write-behind blocks must hit the disk before the
            # stream is read (and before their pinned frames leak past
            # the algorithm that wrote them).
            runtime.writer.flush()
        return self

    def _flush_buffer(self) -> None:
        block_id = self._allocate_block(len(self._block_ids))
        # As in append_block: record before writing so a faulted write
        # cannot orphan the allocated block.
        self._block_ids.append(block_id)
        self._write_block(block_id, self._buffer)
        self._buffer = []

    def _allocate_block(self, index: int) -> int:
        # Consecutive blocks cycle the disks from a per-stream staggered
        # start, so concurrently consumed streams (e.g. merge runs) do
        # not contend for the same disk on their i-th block.
        return self.machine.disk.allocate(
            (index + self._stripe_offset) % self.machine.num_disks
        )

    def _write_block(self, block_id: int,
                     records: Sequence[Any]) -> None:
        # Completed blocks go through the runtime's write-behind buffer:
        # on one disk it writes through immediately (identical counts);
        # with D disks it defers until D blocks can share one step.
        self.machine.runtime.writer.put(block_id, records)

    def _check_writable(self) -> None:
        if self._deleted:
            raise StreamError(f"stream {self.name!r} has been deleted")
        if self._finalized:
            raise StreamError(
                f"stream {self.name!r} is finalized and read-only"
            )

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Any]:
        """Iterate all records, costing one read I/O per block.

        The reader reserves one frame (``B`` records) from the memory budget
        for its lifetime and releases it when exhausted or closed.
        """
        if self._deleted:
            raise StreamError(f"stream {self.name!r} has been deleted")
        if not self._finalized:
            raise StreamError(
                f"stream {self.name!r} must be finalized before reading"
            )
        return self._reader()

    def _reader(self) -> Iterator[Any]:
        for payload in self._block_reader():
            for record in payload:
                yield record

    def iter_blocks(self) -> Iterator[Sequence[Any]]:
        """Iterate whole block payloads (one read I/O each), preserving
        their representation — the batch consumer's counterpart of
        ``__iter__``.  Reserves one frame for its lifetime, exactly like
        a record reader."""
        if self._deleted:
            raise StreamError(f"stream {self.name!r} has been deleted")
        if not self._finalized:
            raise StreamError(
                f"stream {self.name!r} must be finalized before reading"
            )
        return self._block_reader()

    def _block_reader(self) -> Iterator[Sequence[Any]]:
        budget = self.machine.budget
        budget.acquire(self.machine.block_size)
        try:
            # Sequential scans know their future: read_ahead batches each
            # demanded block with successors on idle disks (no-op at D=1).
            for payload in read_ahead(self.machine.runtime,
                                      self._block_ids):
                yield payload
        finally:
            budget.release(self.machine.block_size)

    def read_block(self, index: int) -> Sequence[Any]:
        """Random-access read of the ``index``-th block (one read I/O)."""
        if not 0 <= index < len(self._block_ids):
            raise StreamError(
                f"stream {self.name!r} has no block {index} "
                f"(has {len(self._block_ids)})"
            )
        return self.machine.runtime.read_block(self._block_ids[index])

    def read_block_range(self, start: int, stop: int) -> Sequence[Any]:
        """Read blocks ``start..stop-1`` and return their records
        concatenated, batching ``D`` blocks per parallel I/O step.

        On a single-disk machine this is equivalent to ``stop - start``
        :meth:`read_block` calls; with ``D`` disks and striped layout it
        takes ``~(stop - start)/D`` steps.  The caller must have reserved
        memory for the returned records.
        """
        if not 0 <= start <= stop <= len(self._block_ids):
            raise StreamError(
                f"stream {self.name!r}: block range [{start}, {stop}) "
                f"invalid (has {len(self._block_ids)})"
            )
        parts: List[Sequence[Any]] = []
        group = self.machine.num_disks
        runtime = self.machine.runtime
        for batch_start in range(start, stop, group):
            batch = self._block_ids[batch_start:min(batch_start + group,
                                                    stop)]
            for payload in runtime.read_batch(batch):
                parts.append(payload)
        # Representation-preserving concatenation: typed blocks come back
        # as one typed memoryload, ready for a batch argsort.
        return concat(parts)

    def __len__(self) -> int:
        """Number of records in the stream (including unflushed ones)."""
        return self._length

    @property
    def num_blocks(self) -> int:
        """Number of full blocks written so far."""
        return len(self._block_ids)

    @property
    def block_ids(self) -> tuple:
        """The stream's block ids in order (read-only) — what the
        runtime's prefetchers schedule over."""
        if self._deleted:
            raise StreamError(f"stream {self.name!r} has been deleted")
        return tuple(self._block_ids)

    @property
    def is_finalized(self) -> bool:
        """Whether the stream has been switched to read-only mode."""
        return self._finalized

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def delete(self) -> None:
        """Free every block of the stream.  The stream becomes unusable."""
        if self._deleted:
            return
        if self._buffer_reserved:
            self.machine.budget.release(self._writer_reserve)
            self._buffer_reserved = False
        runtime = self.machine._runtime
        if runtime is not None:
            # Writing a deferred block after its id is freed (and maybe
            # reused) would corrupt another stream: drop, don't flush.
            runtime.writer.discard(self._block_ids)
        for block_id in self._block_ids:
            self.machine.disk.free(block_id)
        self._block_ids = []
        self._buffer = []
        self._deleted = True

    @classmethod
    def from_records(
        cls, machine: Machine, records: Iterable[Any], name: str = ""
    ) -> "FileStream":
        """Build and finalize a stream holding ``records``."""
        stream = cls(machine, name=name)
        stream.extend(records)
        return stream.finalize()

    @classmethod
    def from_payload(
        cls, machine: Machine, payload: Sequence[Any], name: str = ""
    ) -> "FileStream":
        """Build and finalize a stream from a whole payload, cut into
        ``B``-record blocks with :meth:`append_block` — the typed
        counterpart of :meth:`from_records` (an ndarray payload lands as
        compact ndarray blocks)."""
        stream = cls(machine, name=name)
        block_size = machine.block_size
        for start in range(0, len(payload), block_size):
            stream.append_block(payload[start:start + block_size])
        return stream.finalize()

    @classmethod
    def adopt(
        cls,
        machine: Machine,
        block_ids: Sequence[int],
        length: int,
        name: str = "",
    ) -> "FileStream":
        """Rebuild a finalized stream handle over blocks already on disk.

        The recovery path: a checkpoint manifest records a run as its
        block ids and record count; resuming reconstructs the handle
        without re-reading or re-writing anything (and therefore free of
        I/O).  Every block must still be allocated.
        """
        for block_id in block_ids:
            if not machine.disk.is_allocated(block_id):
                raise StreamError(
                    f"cannot adopt stream {name!r}: block {block_id} "
                    "is not allocated"
                )
        stream = cls(machine, name=name)
        stream._block_ids = list(block_ids)
        stream._length = length
        stream._finalized = True
        return stream

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "deleted" if self._deleted else (
            "finalized" if self._finalized else "writable"
        )
        return (
            f"{type(self).__name__}(name={self.name!r}, len={self._length}, "
            f"blocks={len(self._block_ids)}, {state})"
        )


class StripedStream(FileStream):
    """A stream striped round-robin across the machine's ``D`` disks.

    Writes are batched ``D`` blocks at a time and issued with
    :meth:`~repro.core.disk.DiskArray.parallel_write`; reads fetch ``D``
    consecutive blocks per parallel I/O step.  A full scan therefore costs
    ``ceil(n/D)`` steps instead of ``n`` — the survey's "disk striping"
    technique.  Both writer and reader reserve ``D`` frames of memory
    instead of one.
    """

    def __init__(self, machine: Machine, name: str = ""):
        super().__init__(machine, name)
        self._pending: List[tuple] = []
        self._writer_reserve = machine.block_size * machine.num_disks

    @classmethod
    def writer_frames(cls, machine: Machine) -> int:
        """A striped writer stages one block per disk: ``D`` frames."""
        return machine.num_disks

    @classmethod
    def reader_frames(cls, machine: Machine) -> int:
        """A striped reader holds one stripe: ``D`` frames."""
        return machine.num_disks

    def _write_block(self, block_id: int,
                     records: Sequence[Any]) -> None:
        self._pending.append((block_id, records))
        if len(self._pending) >= self.machine.num_disks:
            self._drain_pending()

    def append_blocks(self, payloads: Sequence[Sequence[Any]]) -> None:
        # Striped writes already batch per stripe in _write_block;
        # route through the per-block path so that staging (and its
        # step accounting) stays authoritative.
        for records in payloads:
            self.append_block(records)

    def _drain_pending(self) -> None:
        if self._pending:
            # One wave per disk-distinct group: D striped blocks = 1 step.
            self.machine.runtime.scheduler.write_batch(self._pending)
            self._pending = []

    def finalize(self) -> "StripedStream":
        if not self._finalized:
            super().finalize()
            self._drain_pending()
        return self

    def _block_reader(self) -> Iterator[Sequence[Any]]:
        machine = self.machine
        group = machine.num_disks
        reserve = machine.block_size * max(
            1, min(group, len(self._block_ids))
        )
        machine.budget.acquire(reserve)
        try:
            for start in range(0, len(self._block_ids), group):
                batch = self._block_ids[start:start + group]
                # Through the runtime: deferred writes to these blocks
                # are flushed first and the wave gets the fault retry.
                for payload in machine.runtime.read_batch(batch):
                    yield payload
        finally:
            machine.budget.release(reserve)

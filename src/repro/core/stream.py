"""Sequential record streams over the simulated disk.

Streams are the workhorse of every batched algorithm (sorting, joins, graph
contraction): write-once, read-many sequences of records stored in full
blocks.  A stream writer buffers up to ``B`` records (one frame of internal
memory, accounted against the machine's budget) and emits one write I/O per
full block; a reader holds one frame and costs one read I/O per block.

:class:`StripedStream` additionally stripes its blocks round-robin over the
machine's ``D`` disks and transfers ``D`` blocks per parallel I/O step, the
"disk striping" technique the survey describes for the Parallel Disk Model.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional, Sequence

from .exceptions import StreamError
from .machine import Machine


class FileStream:
    """A write-once, read-many sequence of records on the simulated disk.

    Typical usage::

        out = FileStream(machine, name="runs/0")
        for record in data:
            out.append(record)
        out.finalize()
        for record in out:           # costs ceil(len/B) read I/Os
            ...

    Args:
        machine: the machine whose disk and memory budget the stream uses.
        name: optional label for debugging and error messages.
    """

    def __init__(self, machine: Machine, name: str = ""):
        self.machine = machine
        self.name = name
        self._block_ids: List[int] = []
        self._buffer: List[Any] = []
        self._buffer_reserved = False
        self._writer_reserve = machine.block_size
        self._length = 0
        self._finalized = False
        self._deleted = False

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(self, record: Any) -> None:
        """Append one record, flushing a block write when the buffer fills."""
        self._check_writable()
        if not self._buffer_reserved:
            self.machine.budget.acquire(self._writer_reserve)
            self._buffer_reserved = True
        self._buffer.append(record)
        self._length += 1
        if len(self._buffer) == self.machine.block_size:
            self._flush_buffer()

    def extend(self, records: Iterable[Any]) -> None:
        """Append every record of ``records`` in order."""
        for record in records:
            self.append(record)

    def append_block(self, records: Sequence[Any]) -> None:
        """Write ``records`` (at most ``B``) directly as one block.

        Unlike :meth:`append`, no staging buffer is used and no memory is
        reserved — the caller already holds the records and has accounted
        for them (e.g. a sorted memoryload during run formation).  Only
        allowed while the record buffer is empty, so blocks are never
        interleaved with buffered records.
        """
        self._check_writable()
        if self._buffer:
            raise StreamError(
                f"stream {self.name!r}: append_block while records are "
                "buffered would reorder data"
            )
        if len(records) > self.machine.block_size:
            raise StreamError(
                f"stream {self.name!r}: append_block of {len(records)} "
                f"records exceeds block size {self.machine.block_size}"
            )
        if not records:
            return
        block_id = self._allocate_block(len(self._block_ids))
        self._write_block(block_id, list(records))
        self._block_ids.append(block_id)
        self._length += len(records)

    def sync(self) -> None:
        """Flush the staging buffer and release its memory frame while
        keeping the stream writable.

        A partially filled block is written out as a *short block* (fewer
        than ``B`` records); later appends start a fresh block.  Useful for
        long-lived buffers (e.g. buffer-tree node buffers) that must not
        hold a memory frame between batches.  Costs at most one write I/O.
        """
        self._check_writable()
        if self._buffer:
            self._flush_buffer()
        if self._buffer_reserved:
            self.machine.budget.release(self._writer_reserve)
            self._buffer_reserved = False

    def finalize(self) -> "FileStream":
        """Flush any partial block and switch the stream to read-only mode.

        Idempotent; returns ``self`` for chaining.
        """
        if self._deleted:
            raise StreamError(f"stream {self.name!r} has been deleted")
        if self._finalized:
            return self
        if self._buffer:
            self._flush_buffer()
        if self._buffer_reserved:
            self.machine.budget.release(self._writer_reserve)
            self._buffer_reserved = False
        self._finalized = True
        return self

    def _flush_buffer(self) -> None:
        block_id = self._allocate_block(len(self._block_ids))
        self._write_block(block_id, self._buffer)
        self._block_ids.append(block_id)
        self._buffer = []

    def _allocate_block(self, index: int) -> int:
        return self.machine.disk.allocate()

    def _write_block(self, block_id: int, records: List[Any]) -> None:
        self.machine.disk.write(block_id, records)

    def _check_writable(self) -> None:
        if self._deleted:
            raise StreamError(f"stream {self.name!r} has been deleted")
        if self._finalized:
            raise StreamError(
                f"stream {self.name!r} is finalized and read-only"
            )

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Any]:
        """Iterate all records, costing one read I/O per block.

        The reader reserves one frame (``B`` records) from the memory budget
        for its lifetime and releases it when exhausted or closed.
        """
        if self._deleted:
            raise StreamError(f"stream {self.name!r} has been deleted")
        if not self._finalized:
            raise StreamError(
                f"stream {self.name!r} must be finalized before reading"
            )
        return self._reader()

    def _reader(self) -> Iterator[Any]:
        budget = self.machine.budget
        budget.acquire(self.machine.block_size)
        try:
            for block_id in self._block_ids:
                for record in self.machine.disk.read(block_id):
                    yield record
        finally:
            budget.release(self.machine.block_size)

    def read_block(self, index: int) -> List[Any]:
        """Random-access read of the ``index``-th block (one read I/O)."""
        if not 0 <= index < len(self._block_ids):
            raise StreamError(
                f"stream {self.name!r} has no block {index} "
                f"(has {len(self._block_ids)})"
            )
        return self.machine.disk.read(self._block_ids[index])

    def read_block_range(self, start: int, stop: int) -> List[Any]:
        """Read blocks ``start..stop-1`` and return their records
        concatenated, batching ``D`` blocks per parallel I/O step.

        On a single-disk machine this is equivalent to ``stop - start``
        :meth:`read_block` calls; with ``D`` disks and striped layout it
        takes ``~(stop - start)/D`` steps.  The caller must have reserved
        memory for the returned records.
        """
        if not 0 <= start <= stop <= len(self._block_ids):
            raise StreamError(
                f"stream {self.name!r}: block range [{start}, {stop}) "
                f"invalid (has {len(self._block_ids)})"
            )
        records: List[Any] = []
        group = self.machine.num_disks
        for batch_start in range(start, stop, group):
            batch = self._block_ids[batch_start:min(batch_start + group,
                                                    stop)]
            for payload in self.machine.disk.parallel_read(batch):
                records.extend(payload)
        return records

    def __len__(self) -> int:
        """Number of records in the stream (including unflushed ones)."""
        return self._length

    @property
    def num_blocks(self) -> int:
        """Number of full blocks written so far."""
        return len(self._block_ids)

    @property
    def is_finalized(self) -> bool:
        """Whether the stream has been switched to read-only mode."""
        return self._finalized

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def delete(self) -> None:
        """Free every block of the stream.  The stream becomes unusable."""
        if self._deleted:
            return
        if self._buffer_reserved:
            self.machine.budget.release(self._writer_reserve)
            self._buffer_reserved = False
        for block_id in self._block_ids:
            self.machine.disk.free(block_id)
        self._block_ids = []
        self._buffer = []
        self._deleted = True

    @classmethod
    def from_records(
        cls, machine: Machine, records: Iterable[Any], name: str = ""
    ) -> "FileStream":
        """Build and finalize a stream holding ``records``."""
        stream = cls(machine, name=name)
        stream.extend(records)
        return stream.finalize()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "deleted" if self._deleted else (
            "finalized" if self._finalized else "writable"
        )
        return (
            f"{type(self).__name__}(name={self.name!r}, len={self._length}, "
            f"blocks={len(self._block_ids)}, {state})"
        )


class StripedStream(FileStream):
    """A stream striped round-robin across the machine's ``D`` disks.

    Writes are batched ``D`` blocks at a time and issued with
    :meth:`~repro.core.disk.DiskArray.parallel_write`; reads fetch ``D``
    consecutive blocks per parallel I/O step.  A full scan therefore costs
    ``ceil(n/D)`` steps instead of ``n`` — the survey's "disk striping"
    technique.  Both writer and reader reserve ``D`` frames of memory
    instead of one.
    """

    def __init__(self, machine: Machine, name: str = ""):
        super().__init__(machine, name)
        self._pending: List[tuple] = []
        self._writer_reserve = machine.block_size * machine.num_disks

    def _allocate_block(self, index: int) -> int:
        return self.machine.disk.allocate(index % self.machine.num_disks)

    def _write_block(self, block_id: int, records: List[Any]) -> None:
        self._pending.append((block_id, records))
        if len(self._pending) >= self.machine.num_disks:
            self._drain_pending()

    def _drain_pending(self) -> None:
        if self._pending:
            self.machine.disk.parallel_write(self._pending)
            self._pending = []

    def finalize(self) -> "StripedStream":
        if not self._finalized:
            super().finalize()
            self._drain_pending()
        return self

    def _reader(self) -> Iterator[Any]:
        machine = self.machine
        group = machine.num_disks
        reserve = machine.block_size * max(
            1, min(group, len(self._block_ids))
        )
        machine.budget.acquire(reserve)
        try:
            for start in range(0, len(self._block_ids), group):
                batch = self._block_ids[start:start + group]
                for payload in machine.disk.parallel_read(batch):
                    for record in payload:
                        yield record
        finally:
            machine.budget.release(reserve)

"""External stacks and queues: O(1/B) amortized I/Os per operation.

The survey's simplest lesson in amortization: a stack or FIFO queue on
disk needs only a constant number of in-memory buffer blocks to make the
per-operation I/O cost ``1/B`` amortized — every block travels to disk at
most once per ``B`` operations.

* :class:`ExternalStack` keeps the top ``<= 2B`` elements in memory;
  push spills the older buffer half when full, pop refills one block when
  empty.
* :class:`ExternalQueue` keeps one head buffer and one tail buffer; full
  blocks flow through an on-disk FIFO of block ids.
"""

from __future__ import annotations

from collections import deque
from typing import Any, List, Optional

from .exceptions import EMError
from .machine import Machine


class ExternalStack:
    """A LIFO stack of records on the simulated disk.

    Holds at most ``2B`` records in memory (one live buffer plus slack so
    that alternating push/pop at a block boundary does not thrash).
    """

    def __init__(self, machine: Machine, name: str = "stack"):
        self.machine = machine
        self.name = name
        self._buffer: List[Any] = []
        self._blocks: List[int] = []  # spilled full blocks, bottom first
        self._size = 0
        machine.budget.acquire(2 * machine.block_size)
        self._closed = False

    def push(self, record: Any) -> None:
        """Push a record; amortized ``1/B`` write I/Os."""
        self._check_open()
        self._buffer.append(record)
        self._size += 1
        if len(self._buffer) == 2 * self.machine.block_size:
            block_id = self.machine.disk.allocate()
            # Spill through the write-behind window so consecutive spills
            # coalesce into D-block parallel steps (and get the
            # scheduler's fault retry) like every other writer.
            self.machine.runtime.writer.put(
                block_id, self._buffer[:self.machine.block_size]
            )
            self._blocks.append(block_id)
            del self._buffer[:self.machine.block_size]

    def pop(self) -> Any:
        """Pop the most recent record; amortized ``1/B`` read I/Os.

        Raises:
            EMError: when the stack is empty.
        """
        self._check_open()
        if self._size == 0:
            raise EMError("pop from an empty external stack")
        if not self._buffer:
            block_id = self._blocks.pop()
            # read_block flushes the write-behind window first, so a
            # block popped right after its spill reads the written data.
            self._buffer = self.machine.runtime.read_block(block_id)
            self.machine.disk.free(block_id)
        self._size -= 1
        return self._buffer.pop()

    def peek(self) -> Any:
        """Return the top record without removing it."""
        self._check_open()
        if self._size == 0:
            raise EMError("peek on an empty external stack")
        if self._buffer:
            return self._buffer[-1]
        return self.machine.runtime.read_block(self._blocks[-1])[-1]

    def __len__(self) -> int:
        return self._size

    def close(self) -> None:
        """Free disk blocks and release the memory reservation."""
        if self._closed:
            return
        # Flag first: if a free below faults, a retried close() must be
        # a no-op rather than release the reservation a second time.
        self._closed = True
        try:
            runtime = self.machine._runtime
            if runtime is not None:
                # Spilled blocks may still sit in the write-behind
                # window; writing them after the free below would
                # resurrect freed blocks.
                runtime.writer.discard(list(self._blocks))
            for block_id in self._blocks:
                self.machine.disk.free(block_id)
        finally:
            self._blocks = []
            self._buffer = []
            self.machine.budget.release(2 * self.machine.block_size)

    def __enter__(self) -> "ExternalStack":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise EMError(f"external stack {self.name!r} is closed")


class ExternalQueue:
    """A FIFO queue of records on the simulated disk.

    Holds one head buffer and one tail buffer (``2B`` records) in memory;
    enqueue and dequeue cost ``1/B`` amortized I/Os.
    """

    def __init__(self, machine: Machine, name: str = "queue"):
        self.machine = machine
        self.name = name
        self._head: deque = deque()
        self._tail: List[Any] = []
        self._blocks: deque = deque()  # full blocks, oldest first
        self._size = 0
        machine.budget.acquire(2 * machine.block_size)
        self._closed = False

    def enqueue(self, record: Any) -> None:
        """Append a record at the back; amortized ``1/B`` write I/Os."""
        self._check_open()
        self._tail.append(record)
        self._size += 1
        if len(self._tail) == self.machine.block_size:
            block_id = self.machine.disk.allocate()
            # Same write-behind routing as the stack: tail blocks
            # coalesce into parallel steps instead of one step each.
            self.machine.runtime.writer.put(block_id, self._tail)
            self._blocks.append(block_id)
            self._tail = []

    def dequeue(self) -> Any:
        """Remove and return the front record; amortized ``1/B`` read I/Os.

        Raises:
            EMError: when the queue is empty.
        """
        self._check_open()
        if self._size == 0:
            raise EMError("dequeue from an empty external queue")
        if not self._head:
            if self._blocks:
                block_id = self._blocks.popleft()
                self._head.extend(self.machine.runtime.read_block(block_id))
                self.machine.disk.free(block_id)
            else:
                self._head.extend(self._tail)
                self._tail = []
        self._size -= 1
        return self._head.popleft()

    def peek(self) -> Any:
        """Return the front record without removing it."""
        self._check_open()
        if self._size == 0:
            raise EMError("peek on an empty external queue")
        if self._head:
            return self._head[0]
        if self._blocks:
            return self.machine.runtime.read_block(self._blocks[0])[0]
        return self._tail[0]

    def __len__(self) -> int:
        return self._size

    def close(self) -> None:
        """Free disk blocks and release the memory reservation."""
        if self._closed:
            return
        # Same fault-safety shape as ExternalStack.close.
        self._closed = True
        try:
            runtime = self.machine._runtime
            if runtime is not None:
                runtime.writer.discard(list(self._blocks))
            for block_id in self._blocks:
                self.machine.disk.free(block_id)
        finally:
            self._blocks = deque()
            self._head = deque()
            self._tail = []
            self.machine.budget.release(2 * self.machine.block_size)

    def __enter__(self) -> "ExternalQueue":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise EMError(f"external queue {self.name!r} is closed")

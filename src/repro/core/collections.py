"""External stacks and queues: O(1/B) amortized I/Os per operation.

The survey's simplest lesson in amortization: a stack or FIFO queue on
disk needs only a constant number of in-memory buffer blocks to make the
per-operation I/O cost ``1/B`` amortized — every block travels to disk at
most once per ``B`` operations.

* :class:`ExternalStack` keeps the top ``<= 2B`` elements in memory;
  push spills the older buffer half when full, pop refills one block when
  empty.
* :class:`ExternalQueue` keeps one head buffer and one tail buffer; full
  blocks flow through an on-disk FIFO of block ids.
"""

from __future__ import annotations

from collections import deque
from typing import Any, List, Optional

from .exceptions import EMError
from .machine import Machine


class ExternalStack:
    """A LIFO stack of records on the simulated disk.

    Holds at most ``2B`` records in memory (one live buffer plus slack so
    that alternating push/pop at a block boundary does not thrash).
    """

    def __init__(self, machine: Machine, name: str = "stack"):
        self.machine = machine
        self.name = name
        self._buffer: List[Any] = []
        self._blocks: List[int] = []  # spilled full blocks, bottom first
        self._size = 0
        machine.budget.acquire(2 * machine.block_size)
        self._closed = False

    def push(self, record: Any) -> None:
        """Push a record; amortized ``1/B`` write I/Os."""
        self._check_open()
        self._buffer.append(record)
        self._size += 1
        if len(self._buffer) == 2 * self.machine.block_size:
            block_id = self.machine.disk.allocate()
            self.machine.disk.write(
                block_id, self._buffer[:self.machine.block_size]
            )
            self._blocks.append(block_id)
            del self._buffer[:self.machine.block_size]

    def pop(self) -> Any:
        """Pop the most recent record; amortized ``1/B`` read I/Os.

        Raises:
            EMError: when the stack is empty.
        """
        self._check_open()
        if self._size == 0:
            raise EMError("pop from an empty external stack")
        if not self._buffer:
            block_id = self._blocks.pop()
            self._buffer = self.machine.disk.read(block_id)
            self.machine.disk.free(block_id)
        self._size -= 1
        return self._buffer.pop()

    def peek(self) -> Any:
        """Return the top record without removing it."""
        self._check_open()
        if self._size == 0:
            raise EMError("peek on an empty external stack")
        if self._buffer:
            return self._buffer[-1]
        return self.machine.disk.read(self._blocks[-1])[-1]

    def __len__(self) -> int:
        return self._size

    def close(self) -> None:
        """Free disk blocks and release the memory reservation."""
        if self._closed:
            return
        for block_id in self._blocks:
            self.machine.disk.free(block_id)
        self._blocks = []
        self._buffer = []
        self.machine.budget.release(2 * self.machine.block_size)
        self._closed = True

    def __enter__(self) -> "ExternalStack":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise EMError(f"external stack {self.name!r} is closed")


class ExternalQueue:
    """A FIFO queue of records on the simulated disk.

    Holds one head buffer and one tail buffer (``2B`` records) in memory;
    enqueue and dequeue cost ``1/B`` amortized I/Os.
    """

    def __init__(self, machine: Machine, name: str = "queue"):
        self.machine = machine
        self.name = name
        self._head: deque = deque()
        self._tail: List[Any] = []
        self._blocks: deque = deque()  # full blocks, oldest first
        self._size = 0
        machine.budget.acquire(2 * machine.block_size)
        self._closed = False

    def enqueue(self, record: Any) -> None:
        """Append a record at the back; amortized ``1/B`` write I/Os."""
        self._check_open()
        self._tail.append(record)
        self._size += 1
        if len(self._tail) == self.machine.block_size:
            block_id = self.machine.disk.allocate()
            self.machine.disk.write(block_id, self._tail)
            self._blocks.append(block_id)
            self._tail = []

    def dequeue(self) -> Any:
        """Remove and return the front record; amortized ``1/B`` read I/Os.

        Raises:
            EMError: when the queue is empty.
        """
        self._check_open()
        if self._size == 0:
            raise EMError("dequeue from an empty external queue")
        if not self._head:
            if self._blocks:
                block_id = self._blocks.popleft()
                self._head.extend(self.machine.disk.read(block_id))
                self.machine.disk.free(block_id)
            else:
                self._head.extend(self._tail)
                self._tail = []
        self._size -= 1
        return self._head.popleft()

    def peek(self) -> Any:
        """Return the front record without removing it."""
        self._check_open()
        if self._size == 0:
            raise EMError("peek on an empty external queue")
        if self._head:
            return self._head[0]
        if self._blocks:
            return self.machine.disk.read(self._blocks[0])[0]
        return self._tail[0]

    def __len__(self) -> int:
        return self._size

    def close(self) -> None:
        """Free disk blocks and release the memory reservation."""
        if self._closed:
            return
        for block_id in self._blocks:
            self.machine.disk.free(block_id)
        self._blocks = deque()
        self._head = deque()
        self._tail = []
        self.machine.budget.release(2 * self.machine.block_size)
        self._closed = True

    def __enter__(self) -> "ExternalQueue":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise EMError(f"external queue {self.name!r} is closed")

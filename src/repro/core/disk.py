"""Simulated block devices.

The I/O model charges one unit per *block transfer*.  On real 1998 hardware
an I/O cost roughly a million CPU operations; in pure Python, wall-clock
time is dominated by interpreter overhead and says nothing about I/O
behaviour.  This module therefore simulates the disk: blocks live in a
dictionary, and every read or write increments a counter.  All experiments
in this repository are stated in terms of these deterministic counts.

Two devices are provided:

* :class:`SimulatedDisk` — a single disk.
* :class:`DiskArray` — ``D`` independent disks (the Parallel Disk Model).
  Batched transfers that touch distinct disks count as a single *parallel
  I/O step*; the array tracks steps separately from raw block transfers.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .exceptions import (
    BlockNotAllocatedError,
    BlockOverflowError,
    ConfigurationError,
)
from .stats import IOCounter

# A block payload is a plain list of records.  Records are arbitrary Python
# objects; the substrate measures capacity in records, not bytes.
Block = List[Any]


class SimulatedDisk:
    """An unbounded store of fixed-capacity blocks with I/O accounting.

    Args:
        block_capacity: maximum number of records per block (the model
            parameter ``B``).

    Attributes:
        counter: the :class:`~repro.core.stats.IOCounter` incremented by
            every :meth:`read` and :meth:`write`.
    """

    def __init__(self, block_capacity: int):
        if block_capacity < 1:
            raise ConfigurationError(
                f"block capacity must be >= 1, got {block_capacity}"
            )
        self.block_capacity = block_capacity
        self.counter = IOCounter()
        self._blocks: Dict[int, Block] = {}
        self._next_id = 0
        self._allocated_high_water = 0

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def allocate(self) -> int:
        """Allocate a fresh, empty block and return its id.

        Allocation itself is free (it models reserving an address on disk,
        not transferring data).
        """
        block_id = self._next_id
        self._next_id += 1
        self._blocks[block_id] = []
        self._allocated_high_water = max(
            self._allocated_high_water, len(self._blocks)
        )
        return block_id

    def free(self, block_id: int) -> None:
        """Release a block.  Freeing is free of I/O cost."""
        if block_id not in self._blocks:
            raise BlockNotAllocatedError(block_id)
        del self._blocks[block_id]

    def is_allocated(self, block_id: int) -> bool:
        """Return whether ``block_id`` currently names an allocated block."""
        return block_id in self._blocks

    @property
    def allocated_blocks(self) -> int:
        """Number of blocks currently allocated (disk-space usage)."""
        return len(self._blocks)

    @property
    def high_water_blocks(self) -> int:
        """Peak number of simultaneously allocated blocks."""
        return self._allocated_high_water

    # ------------------------------------------------------------------
    # transfers
    # ------------------------------------------------------------------
    def read(self, block_id: int) -> Block:
        """Transfer one block from disk to memory.  Costs one read I/O.

        Returns a shallow copy of the payload, so callers may mutate the
        result without corrupting the on-disk image.
        """
        try:
            payload = self._blocks[block_id]
        except KeyError:
            raise BlockNotAllocatedError(block_id) from None
        self.counter.reads += 1
        self.counter.read_steps += 1
        return list(payload)

    def write(self, block_id: int, records: Sequence[Any]) -> None:
        """Transfer one block from memory to disk.  Costs one write I/O."""
        if block_id not in self._blocks:
            raise BlockNotAllocatedError(block_id)
        if len(records) > self.block_capacity:
            raise BlockOverflowError(
                block_id, len(records), self.block_capacity
            )
        self.counter.writes += 1
        self.counter.write_steps += 1
        self._blocks[block_id] = list(records)

    def peek(self, block_id: int) -> Block:
        """Inspect a block **without** charging an I/O.

        For tests and debugging only; algorithm code must use :meth:`read`.
        """
        try:
            return list(self._blocks[block_id])
        except KeyError:
            raise BlockNotAllocatedError(block_id) from None


class DiskArray:
    """``D`` independent simulated disks (the Parallel Disk Model).

    Block ids are globally unique across the array and carry their disk
    assignment, so single-block :meth:`read`/:meth:`write` calls need no
    disk argument.  Batched :meth:`parallel_read`/:meth:`parallel_write`
    calls count parallel steps: a batch touching ``k_i`` blocks on disk
    ``i`` takes ``max_i k_i`` steps, because distinct disks transfer
    concurrently.

    With ``D == 1`` the array behaves exactly like a single
    :class:`SimulatedDisk` (every step moves one block).
    """

    def __init__(self, block_capacity: int, num_disks: int = 1):
        if num_disks < 1:
            raise ConfigurationError(
                f"number of disks must be >= 1, got {num_disks}"
            )
        self.num_disks = num_disks
        self.block_capacity = block_capacity
        self.counter = IOCounter()
        self._blocks: Dict[int, Block] = {}
        self._disk_of: Dict[int, int] = {}
        self._next_id = 0
        self._rr_next_disk = 0
        self._allocated_high_water = 0

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def allocate(self, disk: Optional[int] = None) -> int:
        """Allocate an empty block.

        Args:
            disk: disk index in ``range(D)``; when omitted, disks are used
                round-robin, which is the striping layout.
        """
        if disk is None:
            disk = self._rr_next_disk
            self._rr_next_disk = (self._rr_next_disk + 1) % self.num_disks
        if not 0 <= disk < self.num_disks:
            raise ConfigurationError(
                f"disk index {disk} out of range for {self.num_disks} disks"
            )
        block_id = self._next_id
        self._next_id += 1
        self._blocks[block_id] = []
        self._disk_of[block_id] = disk
        self._allocated_high_water = max(
            self._allocated_high_water, len(self._blocks)
        )
        return block_id

    def free(self, block_id: int) -> None:
        """Release a block (free of I/O cost)."""
        if block_id not in self._blocks:
            raise BlockNotAllocatedError(block_id)
        del self._blocks[block_id]
        del self._disk_of[block_id]

    def is_allocated(self, block_id: int) -> bool:
        """Return whether ``block_id`` currently names an allocated block."""
        return block_id in self._blocks

    def disk_of(self, block_id: int) -> int:
        """Return the disk index holding ``block_id``."""
        try:
            return self._disk_of[block_id]
        except KeyError:
            raise BlockNotAllocatedError(block_id) from None

    @property
    def allocated_blocks(self) -> int:
        """Number of blocks currently allocated across all disks."""
        return len(self._blocks)

    @property
    def high_water_blocks(self) -> int:
        """Peak number of simultaneously allocated blocks."""
        return self._allocated_high_water

    # ------------------------------------------------------------------
    # transfers
    # ------------------------------------------------------------------
    def read(self, block_id: int) -> Block:
        """Read one block: one transfer, one parallel step."""
        try:
            payload = self._blocks[block_id]
        except KeyError:
            raise BlockNotAllocatedError(block_id) from None
        self.counter.reads += 1
        self.counter.read_steps += 1
        return list(payload)

    def write(self, block_id: int, records: Sequence[Any]) -> None:
        """Write one block: one transfer, one parallel step."""
        self._check_write(block_id, records)
        self.counter.writes += 1
        self.counter.write_steps += 1
        self._blocks[block_id] = list(records)

    def parallel_read(self, block_ids: Sequence[int]) -> List[Block]:
        """Read a batch of blocks, exploiting disk parallelism.

        Transfers every block (``len(block_ids)`` read transfers) but only
        charges ``max_i k_i`` parallel steps, where ``k_i`` is the number of
        requested blocks living on disk ``i``.
        """
        per_disk = [0] * self.num_disks
        payloads: List[Block] = []
        for block_id in block_ids:
            try:
                payload = self._blocks[block_id]
            except KeyError:
                raise BlockNotAllocatedError(block_id) from None
            per_disk[self._disk_of[block_id]] += 1
            payloads.append(list(payload))
        self.counter.reads += len(block_ids)
        self.counter.read_steps += max(per_disk) if block_ids else 0
        return payloads

    def parallel_write(
        self, writes: Sequence[Tuple[int, Sequence[Any]]]
    ) -> None:
        """Write a batch of ``(block_id, records)`` pairs in parallel.

        Charges one write transfer per block and ``max_i k_i`` parallel
        steps (see :meth:`parallel_read`).
        """
        per_disk = [0] * self.num_disks
        for block_id, records in writes:
            self._check_write(block_id, records)
            per_disk[self._disk_of[block_id]] += 1
        for block_id, records in writes:
            self._blocks[block_id] = list(records)
        self.counter.writes += len(writes)
        self.counter.write_steps += max(per_disk) if writes else 0

    def peek(self, block_id: int) -> Block:
        """Inspect a block without charging an I/O (tests/debugging only)."""
        try:
            return list(self._blocks[block_id])
        except KeyError:
            raise BlockNotAllocatedError(block_id) from None

    def _check_write(self, block_id: int, records: Sequence[Any]) -> None:
        if block_id not in self._blocks:
            raise BlockNotAllocatedError(block_id)
        if len(records) > self.block_capacity:
            raise BlockOverflowError(
                block_id, len(records), self.block_capacity
            )

"""Simulated block devices.

The I/O model charges one unit per *block transfer*.  On real 1998 hardware
an I/O cost roughly a million CPU operations; in pure Python, wall-clock
time is dominated by interpreter overhead and says nothing about I/O
behaviour.  This module therefore simulates the disk: blocks live in a
dictionary, and every read or write increments a counter.  All experiments
in this repository are stated in terms of these deterministic counts.

Two devices are provided:

* :class:`DiskArray` — ``D`` independent disks (the Parallel Disk Model).
  Batched transfers that touch distinct disks count as a single *parallel
  I/O step*; the array tracks steps separately from raw block transfers.
* :class:`SimulatedDisk` — a single disk: a :class:`DiskArray` fixed at
  ``D == 1``, kept as a named class for clarity in single-disk code.

A device accepts one optional ``listener`` (the runtime's tracer): every
transfer method reports ``(op, block_ids, disks, steps)`` to it, which is
how per-phase trace tallies stay equal to the device's own counters.

Devices can also host a *fault injector* (see :mod:`repro.faults`): a
seeded plan of transient read/write errors, torn (partial) writes, and
per-disk stuck-slow latency.  Installing an injector enables per-block
checksums, recorded for the payload the writer *intended*; a torn write
then surfaces as a :class:`~repro.core.exceptions.ChecksumError` on read
instead of silently returning truncated data.  Without an injector the
checksum machinery is entirely inert, so fault-free runs pay nothing.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .exceptions import (
    BlockNotAllocatedError,
    BlockOverflowError,
    ChecksumError,
    ConfigurationError,
)
from .records import canonical_bytes, copy_payload, np
from .stats import IOCounter

# A block payload is a sequence of records: a plain list of arbitrary
# Python objects, or a typed buffer (numpy array / ``array.array``, see
# :mod:`repro.core.records`).  The substrate measures capacity in
# records, not bytes, for every representation.
Block = Sequence[Any]


def block_checksum(records: Sequence[Any]) -> int:
    """Checksum of a block payload (CRC-32 over its canonical bytes).

    :func:`~repro.core.records.canonical_bytes` covers every record: a
    ``repr``-based digest would let numpy elide the middle of large
    arrays with ``...``, making distinct blocks collide and torn writes
    undetectable.  The simulation never needs the checksum to be
    cryptographic — only to disagree when a write was torn."""
    return zlib.crc32(canonical_bytes(records))


class DiskArray:
    """``D`` independent simulated disks (the Parallel Disk Model).

    Block ids are globally unique across the array and carry their disk
    assignment, so single-block :meth:`read`/:meth:`write` calls need no
    disk argument.  Batched :meth:`parallel_read`/:meth:`parallel_write`
    calls count parallel steps: a batch touching ``k_i`` blocks on disk
    ``i`` takes ``max_i k_i`` steps, because distinct disks transfer
    concurrently.

    With ``D == 1`` the array behaves exactly like a single
    :class:`SimulatedDisk` (every step moves one block).
    """

    def __init__(self, block_capacity: int, num_disks: int = 1):
        if block_capacity < 1:
            raise ConfigurationError(
                f"block capacity must be >= 1, got {block_capacity}"
            )
        if num_disks < 1:
            raise ConfigurationError(
                f"number of disks must be >= 1, got {num_disks}"
            )
        self.num_disks = num_disks
        self.block_capacity = block_capacity
        self.counter = IOCounter()
        self.listener = None  # runtime tracer; see module docstring
        self.checksums_enabled = False
        self._injector = None  # repro.faults injector; see property below
        self._blocks: Dict[int, Block] = {}
        self._sums: Dict[int, int] = {}
        self._disk_of: Dict[int, int] = {}
        self._next_id = 0
        self._rr_next_disk = 0
        self._allocated_high_water = 0

    @property
    def fault_injector(self):
        """The installed fault injector, or None (see
        :meth:`repro.core.machine.Machine.inject_faults`)."""
        return self._injector

    @fault_injector.setter
    def fault_injector(self, injector) -> None:
        self._injector = injector
        if injector is not None:
            # Checksums stay on once faults have ever been possible, so
            # blocks torn under a plan are still detected after it exits.
            self.checksums_enabled = True

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def allocate(self, disk: Optional[int] = None) -> int:
        """Allocate an empty block.

        Args:
            disk: disk index in ``range(D)``; when omitted, disks are used
                round-robin, which is the striping layout.

        Allocation itself is free (it models reserving an address on disk,
        not transferring data).
        """
        if disk is None:
            disk = self._rr_next_disk
            self._rr_next_disk = (self._rr_next_disk + 1) % self.num_disks
        if not 0 <= disk < self.num_disks:
            raise ConfigurationError(
                f"disk index {disk} out of range for {self.num_disks} disks"
            )
        block_id = self._next_id
        self._next_id += 1
        self._blocks[block_id] = self._new_slot()
        self._disk_of[block_id] = disk
        self._allocated_high_water = max(
            self._allocated_high_water, len(self._blocks)
        )
        return block_id

    def stripe_offset(self) -> int:
        """Starting disk for a new striped file, advanced round-robin.

        Staggering stripe starts keeps concurrently consumed striped
        files (e.g. the runs of a merge) from all placing their ``i``-th
        block on the same disk, which would serialize a prefetcher's
        batches.
        """
        offset = self._rr_next_disk
        self._rr_next_disk = (self._rr_next_disk + 1) % self.num_disks
        return offset

    def free(self, block_id: int) -> None:
        """Release a block (free of I/O cost)."""
        if block_id not in self._blocks:
            raise BlockNotAllocatedError(block_id)
        del self._blocks[block_id]
        del self._disk_of[block_id]
        self._sums.pop(block_id, None)

    def is_allocated(self, block_id: int) -> bool:
        """Return whether ``block_id`` currently names an allocated block."""
        return block_id in self._blocks

    def disk_of(self, block_id: int) -> int:
        """Return the disk index holding ``block_id``."""
        try:
            return self._disk_of[block_id]
        except KeyError:
            raise BlockNotAllocatedError(block_id) from None

    @property
    def allocated_blocks(self) -> int:
        """Number of blocks currently allocated across all disks."""
        return len(self._blocks)

    @property
    def high_water_blocks(self) -> int:
        """Peak number of simultaneously allocated blocks."""
        return self._allocated_high_water

    # ------------------------------------------------------------------
    # storage hooks
    #
    # Subclasses with a different backing store (a real file, see
    # :class:`~repro.core.filedisk.FileDiskArray`) override these four
    # methods and inherit every counter, fault, and checksum behaviour
    # unchanged — bit-compatibility with the dict-backed array is by
    # construction, not by reimplementation.
    # ------------------------------------------------------------------
    def _new_slot(self) -> Any:
        """Backing-store entry for a freshly allocated (empty) block."""
        return []

    def _load(self, block_id: int) -> Block:
        """The stored payload of ``block_id`` (raises ``KeyError`` when
        unallocated).  Free of accounting — callers charge."""
        return self._blocks[block_id]

    def _store(self, block_id: int, payload: Block) -> None:
        """Store ``payload``, which the caller owns (already copied or
        torn) — never aliased to caller memory."""
        self._blocks[block_id] = payload

    def _export(self, payload: Block) -> Block:
        """The payload handed to a reader: an independent copy for the
        in-memory store (readers may mutate their frames).  Typed
        payloads skip the copy — a read-only view protects the store
        just as well, and turns an accidental in-place mutation into a
        loud error instead of silent corruption."""
        if np is not None and isinstance(payload, np.ndarray):
            view = payload[:]
            view.flags.writeable = False
            return view
        return copy_payload(payload)

    # ------------------------------------------------------------------
    # transfers
    # ------------------------------------------------------------------
    def read(self, block_id: int) -> Block:
        """Read one block: one transfer, one parallel step.

        Raises:
            TransientReadError: injected by an installed fault plan; the
                failed attempt charges no transfer (the retry machinery
                charges its backoff as stall steps instead).
            ChecksumError: the stored payload does not match its recorded
                checksum (a torn write being read back).  The transfer
                *is* charged — the data moved, then failed verification.
        """
        self._pre_read(block_id)
        try:
            payload = self._load(block_id)
        except KeyError:
            raise BlockNotAllocatedError(block_id) from None
        self.counter.reads += 1
        self.counter.read_steps += 1
        self._notify("read", (block_id,), 1)
        self._verify(block_id, payload)
        self._stall_after((self._disk_of[block_id],))
        return self._export(payload)

    def write(self, block_id: int, records: Sequence[Any]) -> None:
        """Write one block: one transfer, one parallel step.

        The payload is copied exactly once (the torn prefix *is* that
        copy when a fault plan tears the write), preserving the caller's
        representation — a numpy block stays a numpy block on disk.

        An installed fault plan may raise
        :class:`~repro.core.exceptions.TransientWriteError` (nothing
        charged) or *tear* the write: the checksum of the intended
        payload is recorded but only a prefix is stored, so a later read
        raises :class:`~repro.core.exceptions.ChecksumError`.
        """
        self._check_write(block_id, records)
        stored = self._pre_write(block_id, records)
        if self.checksums_enabled:
            self._sums[block_id] = block_checksum(records)
        self.counter.writes += 1
        self.counter.write_steps += 1
        self._store(block_id, stored)
        self._notify("write", (block_id,), 1)
        self._stall_after((self._disk_of[block_id],))

    def parallel_read(self, block_ids: Sequence[int]) -> List[Block]:
        """Read a batch of blocks, exploiting disk parallelism.

        Transfers every block (``len(block_ids)`` read transfers) but only
        charges ``max_i k_i`` parallel steps, where ``k_i`` is the number of
        requested blocks living on disk ``i``.

        Fault checks run for every block *before* any transfer, so an
        injected :class:`~repro.core.exceptions.TransientReadError`
        aborts the wave atomically and the retry re-issues it whole.
        """
        for block_id in block_ids:
            if block_id not in self._blocks:
                raise BlockNotAllocatedError(block_id)
            self._pre_read(block_id)
        per_disk = [0] * self.num_disks
        loaded: List[Block] = []
        for block_id in block_ids:
            loaded.append(self._load(block_id))
            per_disk[self._disk_of[block_id]] += 1
        steps = max(per_disk) if block_ids else 0
        self.counter.reads += len(block_ids)
        self.counter.read_steps += steps
        if block_ids and self.listener is not None:
            self._notify("read", block_ids, steps)
        if self.checksums_enabled:
            for block_id, payload in zip(block_ids, loaded):
                self._verify(block_id, payload)
        if block_ids and self._injector is not None:
            self._stall_after({self._disk_of[b] for b in block_ids})
        return [self._export(payload) for payload in loaded]

    def parallel_write(
        self, writes: Sequence[Tuple[int, Sequence[Any]]]
    ) -> None:
        """Write a batch of ``(block_id, records)`` pairs in parallel.

        Charges one write transfer per block and ``max_i k_i`` parallel
        steps (see :meth:`parallel_read`).  Fault checks run for every
        block before any transfer; torn writes are applied per block
        after the wave is known to proceed.
        """
        per_disk = [0] * self.num_disks
        for block_id, records in writes:
            self._check_write(block_id, records)
            per_disk[self._disk_of[block_id]] += 1
        if self._injector is not None:
            for block_id, _ in writes:
                self._fault_write(block_id)
        for block_id, records in writes:
            stored = self._maybe_tear(block_id, records)
            if self.checksums_enabled:
                self._sums[block_id] = block_checksum(records)
            self._store(block_id, stored)
        steps = max(per_disk) if writes else 0
        self.counter.writes += len(writes)
        self.counter.write_steps += steps
        if writes and self.listener is not None:
            self._notify("write", [b for b, _ in writes], steps)
        if writes and self._injector is not None:
            self._stall_after({self._disk_of[b] for b, _ in writes})

    def peek(self, block_id: int) -> Block:
        """Inspect a block **without** charging an I/O.

        For tests and debugging only; algorithm code must use :meth:`read`.
        """
        try:
            return self._export(self._load(block_id))
        except KeyError:
            raise BlockNotAllocatedError(block_id) from None

    def verify_checksum(self, block_id: int) -> bool:
        """Whether ``block_id``'s stored payload matches its checksum,
        **without** charging an I/O (tests/debugging; recovery code must
        pay for a :meth:`read` instead).  Blocks written before checksums
        were enabled trivially verify."""
        if block_id not in self._blocks:
            raise BlockNotAllocatedError(block_id)
        expected = self._sums.get(block_id)
        return expected is None or \
            block_checksum(self._load(block_id)) == expected

    def stall(
        self, steps: int, disks: Iterable[int] = (), reason: str = "backoff"
    ) -> None:
        """Charge ``steps`` parallel steps during which ``disks`` are
        busy without transferring a block (retry backoff, seek storms).
        Reported to the listener so traces show the degradation."""
        if steps <= 0:
            return
        self.counter.stall_steps += steps
        if self.listener is not None:
            handler = getattr(self.listener, "on_stall", None)
            if handler is not None:
                handler(steps, list(disks), reason)

    # ------------------------------------------------------------------
    # fault-injection plumbing
    # ------------------------------------------------------------------
    def _pre_read(self, block_id: int) -> None:
        if self._injector is None:
            return
        disk = self._disk_of.get(block_id)
        error = self._injector.read_fault(block_id, disk)
        if error is not None:
            self.counter.faults += 1
            self._notify_fault("read-error", block_id)
            raise error

    def _pre_write(self, block_id: int, records: Sequence[Any]) -> Block:
        """The payload the store will own: **the** single copy of the
        caller's records (or its torn prefix under a fault plan)."""
        if self._injector is None:
            return copy_payload(records)
        self._fault_write(block_id)
        return self._maybe_tear(block_id, records)

    def _fault_write(self, block_id: int) -> None:
        error = self._injector.write_fault(
            block_id, self._disk_of[block_id]
        )
        if error is not None:
            self.counter.faults += 1
            self._notify_fault("write-error", block_id)
            raise error

    def _maybe_tear(self, block_id: int, records: Sequence[Any]) -> Block:
        if self._injector is None:
            return copy_payload(records)
        torn = self._injector.tear(
            block_id, self._disk_of[block_id], records
        )
        if torn is None:
            return copy_payload(records)
        self.counter.faults += 1
        self._notify_fault("torn-write", block_id)
        return torn

    def _verify(self, block_id: int, payload: Block) -> None:
        if not self.checksums_enabled:
            return
        expected = self._sums.get(block_id)
        if expected is not None and block_checksum(payload) != expected:
            raise ChecksumError(block_id)

    def _stall_after(self, disks: Iterable[int]) -> None:
        if self._injector is None:
            return
        steps = self._injector.stall_penalty(disks)
        if steps:
            self.stall(steps, disks, "slow-disk")

    def _notify_fault(self, kind: str, block_id: int) -> None:
        if self.listener is not None:
            handler = getattr(self.listener, "on_fault", None)
            if handler is not None:
                handler(kind, block_id, self._disk_of.get(block_id, -1))

    def _check_write(self, block_id: int, records: Sequence[Any]) -> None:
        if block_id not in self._blocks:
            raise BlockNotAllocatedError(block_id)
        if len(records) > self.block_capacity:
            raise BlockOverflowError(
                block_id, len(records), self.block_capacity
            )

    def _notify(
        self, op: str, block_ids: Sequence[int], steps: int
    ) -> None:
        if self.listener is not None:
            disks = [self._disk_of[b] for b in block_ids]
            self.listener.on_io(op, list(block_ids), disks, steps)


class SimulatedDisk(DiskArray):
    """An unbounded store of fixed-capacity blocks with I/O accounting:
    a :class:`DiskArray` fixed at a single disk.

    Args:
        block_capacity: maximum number of records per block (the model
            parameter ``B``).

    Attributes:
        counter: the :class:`~repro.core.stats.IOCounter` incremented by
            every :meth:`read` and :meth:`write`.
    """

    def __init__(self, block_capacity: int):
        super().__init__(block_capacity, num_disks=1)

"""Simulated block devices.

The I/O model charges one unit per *block transfer*.  On real 1998 hardware
an I/O cost roughly a million CPU operations; in pure Python, wall-clock
time is dominated by interpreter overhead and says nothing about I/O
behaviour.  This module therefore simulates the disk: blocks live in a
dictionary, and every read or write increments a counter.  All experiments
in this repository are stated in terms of these deterministic counts.

Two devices are provided:

* :class:`DiskArray` — ``D`` independent disks (the Parallel Disk Model).
  Batched transfers that touch distinct disks count as a single *parallel
  I/O step*; the array tracks steps separately from raw block transfers.
* :class:`SimulatedDisk` — a single disk: a :class:`DiskArray` fixed at
  ``D == 1``, kept as a named class for clarity in single-disk code.

A device accepts one optional ``listener`` (the runtime's tracer): every
transfer method reports ``(op, block_ids, disks, steps)`` to it, which is
how per-phase trace tallies stay equal to the device's own counters.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from .exceptions import (
    BlockNotAllocatedError,
    BlockOverflowError,
    ConfigurationError,
)
from .stats import IOCounter

# A block payload is a plain list of records.  Records are arbitrary Python
# objects; the substrate measures capacity in records, not bytes.
Block = List[Any]


class DiskArray:
    """``D`` independent simulated disks (the Parallel Disk Model).

    Block ids are globally unique across the array and carry their disk
    assignment, so single-block :meth:`read`/:meth:`write` calls need no
    disk argument.  Batched :meth:`parallel_read`/:meth:`parallel_write`
    calls count parallel steps: a batch touching ``k_i`` blocks on disk
    ``i`` takes ``max_i k_i`` steps, because distinct disks transfer
    concurrently.

    With ``D == 1`` the array behaves exactly like a single
    :class:`SimulatedDisk` (every step moves one block).
    """

    def __init__(self, block_capacity: int, num_disks: int = 1):
        if block_capacity < 1:
            raise ConfigurationError(
                f"block capacity must be >= 1, got {block_capacity}"
            )
        if num_disks < 1:
            raise ConfigurationError(
                f"number of disks must be >= 1, got {num_disks}"
            )
        self.num_disks = num_disks
        self.block_capacity = block_capacity
        self.counter = IOCounter()
        self.listener = None  # runtime tracer; see module docstring
        self._blocks: Dict[int, Block] = {}
        self._disk_of: Dict[int, int] = {}
        self._next_id = 0
        self._rr_next_disk = 0
        self._allocated_high_water = 0

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def allocate(self, disk: Optional[int] = None) -> int:
        """Allocate an empty block.

        Args:
            disk: disk index in ``range(D)``; when omitted, disks are used
                round-robin, which is the striping layout.

        Allocation itself is free (it models reserving an address on disk,
        not transferring data).
        """
        if disk is None:
            disk = self._rr_next_disk
            self._rr_next_disk = (self._rr_next_disk + 1) % self.num_disks
        if not 0 <= disk < self.num_disks:
            raise ConfigurationError(
                f"disk index {disk} out of range for {self.num_disks} disks"
            )
        block_id = self._next_id
        self._next_id += 1
        self._blocks[block_id] = []
        self._disk_of[block_id] = disk
        self._allocated_high_water = max(
            self._allocated_high_water, len(self._blocks)
        )
        return block_id

    def stripe_offset(self) -> int:
        """Starting disk for a new striped file, advanced round-robin.

        Staggering stripe starts keeps concurrently consumed striped
        files (e.g. the runs of a merge) from all placing their ``i``-th
        block on the same disk, which would serialize a prefetcher's
        batches.
        """
        offset = self._rr_next_disk
        self._rr_next_disk = (self._rr_next_disk + 1) % self.num_disks
        return offset

    def free(self, block_id: int) -> None:
        """Release a block (free of I/O cost)."""
        if block_id not in self._blocks:
            raise BlockNotAllocatedError(block_id)
        del self._blocks[block_id]
        del self._disk_of[block_id]

    def is_allocated(self, block_id: int) -> bool:
        """Return whether ``block_id`` currently names an allocated block."""
        return block_id in self._blocks

    def disk_of(self, block_id: int) -> int:
        """Return the disk index holding ``block_id``."""
        try:
            return self._disk_of[block_id]
        except KeyError:
            raise BlockNotAllocatedError(block_id) from None

    @property
    def allocated_blocks(self) -> int:
        """Number of blocks currently allocated across all disks."""
        return len(self._blocks)

    @property
    def high_water_blocks(self) -> int:
        """Peak number of simultaneously allocated blocks."""
        return self._allocated_high_water

    # ------------------------------------------------------------------
    # transfers
    # ------------------------------------------------------------------
    def read(self, block_id: int) -> Block:
        """Read one block: one transfer, one parallel step."""
        try:
            payload = self._blocks[block_id]
        except KeyError:
            raise BlockNotAllocatedError(block_id) from None
        self.counter.reads += 1
        self.counter.read_steps += 1
        self._notify("read", (block_id,), 1)
        return list(payload)

    def write(self, block_id: int, records: Sequence[Any]) -> None:
        """Write one block: one transfer, one parallel step."""
        self._check_write(block_id, records)
        self.counter.writes += 1
        self.counter.write_steps += 1
        self._blocks[block_id] = list(records)
        self._notify("write", (block_id,), 1)

    def parallel_read(self, block_ids: Sequence[int]) -> List[Block]:
        """Read a batch of blocks, exploiting disk parallelism.

        Transfers every block (``len(block_ids)`` read transfers) but only
        charges ``max_i k_i`` parallel steps, where ``k_i`` is the number of
        requested blocks living on disk ``i``.
        """
        per_disk = [0] * self.num_disks
        payloads: List[Block] = []
        for block_id in block_ids:
            try:
                payload = self._blocks[block_id]
            except KeyError:
                raise BlockNotAllocatedError(block_id) from None
            per_disk[self._disk_of[block_id]] += 1
            payloads.append(list(payload))
        steps = max(per_disk) if block_ids else 0
        self.counter.reads += len(block_ids)
        self.counter.read_steps += steps
        if block_ids:
            self._notify("read", block_ids, steps)
        return payloads

    def parallel_write(
        self, writes: Sequence[Tuple[int, Sequence[Any]]]
    ) -> None:
        """Write a batch of ``(block_id, records)`` pairs in parallel.

        Charges one write transfer per block and ``max_i k_i`` parallel
        steps (see :meth:`parallel_read`).
        """
        per_disk = [0] * self.num_disks
        for block_id, records in writes:
            self._check_write(block_id, records)
            per_disk[self._disk_of[block_id]] += 1
        for block_id, records in writes:
            self._blocks[block_id] = list(records)
        steps = max(per_disk) if writes else 0
        self.counter.writes += len(writes)
        self.counter.write_steps += steps
        if writes:
            self._notify("write", [b for b, _ in writes], steps)

    def peek(self, block_id: int) -> Block:
        """Inspect a block **without** charging an I/O.

        For tests and debugging only; algorithm code must use :meth:`read`.
        """
        try:
            return list(self._blocks[block_id])
        except KeyError:
            raise BlockNotAllocatedError(block_id) from None

    def _check_write(self, block_id: int, records: Sequence[Any]) -> None:
        if block_id not in self._blocks:
            raise BlockNotAllocatedError(block_id)
        if len(records) > self.block_capacity:
            raise BlockOverflowError(
                block_id, len(records), self.block_capacity
            )

    def _notify(
        self, op: str, block_ids: Sequence[int], steps: int
    ) -> None:
        if self.listener is not None:
            disks = [self._disk_of[b] for b in block_ids]
            self.listener.on_io(op, list(block_ids), disks, steps)


class SimulatedDisk(DiskArray):
    """An unbounded store of fixed-capacity blocks with I/O accounting:
    a :class:`DiskArray` fixed at a single disk.

    Args:
        block_capacity: maximum number of records per block (the model
            parameter ``B``).

    Attributes:
        counter: the :class:`~repro.core.stats.IOCounter` incremented by
            every :meth:`read` and :meth:`write`.
    """

    def __init__(self, block_capacity: int):
        super().__init__(block_capacity, num_disks=1)
